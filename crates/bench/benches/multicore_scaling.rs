//! Wall-clock scaling of the zero-copy hot path across shard counts.
//!
//! Where `shard_scaling` measures *modeled* (virtual-time) speedup,
//! this bench measures real elapsed time: the full in-process pipeline
//! (caller → router → shards → merger → caller) fed the same
//! timestamp-interleaved workload as `batch_scaling`'s in-process lane
//! at batch 256, swept over shard counts {1, 2, 4, available
//! parallelism}. Shards = 4 lines up exactly with the committed
//! `BENCH_batch.json` in-process row at batch 256, so the summary can
//! report the hot-path rework (slab tuple storage, moved — not cloned —
//! batches, recycled buffers, atomic metrics, punctuation-granular
//! locking) as a before/after at equal shards and batch.
//!
//! Alongside elements/s, every row records the two quantities the
//! rework drives toward zero on the tuple path, measured for the whole
//! run by a counting allocator and the executor's aligner-acquisition
//! counter:
//!
//! * **allocs/element** — heap allocations per input element, split
//!   into an *output path* (one allocation per emitted result tuple —
//!   the single-allocation concat, ~9.5 per input here and
//!   irreducible) and a *probe path* (everything else: routing,
//!   staging, probing, state). The probe-path share is the number the
//!   `hotpath_allocs` gate in `punct-exec` holds under 0.25 — splitting
//!   it out keeps the gate visible at every shard count instead of
//!   drowning in the output-tuple floor.
//! * **mutex acquisitions/element** — acquisitions of the shared
//!   aligner mutex, the only lock on the data path, bounded by the
//!   punctuation count (never the tuple count).
//!
//! Two further axes ride along since the probe-kernel rework:
//!
//! * a **probe-threads sweep** (`PJOIN_PROBE_THREADS`-equivalent, 1/2/4
//!   threads per shard at 2 shards) over the batched-probe fast path;
//! * one recorded **tag-scan kernel sweep** (kernel x occupancy, from
//!   `pjoin_bench::kernel_sweep` — shared with the `probe_kernel`
//!   bench so this file stays the summary's single writer).
//!
//! Results land in `BENCH_multicore.json`. On a single-core host the
//! summary carries a `cores_warning`: the thread sweeps then price
//! coordination overhead, not speedup.

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use criterion::{black_box, BenchmarkId, Criterion, Throughput};
use pjoin::PJoinConfig;
use pjoin_bench::host::{cores_json_fields, warn_if_single_core};
use pjoin_bench::kernel_sweep::{probe_kernel_sweep, sweep_json_rows};
use punct_exec::{ExecConfig, ShardedPJoin, MAX_SHARDS};
use punct_types::{BatchConfig, StreamElement, Timestamped};
use stream_sim::Side;
use streamgen::{generate_pair, interleave_sides, PunctScheme, StreamConfig};

struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

const BATCH: usize = 256;
const TUPLES_PER_SIDE: usize = 3_000;
/// The `BENCH_batch.json` row this bench compares against (in-process
/// lane, batch 256): shard count must match for an apples-to-apples
/// before/after.
const BASELINE_SHARDS: usize = 4;

fn cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Swept shard counts: 1 and 2 for the scaling shape, the baseline's 4,
/// and whatever the machine actually has.
fn shard_counts() -> Vec<usize> {
    let mut counts = vec![1, 2, BASELINE_SHARDS, cores().min(MAX_SHARDS)];
    counts.sort_unstable();
    counts.dedup();
    counts
}

/// Identical workload to `batch_scaling`'s in-process lane, so the
/// shards = 4 row is directly comparable to the committed baseline.
fn feed() -> Vec<(Side, Timestamped<StreamElement>)> {
    let config = StreamConfig {
        tuples: TUPLES_PER_SIDE,
        key_window: 16,
        punct_scheme: PunctScheme::ConstantPerKey,
        punct_mean_tuples: 20.0,
        seed: 17,
        ..StreamConfig::default()
    };
    let (left, right) = generate_pair(&config, 20.0, 20.0);
    interleave_sides(&left.elements, &right.elements)
}

/// Probe-thread counts swept at [`PROBE_SWEEP_SHARDS`] shards over the
/// batched-probe fast path.
const PROBE_THREADS: [usize; 3] = [1, 2, 4];
const PROBE_SWEEP_SHARDS: usize = 2;

struct RunStats {
    outputs: usize,
    /// Result tuples among `outputs` — each one is exactly one heap
    /// allocation (the single-allocation concat), which is how the
    /// summary splits output-path from probe-path allocations.
    output_tuples: usize,
    /// Heap allocations over the run (push → finish, spawn excluded).
    allocs: u64,
    /// Aligner mutex acquisitions over the whole run.
    acquisitions: u64,
}

/// The sharded config for one run. The probe-threads sweep disables
/// on-the-fly dropping: that path falls back to per-element probing,
/// which would bypass the probe pool entirely.
fn run_config(shards: usize, probe_threads: usize) -> ExecConfig {
    let join = PJoinConfig {
        on_the_fly_drop: probe_threads == 1,
        ..PJoinConfig::new(2, 2)
    };
    ExecConfig::new(shards, join)
        .with_batch(BatchConfig::with_elems(BATCH))
        .with_probe_threads(probe_threads)
}

fn run_once(
    shards: usize,
    probe_threads: usize,
    feed: &[(Side, Timestamped<StreamElement>)],
    count: bool,
) -> RunStats {
    let exec = ShardedPJoin::spawn(run_config(shards, probe_threads));
    if count {
        ALLOCS.store(0, Ordering::SeqCst);
        COUNTING.store(true, Ordering::SeqCst);
    }
    let mut outputs = 0usize;
    let mut output_tuples = 0usize;
    for chunk in feed.chunks(512) {
        exec.push_batch(chunk.to_vec());
        for e in exec.poll_outputs() {
            outputs += 1;
            output_tuples += e.item.is_tuple() as usize;
        }
    }
    let (rest, stats) = exec.finish();
    if count {
        COUNTING.store(false, Ordering::SeqCst);
    }
    for e in &rest {
        outputs += 1;
        output_tuples += e.item.is_tuple() as usize;
    }
    RunStats {
        outputs,
        output_tuples,
        allocs: ALLOCS.load(Ordering::SeqCst),
        acquisitions: stats.aligner_acquisitions,
    }
}

fn bench_multicore(c: &mut Criterion) {
    let feed = feed();
    let mut g = c.benchmark_group("multicore");
    g.throughput(Throughput::Elements(feed.len() as u64));
    for shards in shard_counts() {
        g.bench_with_input(BenchmarkId::new("wall", shards), &shards, |b, &n| {
            b.iter(|| black_box(run_once(n, 1, &feed, false)).outputs)
        });
    }
    for threads in PROBE_THREADS {
        g.bench_with_input(BenchmarkId::new("probe", threads), &threads, |b, &t| {
            b.iter(|| black_box(run_once(PROBE_SWEEP_SHARDS, t, &feed, false)).outputs)
        });
    }
    g.finish();
}

/// The committed `BENCH_batch.json` in-process elements/s at batch 256
/// (the PR-5 baseline the acceptance bar compares against), if present.
fn baseline_eps() -> Option<f64> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_batch.json");
    let text = std::fs::read_to_string(path).ok()?;
    let row = text
        .lines()
        .find(|l| l.contains("\"lane\": \"in_process\"") && l.contains("\"batch\": 256"))?;
    let key = "\"elements_per_sec\": ";
    let rest = &row[row.find(key)? + key.len()..];
    rest[..rest.find(',')?].trim().parse().ok()
}

/// One measurement row: the shared fields every sweep reports. The
/// alloc split uses the single-allocation-concat invariant: each output
/// tuple costs exactly one allocation, so `allocs - output_tuples` is
/// the probe-path remainder the `hotpath_allocs` gate bounds.
fn row_fields(r: &RunStats, elements: usize, eps: f64) -> String {
    let output_allocs = r.output_tuples as u64;
    let probe_allocs = r.allocs.saturating_sub(output_allocs);
    format!(
        "\"elements\": {}, \"elements_per_sec\": {:.1}, \"allocs_per_element\": {:.3}, \"allocs_per_element_output_path\": {:.3}, \"allocs_per_element_probe_path\": {:.3}, \"mutex_acquisitions_per_element\": {:.4}, \"outputs\": {}",
        elements,
        eps,
        r.allocs as f64 / elements as f64,
        output_allocs as f64 / elements as f64,
        probe_allocs as f64 / elements as f64,
        r.acquisitions as f64 / elements as f64,
        r.outputs,
    )
}

fn write_summary(c: &Criterion) {
    let feed = feed();
    let elements = feed.len();
    let eps = |id: String| {
        c.measurements()
            .iter()
            .find(|m| m.group == "multicore" && m.id == id)
            .and_then(|m| m.per_second())
            .unwrap_or(0.0)
    };

    let baseline = baseline_eps();
    let mut rows = String::new();
    let mut baseline_row = String::new();
    for shards in shard_counts() {
        let r = run_once(shards, 1, &feed, true);
        let e = eps(format!("wall/{shards}"));
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        let vs_baseline = match baseline {
            Some(base) if shards == BASELINE_SHARDS && base > 0.0 => {
                let speedup = e / base;
                baseline_row = format!(
                    "shards={shards} batch={BATCH}: before {base:.1} el/s -> after {e:.1} el/s \
                     ({speedup:.2}x)"
                );
                format!("{speedup:.3}")
            }
            _ => "null".into(),
        };
        let _ = write!(
            rows,
            "    {{\"shards\": {}, \"batch\": {}, \"speedup_vs_shard1\": {:.2}, \"speedup_vs_pr5_batch_bench\": {}, {}}}",
            shards,
            BATCH,
            if eps("wall/1".into()) > 0.0 { e / eps("wall/1".into()) } else { 0.0 },
            vs_baseline,
            row_fields(&r, elements, e),
        );
    }

    let mut probe_rows = String::new();
    for threads in PROBE_THREADS {
        let r = run_once(PROBE_SWEEP_SHARDS, threads, &feed, true);
        let e = eps(format!("probe/{threads}"));
        if !probe_rows.is_empty() {
            probe_rows.push_str(",\n");
        }
        let _ = write!(
            probe_rows,
            "    {{\"shards\": {PROBE_SWEEP_SHARDS}, \"probe_threads\": {}, \"batch\": {}, \"speedup_vs_1_thread\": {:.2}, {}}}",
            threads,
            BATCH,
            if eps("probe/1".into()) > 0.0 { e / eps("probe/1".into()) } else { 0.0 },
            row_fields(&r, elements, e),
        );
    }

    println!("recording tag-scan kernel sweep…");
    let kernel_rows = sweep_json_rows(&probe_kernel_sweep(20_000_000));

    if baseline_row.is_empty() {
        baseline_row = "BENCH_batch.json baseline unavailable".into();
    }
    let json = format!(
        "{{\n  \"bench\": \"multicore_scaling\",\n  {}\n  \"batch\": {BATCH},\n  \"note\": \"wall-clock elements/s of the in-process pipeline vs shard count, same workload as BENCH_batch.json's in_process lane. Before/after at equal shards and batch, PR-5 batch bench vs this run: {}. allocs_per_element counts every heap allocation push->finish, split by the single-allocation-concat invariant: output_path is one allocation per result tuple (~8.7 per input here, irreducible), probe_path is everything else (routing, staging, probe, state and punctuation machinery) — the share whose no-match steady state the hotpath_allocs gate holds under 0.25 at any shard count; here it also carries purge and punctuation-alignment work, so ~1 per element on this match- and punctuation-heavy workload. mutex_acquisitions_per_element counts the shared aligner mutex, the data path's only lock, acquired at punctuation granularity only. probe_thread_measurements sweep the per-shard parallel probe over the batched fast path (on_the_fly_drop off, hence the different output count); outputs are bit-compatible across thread counts. probe_kernels is one recorded tag-scan sweep (see crates/bench/src/kernel_sweep.rs), shared with the probe_kernel bench; the acceptance bar is >= 1.5x over scalar at 10k+ occupancy for the best supported kernel. With cores=1 the thread sweeps cannot show wall-clock speedup; the scaling shape is meaningful on multicore hosts\",\n  \"measurements\": [\n{}\n  ],\n  \"probe_thread_measurements\": [\n{}\n  ],\n  \"probe_kernels\": [\n{}\n  ]\n}}\n",
        cores_json_fields(true),
        baseline_row,
        rows,
        probe_rows,
        kernel_rows,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_multicore.json");
    match std::fs::write(path, json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn main() {
    warn_if_single_core("multicore_scaling");
    let mut c = Criterion::default();
    bench_multicore(&mut c);
    c.final_summary();
    // Keep `cargo test` runs side-effect free; only a real bench run
    // refreshes the summary file.
    if !std::env::args().any(|a| a == "--test") {
        write_summary(&c);
    }
}
