//! Probe-path scaling: linear bucket scan vs the per-bucket key index,
//! swept over bucket occupancy (10^2..10^5) and key skew.
//!
//! The claim under test is the O(matches) probe property: indexed probe
//! time tracks the number of *matching* records, so its throughput stays
//! flat as occupancy grows, while the linear scan degrades with bucket
//! size. Besides the usual criterion report, a machine-readable summary
//! lands in `BENCH_probe.json` at the repository root.

use std::fmt::Write as _;

use criterion::{black_box, BenchmarkId, Criterion, Throughput};
use punct_types::{Tuple, Value};
use spillstore::{PartitionedStore, SimDisk, StoreConfig};

const OCCUPANCIES: [usize; 4] = [100, 1_000, 10_000, 100_000];

#[derive(Clone, Copy, PartialEq)]
enum Skew {
    /// Keys cycle uniformly over a domain of occupancy/10 values, so
    /// every key has ~10 matches regardless of occupancy.
    Uniform,
    /// One hot key holds 20% of the bucket; the rest cycle uniformly.
    Hot,
}

impl Skew {
    fn name(self) -> &'static str {
        match self {
            Skew::Uniform => "uniform",
            Skew::Hot => "hot",
        }
    }
}

const HOT_KEY: i64 = 1_000_000;

/// A single-bucket store (so occupancy is exact) holding `occupancy`
/// records under the given skew.
fn filled(occupancy: usize, skew: Skew) -> PartitionedStore<Tuple> {
    let mut s = PartitionedStore::new(
        StoreConfig {
            buckets: 1,
            page_tuples: 64,
            ..StoreConfig::default()
        },
        Box::new(SimDisk::new()),
    );
    let domain = (occupancy / 10).max(10) as i64;
    for i in 0..occupancy {
        let key = match skew {
            Skew::Hot if i % 5 == 0 => HOT_KEY,
            _ => (i as i64) % domain,
        };
        s.insert(Tuple::of((key, i as i64)));
    }
    s
}

/// The key each probe looks up: mid-domain for uniform, the hot key for
/// the skewed fill.
fn probe_key(occupancy: usize, skew: Skew) -> Value {
    match skew {
        Skew::Uniform => Value::Int((occupancy / 10).max(10) as i64 / 2),
        Skew::Hot => Value::Int(HOT_KEY),
    }
}

fn bench_probe_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("probe_scaling");
    g.throughput(Throughput::Elements(1));
    for skew in [Skew::Uniform, Skew::Hot] {
        for occupancy in OCCUPANCIES {
            let s = filled(occupancy, skew);
            let key = probe_key(occupancy, skew);
            g.bench_with_input(
                BenchmarkId::new(format!("linear/{}", skew.name()), occupancy),
                &occupancy,
                |b, _| {
                    b.iter(|| {
                        let mut hits = 0u32;
                        for r in s.probe_memory(black_box(&key)) {
                            if r.get(0).is_some_and(|v| v.join_eq(&key)) {
                                hits += 1;
                            }
                        }
                        black_box(hits)
                    })
                },
            );
            g.bench_with_input(
                BenchmarkId::new(format!("indexed/{}", skew.name()), occupancy),
                &occupancy,
                |b, _| {
                    b.iter(|| {
                        let mut hits = 0u32;
                        for r in s.probe_memory_keyed(black_box(&key)) {
                            if r.get(0).is_some_and(|v| v.join_eq(&key)) {
                                hits += 1;
                            }
                        }
                        black_box(hits)
                    })
                },
            );
        }
    }
    g.finish();
}

/// Serializes the measurements (plus the flatness ratios the acceptance
/// criterion asks about) into `BENCH_probe.json` at the repo root.
fn write_summary(c: &Criterion) {
    let mut rows = String::new();
    for m in c.measurements() {
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        let _ = write!(
            rows,
            "    {{\"group\": \"{}\", \"id\": \"{}\", \"mean_ns\": {:.1}, \"elements_per_sec\": {:.1}}}",
            m.group,
            m.id,
            m.mean_ns,
            m.per_second().unwrap_or(0.0)
        );
    }
    // Degradation ratio from the smallest to the largest occupancy
    // (mean time at 10^5 over mean time at 10^2), per path and skew.
    let mean_of = |prefix: &str, occ: usize| {
        c.measurements()
            .iter()
            .find(|m| m.id == format!("{prefix}/{occ}"))
            .map(|m| m.mean_ns)
    };
    let mut ratios = String::new();
    for path in ["linear", "indexed"] {
        for skew in ["uniform", "hot"] {
            let prefix = format!("{path}/{skew}");
            if let (Some(small), Some(large)) = (
                mean_of(&prefix, OCCUPANCIES[0]),
                mean_of(&prefix, OCCUPANCIES[3]),
            ) {
                if !ratios.is_empty() {
                    ratios.push_str(",\n");
                }
                let _ = write!(
                    ratios,
                    "    {{\"path\": \"{path}\", \"skew\": \"{skew}\", \"slowdown_1e2_to_1e5\": {:.2}}}",
                    large / small.max(1e-9)
                );
            }
        }
    }
    let cores = pjoin_bench::host::cores_json_fields(false);
    let json = format!(
        "{{\n  \"bench\": \"probe_scaling\",\n  {cores}\n  \"measurements\": [\n{rows}\n  ],\n  \"scaling\": [\n{ratios}\n  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_probe.json");
    match std::fs::write(path, json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn main() {
    let mut c = Criterion::default();
    bench_probe_scaling(&mut c);
    c.final_summary();
    // Keep `cargo test` runs side-effect free; only a real bench run
    // refreshes the summary file.
    if !std::env::args().any(|a| a == "--test") {
        write_summary(&c);
    }
}
