//! What the cluster telemetry plane costs: end-to-end cluster throughput
//! with telemetry off, at the default 1 s report interval, and at an
//! aggressive 100 ms interval — same workload, same 2-worker loopback
//! cluster, tracing on whenever telemetry is on.
//!
//! Results land in `BENCH_telemetry.json`. A timed run (not `--test`)
//! additionally asserts the default-interval overhead stays within the
//! budget the design promises: ≤ 3% against the telemetry-off baseline.
//! The periodic report path is off the per-element hot loop (interval
//! checks in the worker serve loop, cumulative counters either way), so
//! the default interval should be close to free; the 100 ms row shows
//! how the cost scales when reports are ~10× more frequent.

use std::fmt::Write as _;

use criterion::{black_box, BenchmarkId, Criterion, Throughput};
use punct_cluster::{
    run_worker, Cluster, ClusterOptions, JoinSpec, TelemetrySettings, WorkerOptions,
};
use punct_net::{BackoffPolicy, ClientOptions};
use punct_types::{Pattern, Punctuation, StreamElement, Timestamp, Timestamped, Tuple};
use stream_sim::Side;

const KEYS: i64 = 800;
const OVERHEAD_BUDGET: f64 = 0.03;

/// The cluster_scaling workload: keyed pairs, per-key close punctuations
/// four keys behind, stream-end wildcards.
fn workload(keys: i64) -> Vec<(Side, StreamElement)> {
    let mut work: Vec<(Side, StreamElement)> = Vec::new();
    for k in 0..keys {
        work.push((Side::Left, Tuple::of((k, 10 * k)).into()));
        work.push((Side::Right, Tuple::of((k, -k)).into()));
        if k >= 4 {
            let c = k - 4;
            work.push((Side::Left, Punctuation::close_value(2, 0, c).into()));
            work.push((Side::Right, Punctuation::close_value(2, 0, c).into()));
        }
    }
    let wild = Punctuation::on_attr(2, 0, Pattern::Wildcard);
    work.push((Side::Left, wild.clone().into()));
    work.push((Side::Right, wild.into()));
    work
}

/// The three telemetry postures under test.
fn modes() -> [(&'static str, TelemetrySettings); 3] {
    [
        ("off", TelemetrySettings::disabled()),
        (
            "interval_1s",
            TelemetrySettings {
                enabled: true,
                interval_ms: 1000,
                trace: true,
            },
        ),
        (
            "interval_100ms",
            TelemetrySettings {
                enabled: true,
                interval_ms: 100,
                trace: true,
            },
        ),
    ]
}

/// One full 2-worker run under the given telemetry posture.
fn run_once(telemetry: TelemetrySettings, work: &[(Side, StreamElement)]) -> usize {
    let mut opts = ClusterOptions::new(JoinSpec::new(2, 2), 2, 2);
    opts.client = ClientOptions {
        policy: BackoffPolicy::fast(),
        seed: 77,
        ..ClientOptions::default()
    };
    opts.telemetry = telemetry;
    let mut cluster = Cluster::bind(opts).expect("bind coordinator");
    let ctrl = cluster.ctrl_addr();
    let handles: Vec<_> = (0..2u32)
        .map(|i| std::thread::spawn(move || run_worker(WorkerOptions::new(i, ctrl))))
        .collect();
    cluster.accept_workers().expect("assemble cluster");
    let mut outputs = 0usize;
    for (i, (side, el)) in work.iter().enumerate() {
        cluster
            .push(*side, Timestamped::new(Timestamp(i as u64), el.clone()))
            .expect("push");
        if i % 128 == 0 {
            outputs += cluster.poll_outputs().expect("poll").len();
        }
    }
    let report = cluster.finish().expect("finish");
    outputs += report.outputs.len();
    for h in handles {
        h.join().expect("worker thread").expect("worker");
    }
    outputs
}

fn bench_telemetry(c: &mut Criterion) {
    let work = workload(KEYS);
    let mut g = c.benchmark_group("telemetry_overhead");
    g.throughput(Throughput::Elements(work.len() as u64));
    g.sample_size(10);
    for (name, settings) in modes() {
        g.bench_with_input(BenchmarkId::new("mode", name), &settings, |b, &s| {
            b.iter(|| black_box(run_once(s, &work)))
        });
    }
    g.finish();
}

fn mean_ns(c: &Criterion, mode: &str) -> f64 {
    c.measurements()
        .iter()
        .find(|m| m.group == "telemetry_overhead" && m.id == format!("mode/{mode}"))
        .map(|m| m.mean_ns)
        .unwrap_or(0.0)
}

fn write_summary(c: &Criterion) {
    let work = workload(KEYS);
    let baseline = mean_ns(c, "off");
    let mut rows = String::new();
    for (name, settings) in modes() {
        let m = c
            .measurements()
            .iter()
            .find(|m| m.group == "telemetry_overhead" && m.id == format!("mode/{name}"))
            .cloned();
        let eps = m.as_ref().and_then(|m| m.per_second()).unwrap_or(0.0);
        let mean = m.as_ref().map(|m| m.mean_ns).unwrap_or(0.0);
        let overhead = if baseline > 0.0 {
            mean / baseline - 1.0
        } else {
            0.0
        };
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        let _ = write!(
            rows,
            "    {{\"kind\": \"throughput\", \"mode\": \"{}\", \"interval_ms\": {}, \"trace\": {}, \"elements\": {}, \"mean_ns\": {:.1}, \"elements_per_sec\": {:.1}, \"overhead_vs_off\": {:.4}}}",
            name,
            if settings.enabled { settings.interval_ms as i64 } else { -1 },
            settings.enabled && settings.trace,
            work.len(),
            mean,
            eps,
            overhead,
        );
    }
    let cores = pjoin_bench::host::cores_json_fields(false);
    let compiled = punct_trace::COMPILED;
    let json = format!(
        "{{\n  \"bench\": \"telemetry_overhead\",\n  {cores}\n  \"trace_compiled\": {compiled},\n  \"overhead_budget\": {OVERHEAD_BUDGET},\n  \"note\": \"2-worker loopback cluster, full distributed path; telemetry off vs the default 1 s report interval vs an aggressive 100 ms interval, tracing on whenever telemetry is on; overhead_vs_off is mean-time ratio minus one (negative = within noise)\",\n  \"measurements\": [\n{rows}\n  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_telemetry.json");
    match std::fs::write(path, json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    // The design-budget gate, timed runs only: the default interval must
    // cost at most 3% against telemetry-off.
    let default_mean = mean_ns(c, "interval_1s");
    assert!(baseline > 0.0 && default_mean > 0.0, "missing measurements");
    let overhead = default_mean / baseline - 1.0;
    println!(
        "default-interval overhead: {:.2}% (budget {:.0}%)",
        overhead * 100.0,
        OVERHEAD_BUDGET * 100.0
    );
    assert!(
        overhead <= OVERHEAD_BUDGET,
        "telemetry at the default interval costs {:.2}%, over the {:.0}% budget",
        overhead * 100.0,
        OVERHEAD_BUDGET * 100.0
    );
}

fn main() {
    let mut c = Criterion::default();
    bench_telemetry(&mut c);
    c.final_summary();
    // Keep `cargo test` runs side-effect free (and un-asserted); only a
    // real bench run refreshes the summary and enforces the budget.
    if !std::env::args().any(|a| a == "--test") {
        write_summary(&c);
    }
}
