//! End-to-end operator throughput (real CPU time, not virtual time):
//! PJoin configurations vs the XJoin baseline over the same punctuated
//! workload, plus the on-the-fly-drop ablation.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use pjoin::PJoinBuilder;
use pjoin_bench::paper_workload;
use punct_types::{StreamElement, Timestamped};
use stream_sim::{BinaryStreamOp, CostModel, Driver, DriverConfig};
use xjoin::{XJoin, XJoinConfig};

const TUPLES: usize = 5_000;

fn run(op: &mut dyn BinaryStreamOp, left: &[Timestamped<StreamElement>], right: &[Timestamped<StreamElement>]) -> u64 {
    let driver = Driver::new(DriverConfig {
        cost: CostModel::free(),
        sample_every_micros: 10_000_000,
        collect_outputs: false,
        ..DriverConfig::default()
    });
    driver.run(op, left, right).total_out_tuples
}

fn bench_operators(c: &mut Criterion) {
    let w = paper_workload(TUPLES, 40.0, 40.0, 7);
    let mut g = c.benchmark_group("operator_throughput");
    g.throughput(Throughput::Elements((w.left.len() + w.right.len()) as u64));
    g.sample_size(10);

    g.bench_function("pjoin_eager", |b| {
        b.iter(|| {
            let mut op = PJoinBuilder::new(2, 2).buckets(64).eager_purge().no_propagation().build();
            black_box(run(&mut op, &w.left, &w.right))
        })
    });
    g.bench_function("pjoin_lazy100", |b| {
        b.iter(|| {
            let mut op =
                PJoinBuilder::new(2, 2).buckets(64).lazy_purge(100).no_propagation().build();
            black_box(run(&mut op, &w.left, &w.right))
        })
    });
    g.bench_function("pjoin_propagating", |b| {
        b.iter(|| {
            let mut op = PJoinBuilder::new(2, 2)
                .buckets(64)
                .eager_purge()
                .eager_index_build()
                .propagate_every(10)
                .build();
            black_box(run(&mut op, &w.left, &w.right))
        })
    });
    g.bench_function("xjoin", |b| {
        b.iter(|| {
            let mut op = XJoin::new(XJoinConfig { buckets: 64, ..XJoinConfig::default() });
            black_box(run(&mut op, &w.left, &w.right))
        })
    });
    g.finish();
}

fn bench_on_the_fly_ablation(c: &mut Criterion) {
    // Asymmetric rates: the regime where the on-the-fly drop matters.
    let w = paper_workload(TUPLES, 5.0, 50.0, 7);
    let mut g = c.benchmark_group("on_the_fly_ablation");
    g.sample_size(10);
    for (name, enabled) in [("drop_on", true), ("drop_off", false)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut op = PJoinBuilder::new(2, 2)
                    .buckets(64)
                    .eager_purge()
                    .no_propagation()
                    .on_the_fly_drop(enabled)
                    .build();
                black_box(run(&mut op, &w.left, &w.right))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_operators, bench_on_the_fly_ablation);
criterion_main!(benches);
