//! Tracing-overhead bench: what does the observability tentpole cost on
//! the hot path?
//!
//! Three modes over the shard-scaling workload (4 000 tuples per side,
//! constant-per-key punctuations), driven through a single in-process
//! `PJoin` so the measurement sees the per-element hook cost directly,
//! with no thread-spawn or channel noise:
//!
//! * **compiled_out** — the `punct-trace` crate built with
//!   `PJOIN_TRACE_DISABLE=1`: every hook folds to a constant-false
//!   branch at compile time. The baseline.
//! * **disabled** — normal build, tracing off in the config: each hook
//!   is one predictable branch.
//! * **enabled** — normal build, tracing on: events recorded into the
//!   ring buffer, histograms updated.
//!
//! A single cargo invocation can only measure the modes its build
//! supports, so `BENCH_trace.json` is **merged across invocations**:
//!
//! ```text
//! PJOIN_TRACE_DISABLE=1 cargo bench -p pjoin-bench --bench trace_overhead
//! cargo bench -p pjoin-bench --bench trace_overhead
//! ```
//!
//! The second run preserves the first run's `compiled_out` row and adds
//! the overhead ratios once all three modes are known.

use std::fmt::Write as _;

use criterion::{black_box, BatchSize, BenchmarkId, Criterion, Throughput};
use pjoin::{PJoin, PJoinConfig};
use punct_types::{StreamElement, Timestamp, Timestamped};
use stream_sim::{BinaryStreamOp, OpOutput, Side};
use streamgen::{generate_pair, PunctScheme, StreamConfig};

const TUPLES_PER_SIDE: usize = 4_000;

/// The shard-scaling workload: a generated punctuated pair
/// (constant-per-key punctuations every ~20 tuples), interleaved by
/// timestamp.
fn workload() -> Vec<(Side, Timestamped<StreamElement>)> {
    let config = StreamConfig {
        tuples: TUPLES_PER_SIDE,
        key_window: 16,
        punct_scheme: PunctScheme::ConstantPerKey,
        punct_mean_tuples: 20.0,
        seed: 7,
        ..StreamConfig::default()
    };
    let (left, right) = generate_pair(&config, 20.0, 20.0);
    let mut feed = Vec::with_capacity(left.elements.len() + right.elements.len());
    let (mut i, mut j) = (0, 0);
    while i < left.elements.len() || j < right.elements.len() {
        let take_left = match (left.elements.get(i), right.elements.get(j)) {
            (Some(l), Some(r)) => l.ts <= r.ts,
            (Some(_), None) => true,
            _ => false,
        };
        if take_left {
            feed.push((Side::Left, left.elements[i].clone()));
            i += 1;
        } else {
            feed.push((Side::Right, right.elements[j].clone()));
            j += 1;
        }
    }
    feed
}

/// Feeds a fresh operator the whole stream; returns outputs drained.
/// Operator construction (which pre-faults the ring buffer when tracing
/// is on) happens in the benchmark's setup phase, excluded from timing
/// for every mode alike — the measurement is the per-element hot path
/// the hooks actually touch.
fn feed_all(join: &mut PJoin, feed: &[(Side, Timestamped<StreamElement>)]) -> usize {
    let mut out = OpOutput::new();
    let mut last_ts = Timestamp::ZERO;
    let mut outputs = 0usize;
    for (side, e) in feed {
        last_ts = last_ts.max(e.ts);
        join.on_element(*side, e.item.clone(), e.ts, &mut out);
        outputs += out.drain().count();
    }
    while join.on_end(last_ts, &mut out) {
        outputs += out.drain().count();
    }
    outputs += out.drain().count();
    outputs
}

/// The modes this build can measure: `(id, config)`.
fn modes() -> Vec<(&'static str, PJoinConfig)> {
    let base = PJoinConfig::new(2, 2);
    if punct_trace::COMPILED {
        vec![("disabled", base.clone()), ("enabled", base.with_tracing())]
    } else {
        // Tracing requested but compiled out: proves the hooks fold away
        // even when the config asks for them.
        vec![("compiled_out", base.with_tracing())]
    }
}

fn bench_trace_overhead(c: &mut Criterion) {
    let feed = workload();
    let mut g = c.benchmark_group("trace_overhead");
    g.throughput(Throughput::Elements(feed.len() as u64));
    for (id, config) in modes() {
        g.bench_with_input(BenchmarkId::new("pjoin", id), &config, |b, cfg| {
            b.iter_batched(
                || PJoin::new(cfg.clone()),
                |mut join| black_box(feed_all(&mut join, &feed)),
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

/// Pulls `"mean_ns": <float>` out of a serialized mode row.
fn parse_mean_ns(row: &str) -> Option<f64> {
    let idx = row.find("\"mean_ns\": ")?;
    let rest = &row[idx + "\"mean_ns\": ".len()..];
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

fn write_summary(c: &Criterion) {
    let feed = workload();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trace.json");

    // Rows measured by THIS invocation, keyed by mode id.
    let mut rows: Vec<(String, String)> = Vec::new();
    for m in c.measurements() {
        let mode = m.id.strip_prefix("pjoin/").unwrap_or(&m.id).to_string();
        let row = format!(
            "    {{\"mode\": \"{}\", \"mean_ns\": {:.1}, \"elements_per_sec\": {:.1}}}",
            mode,
            m.mean_ns,
            m.per_second().unwrap_or(0.0)
        );
        rows.push((mode, row));
    }

    // Merge with rows from previous invocations: adopt modes this build
    // cannot measure, and for re-measured modes keep the faster figure —
    // machine noise only ever adds time, so the minimum across runs is
    // the robust estimate. Re-running the two-invocation recipe a few
    // times converges the summary on a quiet-machine comparison.
    if let Ok(old) = std::fs::read_to_string(path) {
        for line in old.lines() {
            let line = line.trim_end_matches(',');
            if let Some(idx) = line.find("{\"mode\": \"") {
                let mode_rest = &line[idx + "{\"mode\": \"".len()..];
                if let Some(end) = mode_rest.find('"') {
                    let mode = &mode_rest[..end];
                    let old_row = line[idx - 4..].to_string();
                    match rows.iter_mut().find(|(m, _)| m == mode) {
                        None => rows.push((mode.to_string(), old_row)),
                        Some((_, new_row)) => {
                            let old_ns = parse_mean_ns(&old_row);
                            let new_ns = parse_mean_ns(new_row);
                            if let (Some(o), Some(n)) = (old_ns, new_ns) {
                                if o < n {
                                    *new_row = old_row;
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    // Stable mode order.
    let order = ["compiled_out", "disabled", "enabled"];
    rows.sort_by_key(|(m, _)| order.iter().position(|o| o == m).unwrap_or(usize::MAX));

    let mean = |mode: &str| -> Option<f64> {
        rows.iter()
            .find(|(m, _)| m == mode)
            .and_then(|(_, r)| parse_mean_ns(r))
    };
    let mut overhead = String::new();
    if let (Some(base), Some(dis), Some(en)) =
        (mean("compiled_out"), mean("disabled"), mean("enabled"))
    {
        let _ = write!(
            overhead,
            ",\n  \"overhead\": {{\"disabled_vs_compiled_out_pct\": {:.2}, \"enabled_vs_compiled_out_pct\": {:.2}}}",
            (dis / base - 1.0) * 100.0,
            (en / base - 1.0) * 100.0
        );
    }

    let mode_rows: Vec<&str> = rows.iter().map(|(_, r)| r.as_str()).collect();
    let cores = pjoin_bench::host::cores_json_fields(false);
    let json = format!(
        "{{\n  \"bench\": \"trace_overhead\",\n  {cores}\n  \"elements\": {},\n  \"note\": \"single-operator hot path over the shard-scaling workload; compiled_out requires a PJOIN_TRACE_DISABLE=1 build, so run the bench once with that env var and once without — the summary merges across invocations, keeping each mode's fastest run\",\n  \"modes\": [\n{}\n  ]{}\n}}\n",
        feed.len(),
        mode_rows.join(",\n"),
        overhead
    );
    match std::fs::write(path, json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn main() {
    // The summary compares numbers across two separate builds, so each
    // mode needs tighter confidence than the quick default budget gives.
    if std::env::var_os("CRITERION_BUDGET_MS").is_none() {
        std::env::set_var("CRITERION_BUDGET_MS", "3000");
    }
    let mut c = Criterion::default();
    bench_trace_overhead(&mut c);
    c.final_summary();
    // Keep `cargo test` runs side-effect free; only a real bench run
    // refreshes the summary file.
    if !std::env::args().any(|a| a == "--test") {
        write_summary(&c);
    }
}
