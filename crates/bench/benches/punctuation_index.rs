//! Ablation of punctuation-index building (DESIGN.md §7): eager
//! (per-punctuation) vs lazy (batched) builds over the same load.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pjoin::record::PRecord;
use pjoin::JoinState;
use punct_types::{Punctuation, Tuple};
use stream_sim::Work;

fn state_with(tuples: usize) -> JoinState {
    let mut s = JoinState::new(2, 0, 8, 64);
    for k in 0..tuples {
        s.store.insert(PRecord::arriving(Tuple::of(((k % 100) as i64, k as i64)), k as u64));
    }
    s
}

/// Eager: one build per punctuation (N scans, 1 new punctuation each).
fn bench_eager_builds(c: &mut Criterion) {
    c.bench_function("index_build_eager_16_puncts", |b| {
        b.iter_batched(
            || state_with(5_000),
            |mut s| {
                let mut w = Work::ZERO;
                for k in 0..16i64 {
                    s.index.insert(Punctuation::close_value(2, 0, k));
                    s.index_build(&mut w);
                }
                black_box(w.index_evals)
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

/// Lazy: one build covering all punctuations (1 scan, N new).
fn bench_lazy_build(c: &mut Criterion) {
    c.bench_function("index_build_lazy_16_puncts", |b| {
        b.iter_batched(
            || state_with(5_000),
            |mut s| {
                let mut w = Work::ZERO;
                for k in 0..16i64 {
                    s.index.insert(Punctuation::close_value(2, 0, k));
                }
                s.index_build(&mut w);
                black_box(w.index_evals)
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

/// Incremental rebuild on an already-indexed state: the paper's "avoid
/// duplicate expression evaluations" claim — only pid-null tuples are
/// evaluated.
fn bench_incremental_rebuild(c: &mut Criterion) {
    c.bench_function("index_build_incremental_rebuild", |b| {
        b.iter_batched(
            || {
                let mut s = state_with(5_000);
                let mut w = Work::ZERO;
                for k in 0..50i64 {
                    s.index.insert(Punctuation::close_value(2, 0, k));
                }
                s.index_build(&mut w);
                s
            },
            |mut s| {
                // One more punctuation: the rebuild re-scans but evaluates
                // only the still-unindexed tuples against one pattern.
                let mut w = Work::ZERO;
                s.index.insert(Punctuation::close_value(2, 0, 50));
                s.index_build(&mut w);
                black_box(w.index_evals)
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_eager_builds, bench_lazy_build, bench_incremental_rebuild);
criterion_main!(benches);
