//! Microbenchmarks of the spillable hash state: insert/probe throughput
//! at increasing occupancies, and the spill / read-back path.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use punct_types::{Tuple, Value};
use spillstore::{PartitionedStore, SimDisk, StoreConfig};

fn store(buckets: usize) -> PartitionedStore<Tuple> {
    PartitionedStore::new(
        StoreConfig { buckets, page_tuples: 64, ..StoreConfig::default() },
        Box::new(SimDisk::new()),
    )
}

fn filled(buckets: usize, tuples: usize) -> PartitionedStore<Tuple> {
    let mut s = store(buckets);
    for k in 0..tuples {
        s.insert(Tuple::of(((k % 1000) as i64, k as i64)));
    }
    s
}

fn bench_insert(c: &mut Criterion) {
    let mut g = c.benchmark_group("state_insert");
    g.throughput(Throughput::Elements(1));
    g.bench_function("insert", |b| {
        let mut s = store(64);
        let mut k = 0i64;
        b.iter(|| {
            k += 1;
            s.insert(black_box(Tuple::of((k % 1000, k))));
        });
    });
    g.finish();
}

fn bench_probe(c: &mut Criterion) {
    let mut g = c.benchmark_group("state_probe");
    for occupancy in [1_000usize, 10_000, 100_000] {
        let s = filled(64, occupancy);
        let key = Value::Int(500);
        g.bench_with_input(BenchmarkId::new("scan_bucket", occupancy), &occupancy, |b, _| {
            b.iter(|| {
                let bucket = s.probe_memory(black_box(&key));
                let mut hits = 0u32;
                for r in bucket {
                    if r.get(0).is_some_and(|v| v.join_eq(&key)) {
                        hits += 1;
                    }
                }
                black_box(hits)
            })
        });
    }
    g.finish();
}

fn bench_spill_and_read(c: &mut Criterion) {
    let mut g = c.benchmark_group("state_spill");
    g.bench_function("spill_bucket_1000", |b| {
        b.iter_batched(
            || filled(1, 1_000),
            |mut s| {
                let report = s.spill_bucket(0);
                black_box(report)
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.bench_function("read_disk_1000", |b| {
        let mut s = filled(1, 1_000);
        s.spill_bucket(0);
        b.iter(|| {
            let (records, pages) = s.read_disk(0);
            black_box((records.len(), pages))
        })
    });
    g.finish();
}

fn bench_purge_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("state_retain");
    for occupancy in [1_000usize, 10_000] {
        g.bench_with_input(BenchmarkId::new("retain_all", occupancy), &occupancy, |b, &n| {
            b.iter_batched(
                || filled(64, n),
                |mut s| {
                    let (scanned, removed) =
                        s.retain_memory(|r| r.get(0).unwrap().as_int().unwrap() % 10 != 0);
                    black_box((scanned, removed))
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_insert, bench_probe, bench_spill_and_read, bench_purge_scan);
criterion_main!(benches);
