//! Microbenchmarks of the punctuation pattern machinery: per-tuple
//! pattern evaluation is the inner loop of purge scans and index builds.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use punct_types::{Pattern, PunctId, Punctuation, PunctuationSet, Tuple, Value};

fn bench_pattern_matches(c: &mut Criterion) {
    let mut g = c.benchmark_group("pattern_matches");
    let v = Value::Int(500);
    let cases = [
        ("wildcard", Pattern::Wildcard),
        ("constant_hit", Pattern::Constant(Value::Int(500))),
        ("constant_miss", Pattern::Constant(Value::Int(7))),
        ("range", Pattern::int_range(400, 600)),
        (
            "enumeration16",
            Pattern::enumeration((0..16).map(|i| Value::Int(i * 100)).collect()),
        ),
    ];
    for (name, p) in cases {
        g.bench_function(name, |b| b.iter(|| black_box(p.matches(black_box(&v)))));
    }
    g.finish();
}

fn bench_punctuation_matches(c: &mut Criterion) {
    let p = Punctuation::close_value(4, 0, 42i64);
    let hit = Tuple::of((42i64, 1i64, 2i64, 3i64));
    let miss = Tuple::of((41i64, 1i64, 2i64, 3i64));
    c.bench_function("punctuation_matches_hit", |b| {
        b.iter(|| black_box(p.matches(black_box(&hit))))
    });
    c.bench_function("punctuation_matches_miss", |b| {
        b.iter(|| black_box(p.matches(black_box(&miss))))
    });
}

fn bench_set_match(c: &mut Criterion) {
    let mut g = c.benchmark_group("punct_set_match");
    for size in [16usize, 256, 4096] {
        // Constant punctuations: the hash fast path.
        let mut constants = PunctuationSet::new(0);
        for k in 0..size {
            constants.insert(Punctuation::close_value(2, 0, k as i64));
        }
        let t = Tuple::of(((size / 2) as i64, 0i64));
        g.bench_with_input(BenchmarkId::new("constants", size), &size, |b, _| {
            b.iter(|| black_box(constants.set_match(black_box(&t))))
        });

        // Range punctuations: the linear path.
        let mut ranges = PunctuationSet::new(0);
        for k in 0..size {
            ranges.insert(Punctuation::on_attr(
                2,
                0,
                Pattern::int_range(k as i64 * 10, k as i64 * 10 + 9),
            ));
        }
        let t = Tuple::of(((size as i64 / 2) * 10, 0i64));
        g.bench_with_input(BenchmarkId::new("ranges", size), &size, |b, _| {
            b.iter(|| black_box(ranges.set_match(black_box(&t))))
        });
    }
    g.finish();
}

fn bench_set_match_after(c: &mut Criterion) {
    let mut set = PunctuationSet::new(0);
    for k in 0..1024i64 {
        set.insert(Punctuation::close_value(2, 0, k));
    }
    let t = Tuple::of((1000i64, 0i64));
    c.bench_function("set_match_after_incremental", |b| {
        b.iter(|| black_box(set.set_match_after(black_box(&t), PunctId(512))))
    });
}

criterion_group!(
    benches,
    bench_pattern_matches,
    bench_punctuation_matches,
    bench_set_match,
    bench_set_match_after
);
criterion_main!(benches);
