//! Ablation of the purge design choices (DESIGN.md §7): total purge cost
//! eager vs batched, and the on-the-fly drop check.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pjoin::components::purge::purge_state;
use pjoin::record::PRecord;
use pjoin::JoinState;
use punct_types::{Pattern, Tuple, Value};
use stream_sim::Work;

const BUCKETS: usize = 8;

fn state_with(tuples: usize) -> JoinState {
    let mut s = JoinState::new(2, 0, BUCKETS, 64);
    for k in 0..tuples {
        s.store.insert(PRecord::arriving(Tuple::of(((k % 100) as i64, k as i64)), k as u64));
    }
    s
}

/// One purge applying `n_patterns` at once over a state of `tuples` —
/// the unit of both eager (n=1) and lazy (n=threshold) purging.
fn bench_purge_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("purge_scan");
    for (tuples, n_patterns) in [(1_000, 1), (1_000, 10), (10_000, 1), (10_000, 10)] {
        let patterns: Vec<Pattern> =
            (0..n_patterns).map(|k| Pattern::Constant(Value::Int(k as i64))).collect();
        let id = format!("{tuples}t_{n_patterns}p");
        g.bench_with_input(BenchmarkId::from_parameter(id), &tuples, |b, &n| {
            b.iter_batched(
                || state_with(n),
                |mut s| {
                    let mut w = Work::ZERO;
                    let r = purge_state(&mut s, &patterns, &[false; BUCKETS], 1_000_000, &mut w);
                    black_box(r)
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

/// Eager (1 punctuation per purge, N purges) vs batched (N punctuations
/// per purge, 1 purge) over the same punctuation load: the scan-sharing
/// the lazy strategy exists for.
fn bench_eager_vs_batched_total(c: &mut Criterion) {
    let mut g = c.benchmark_group("purge_total_cost");
    let n = 32usize;
    let patterns: Vec<Pattern> = (0..n).map(|k| Pattern::Constant(Value::Int(k as i64))).collect();

    g.bench_function("eager_32_purges", |b| {
        b.iter_batched(
            || state_with(5_000),
            |mut s| {
                let mut w = Work::ZERO;
                for p in &patterns {
                    purge_state(
                        &mut s,
                        std::slice::from_ref(p),
                        &[false; BUCKETS],
                        1_000_000,
                        &mut w,
                    );
                }
                black_box(w.purge_scanned)
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.bench_function("batched_1_purge", |b| {
        b.iter_batched(
            || state_with(5_000),
            |mut s| {
                let mut w = Work::ZERO;
                purge_state(&mut s, &patterns, &[false; BUCKETS], 1_000_000, &mut w);
                black_box(w.purge_scanned)
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// The per-arrival on-the-fly drop check (`covers_join_value`).
fn bench_on_the_fly_check(c: &mut Criterion) {
    let mut s = JoinState::new(2, 0, BUCKETS, 64);
    for k in 0..1_000i64 {
        s.index.insert(punct_types::Punctuation::close_value(2, 0, k));
    }
    let hit = Value::Int(500);
    let miss = Value::Int(5_000);
    c.bench_function("on_the_fly_covers_hit", |b| {
        b.iter(|| black_box(s.index.covers_join_value(black_box(&hit))))
    });
    c.bench_function("on_the_fly_covers_miss", |b| {
        b.iter(|| black_box(s.index.covers_join_value(black_box(&miss))))
    });
}

criterion_group!(
    benches,
    bench_purge_scan,
    bench_eager_vs_batched_total,
    bench_on_the_fly_check
);
criterion_main!(benches);
