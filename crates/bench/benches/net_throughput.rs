//! Loopback throughput of the networked transport.
//!
//! Measures frames/sec and bytes/sec through the full socket path —
//! client encode → TCP loopback → ingest server decode/dedup → bounded
//! channel — under four profiles crossing two workload shapes with the
//! fault proxy on and off:
//!
//! * **tuple-heavy**: the generator's default mix (~1 punctuation per
//!   20 tuples), the steady-state data path.
//! * **punctuation-heavy**: 1 punctuation per 2 tuples, stressing
//!   pattern encode/decode (punctuation payloads are pattern lists, the
//!   most structurally complex frames on the wire).
//! * each, again, through the in-process fault proxy injecting drops
//!   and one forced disconnect — the price of the resume machinery.
//!
//! Results land in `BENCH_net.json`.

use std::fmt::Write as _;

use criterion::{black_box, BenchmarkId, Criterion, Throughput};
use punct_net::{
    encode_frame, BackoffPolicy, ClientOptions, FaultConfig, FaultProxy, Frame, IngestOptions,
    IngestServer,
};
use punct_types::{StreamElement, Timestamped};
use stream_sim::Side;
use streamgen::{generate_stream, PunctScheme, StreamConfig};

const TUPLES: usize = 3_000;

struct Workload {
    name: &'static str,
    elements: Vec<Timestamped<StreamElement>>,
    schema: punct_types::Schema,
    wire_bytes: u64,
}

fn workloads() -> Vec<Workload> {
    let mk = |name: &'static str, punct_mean: f64| {
        let config = StreamConfig {
            tuples: TUPLES,
            key_window: 16,
            punct_scheme: PunctScheme::ConstantPerKey,
            punct_mean_tuples: punct_mean,
            seed: 11,
            ..StreamConfig::default()
        };
        let schema = config.schema();
        let s = generate_stream(&config);
        let wire_bytes = s
            .elements
            .iter()
            .enumerate()
            .map(|(i, e)| {
                encode_frame(&Frame::Data {
                    seq: i as u64,
                    element: e.clone(),
                })
                .len() as u64
            })
            .sum();
        Workload {
            name,
            elements: s.elements,
            schema,
            wire_bytes,
        }
    };
    vec![mk("tuple_heavy", 20.0), mk("punct_heavy", 2.0)]
}

/// One full transfer over loopback; `faults` routes it through the
/// proxy. Returns (elements delivered, reconnects).
fn run_once(w: &Workload, faults: bool) -> (usize, u32) {
    let (server, rx) = IngestServer::bind(&[Side::Left], IngestOptions::default()).expect("bind");
    let proxy = if faults {
        Some(
            FaultProxy::spawn(
                server.addr(),
                FaultConfig::lossy(200, 4, 1, w.elements.len() as u64 / 2, 13),
            )
            .expect("proxy"),
        )
    } else {
        None
    };
    let target = proxy.as_ref().map_or(server.addr(), |p| p.addr());
    let opts = ClientOptions {
        policy: BackoffPolicy::fast(),
        seed: 5,
        ..ClientOptions::default()
    };
    // Drain concurrently so server-side backpressure reflects a live
    // consumer, not a full channel.
    let drain = std::thread::spawn(move || {
        let mut n = 0usize;
        while rx.recv_timeout(std::time::Duration::from_secs(2)).is_ok() {
            n += 1;
        }
        n
    });
    let report =
        punct_net::send_stream(target, 0, Side::Left, &w.schema, &w.elements, &opts).expect("send");
    assert_eq!(report.acked, w.elements.len() as u64);
    drop(server);
    let delivered = drain.join().expect("drain thread");
    (delivered, report.reconnects)
}

fn bench_net(c: &mut Criterion) {
    for w in &workloads() {
        let mut g = c.benchmark_group(format!("net_{}", w.name));
        g.throughput(Throughput::Elements(w.elements.len() as u64));
        for &faults in &[false, true] {
            let id = if faults { "faulty" } else { "clean" };
            g.bench_with_input(BenchmarkId::new(id, w.elements.len()), &faults, |b, &f| {
                b.iter(|| black_box(run_once(w, f)).0)
            });
        }
        g.finish();
    }
}

fn write_summary(c: &Criterion) {
    let mut rows = String::new();
    for w in &workloads() {
        let (delivered, _) = run_once(w, false);
        let (_, reconnects_faulty) = run_once(w, true);
        for &faults in &[false, true] {
            let id = if faults { "faulty" } else { "clean" };
            let m = c
                .measurements()
                .iter()
                .find(|m| {
                    m.group == format!("net_{}", w.name)
                        && m.id == format!("{id}/{}", w.elements.len())
                })
                .cloned();
            let eps = m.as_ref().and_then(|m| m.per_second()).unwrap_or(0.0);
            let mean_ns = m.as_ref().map(|m| m.mean_ns).unwrap_or(0.0);
            // frames/s == elements/s (one Data frame per element);
            // bytes/s scales by the workload's measured wire size.
            let bytes_per_sec = eps * (w.wire_bytes as f64 / w.elements.len() as f64);
            if !rows.is_empty() {
                rows.push_str(",\n");
            }
            let _ = write!(
                rows,
                "    {{\"workload\": \"{}\", \"profile\": \"{}\", \"elements\": {}, \"wire_bytes\": {}, \"mean_ns\": {:.1}, \"frames_per_sec\": {:.1}, \"bytes_per_sec\": {:.1}, \"delivered\": {}, \"reconnects_under_faults\": {}}}",
                w.name,
                id,
                w.elements.len(),
                w.wire_bytes,
                mean_ns,
                eps,
                bytes_per_sec,
                delivered,
                if faults { reconnects_faulty } else { 0 },
            );
        }
    }
    let cores = pjoin_bench::host::cores_json_fields(false);
    let json = format!(
        "{{\n  \"bench\": \"net_throughput\",\n  {cores}\n  \"note\": \"full loopback path: client encode, TCP, ingest decode + sequence dedup, bounded channel; faulty profile adds the in-process proxy with ~1/200 data-frame drops and one forced disconnect\",\n  \"measurements\": [\n{rows}\n  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_net.json");
    match std::fs::write(path, json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn main() {
    let mut c = Criterion::default();
    bench_net(&mut c);
    c.final_summary();
    // Keep `cargo test` runs side-effect free; only a real bench run
    // refreshes the summary file.
    if !std::env::args().any(|a| a == "--test") {
        write_summary(&c);
    }
}
