//! Tag-scan kernel microbench: `ProbeKernel::scan_tags` throughput per
//! kernel (scalar / SWAR / AVX2 where supported) and bucket occupancy.
//!
//! This is the storage layer's innermost probe loop — the scan that
//! finds every slot whose tag matches a probe tag inside a bucket's
//! packed tag array. The data-parallel kernels reduce 64-tag windows to
//! a `u64` match bitmask and pop hits with `trailing_zeros`, so their
//! advantage grows with occupancy; the acceptance bar for the rework is
//! >= 1.5x over the scalar reference at 10k+ occupancy for the best
//! kernel the host supports.
//!
//! The criterion sweep below is for interactive display. The recorded
//! numbers live in `BENCH_multicore.json`, written by the
//! `multicore_scaling` bench from the same shared sweep
//! (`pjoin_bench::kernel_sweep`) — one owner per summary file, so the
//! two binaries never race on it. A final stdout table here reports the
//! shared sweep's speedups for quick eyeballing.

use criterion::{black_box, BenchmarkId, Criterion, Throughput};
use pjoin_bench::kernel_sweep::{build_tags, probe_kernel_sweep, OCCUPANCIES};
use spillstore::ProbeKernel;

fn bench_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("probe_kernel");
    for &occupancy in &OCCUPANCIES {
        let (tags, probe) = build_tags(occupancy, 0x5EED + occupancy as u64);
        g.throughput(Throughput::Elements(occupancy as u64));
        let mut hits = Vec::with_capacity(occupancy / 64 + 8);
        for kernel in ProbeKernel::supported() {
            g.bench_with_input(
                BenchmarkId::new(kernel.name(), occupancy),
                &occupancy,
                |b, _| {
                    b.iter(|| {
                        hits.clear();
                        kernel.scan_tags(black_box(&tags), black_box(probe), &mut hits);
                        hits.len()
                    })
                },
            );
        }
    }
    g.finish();
}

fn main() {
    let mut c = Criterion::default();
    bench_kernels(&mut c);
    c.final_summary();

    // Smoke mode (`-- --test`, used by CI and `cargo test --benches`)
    // skips the recorded sweep; a real run prints it for eyeballing.
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    println!("\nrecorded sweep (shared with BENCH_multicore.json):");
    println!(
        "{:<8} {:>10} {:>16} {:>10}",
        "kernel", "occupancy", "tags/s", "vs scalar"
    );
    let rows = probe_kernel_sweep(20_000_000);
    for r in &rows {
        println!(
            "{:<8} {:>10} {:>16.0} {:>9.2}x",
            r.kernel, r.occupancy, r.tags_per_sec, r.speedup_vs_scalar
        );
    }
    let best_at_10k = rows
        .iter()
        .filter(|r| r.occupancy >= 10_000)
        .map(|r| r.speedup_vs_scalar)
        .fold(0.0f64, f64::max);
    println!(
        "\nbest kernel at >=10k occupancy: {best_at_10k:.2}x vs scalar (acceptance bar: 1.5x)"
    );
    if best_at_10k < 1.5 {
        eprintln!("WARNING: best kernel under the 1.5x bar on this host");
    }
}
