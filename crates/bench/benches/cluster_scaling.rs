//! Cluster execution over loopback: end-to-end throughput by worker
//! count, and the cost of an elastic repartition.
//!
//! Two families of measurements land in `BENCH_cluster.json`:
//!
//! * **throughput**: a keyed punctuated workload pushed through a full
//!   cluster — coordinator routing, TCP loopback to every worker's
//!   ingest server, PJoin shards, TCP back through each worker's sink —
//!   for 1, 2, and 4 workers. Elements/sec covers assembly to final
//!   drain, so it prices the whole distributed path, not just the join.
//! * **migration pause**: the coordinator-observed stop-the-world window
//!   of one mid-stream repartition (barrier in, state over the wire,
//!   commit, punctuation re-injection) as a function of the number of
//!   resident records at the barrier.
//!
//! Workers run as threads (the worker loop is identical to the
//! `punct-worker` binary); all traffic still crosses real sockets.

use std::fmt::Write as _;
use std::time::Duration;

use criterion::{black_box, BenchmarkId, Criterion, Throughput};
use punct_cluster::{run_worker, Cluster, ClusterOptions, JoinSpec, WorkerOptions};
use punct_net::{BackoffPolicy, ClientOptions};
use punct_types::{Pattern, Punctuation, StreamElement, Timestamp, Timestamped, Tuple};
use stream_sim::Side;

const KEYS: i64 = 800;

/// Keyed pairs with trailing per-key close punctuations and stream-end
/// wildcards — the grammatical steady-state shape: state is purged a few
/// keys behind the frontier, so workers stay small.
fn workload(keys: i64) -> Vec<(Side, StreamElement)> {
    let mut work: Vec<(Side, StreamElement)> = Vec::new();
    for k in 0..keys {
        work.push((Side::Left, Tuple::of((k, 10 * k)).into()));
        work.push((Side::Right, Tuple::of((k, -k)).into()));
        if k >= 4 {
            let c = k - 4;
            work.push((Side::Left, Punctuation::close_value(2, 0, c).into()));
            work.push((Side::Right, Punctuation::close_value(2, 0, c).into()));
        }
    }
    let wild = Punctuation::on_attr(2, 0, Pattern::Wildcard);
    work.push((Side::Left, wild.clone().into()));
    work.push((Side::Right, wild.into()));
    work
}

fn options(workers: usize) -> ClusterOptions {
    let mut opts = ClusterOptions::new(JoinSpec::new(2, 2), workers, workers);
    opts.client = ClientOptions {
        policy: BackoffPolicy::fast(),
        seed: 77,
        ..ClientOptions::default()
    };
    opts
}

fn spawn_cluster(
    opts: ClusterOptions,
) -> (
    Cluster,
    Vec<std::thread::JoinHandle<Result<punct_cluster::WorkerReport, punct_cluster::ClusterError>>>,
) {
    let workers = opts.workers as u32;
    let mut cluster = Cluster::bind(opts).expect("bind coordinator");
    let ctrl = cluster.ctrl_addr();
    let handles: Vec<_> = (0..workers)
        .map(|i| std::thread::spawn(move || run_worker(WorkerOptions::new(i, ctrl))))
        .collect();
    cluster.accept_workers().expect("assemble cluster");
    (cluster, handles)
}

/// One full run: assemble, stream, drain, tear down. Returns elements out.
fn run_once(workers: usize, work: &[(Side, StreamElement)]) -> usize {
    let (mut cluster, handles) = spawn_cluster(options(workers));
    let mut outputs = 0usize;
    for (i, (side, el)) in work.iter().enumerate() {
        cluster
            .push(*side, Timestamped::new(Timestamp(i as u64), el.clone()))
            .expect("push");
        if i % 128 == 0 {
            outputs += cluster.poll_outputs().expect("poll").len();
        }
    }
    let report = cluster.finish().expect("finish");
    outputs += report.outputs.len();
    for h in handles {
        h.join().expect("worker thread").expect("worker");
    }
    outputs
}

/// One repartition with `resident` unclosed left records at the barrier.
/// Returns (records moved, coordinator-observed pause).
fn migrate_once(workers: usize, resident: i64) -> (u64, Duration) {
    let (mut cluster, handles) = spawn_cluster(options(workers));
    for k in 0..resident {
        cluster
            .push_tuple(Side::Left, k as u64, Tuple::of((k, 10 * k)))
            .expect("push");
    }
    let stats = cluster.repartition(workers * 2).expect("repartition");
    // Close everything out so teardown is clean.
    for k in 0..resident {
        cluster
            .push_tuple(Side::Right, (resident + k) as u64, Tuple::of((k, -k)))
            .expect("push");
    }
    let wild = Punctuation::on_attr(2, 0, Pattern::Wildcard);
    for side in [Side::Left, Side::Right] {
        cluster
            .push(
                side,
                Timestamped::new(Timestamp(3 * resident as u64), wild.clone().into()),
            )
            .expect("push punct");
    }
    cluster.finish().expect("finish");
    for h in handles {
        h.join().expect("worker thread").expect("worker");
    }
    (stats.records_moved, stats.pause)
}

fn bench_cluster(c: &mut Criterion) {
    let work = workload(KEYS);
    let mut g = c.benchmark_group("cluster_throughput");
    g.throughput(Throughput::Elements(work.len() as u64));
    g.sample_size(10);
    for &workers in &[1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, &w| {
            b.iter(|| black_box(run_once(w, &work)))
        });
    }
    g.finish();
}

fn write_summary(c: &Criterion) {
    let work = workload(KEYS);
    let mut rows = String::new();
    for &workers in &[1usize, 2, 4] {
        let m = c
            .measurements()
            .iter()
            .find(|m| m.group == "cluster_throughput" && m.id == format!("workers/{workers}"))
            .cloned();
        let eps = m.as_ref().and_then(|m| m.per_second()).unwrap_or(0.0);
        let mean_ns = m.as_ref().map(|m| m.mean_ns).unwrap_or(0.0);
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        let _ = write!(
            rows,
            "    {{\"kind\": \"throughput\", \"workers\": {}, \"elements\": {}, \"mean_ns\": {:.1}, \"elements_per_sec\": {:.1}}}",
            workers,
            work.len(),
            mean_ns,
            eps,
        );
    }
    // Migration pause: direct coordinator-side measurement, three state
    // sizes, two workers -> four shards.
    for &resident in &[100i64, 400, 1600] {
        let (moved, pause) = migrate_once(2, resident);
        rows.push_str(",\n");
        let _ = write!(
            rows,
            "    {{\"kind\": \"migration_pause\", \"workers\": 2, \"resident_records\": {}, \"records_moved\": {}, \"pause_ns\": {}}}",
            resident,
            moved,
            pause.as_nanos(),
        );
    }
    let cores = pjoin_bench::host::cores_json_fields(true);
    let json = format!(
        "{{\n  \"bench\": \"cluster_scaling\",\n  {cores}\n  \"note\": \"full distributed path over loopback: coordinator routing, per-worker TCP ingest, PJoin shards, TCP sink, exactly-once alignment; with cores <= worker count the coordinator and all workers share CPUs, so worker count prices coordination overhead, not parallel speedup; migration pause is the coordinator-observed stop-the-world window of one barrier-coordinated repartition (2 workers, 2 -> 4 shards)\",\n  \"measurements\": [\n{rows}\n  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cluster.json");
    match std::fs::write(path, json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn main() {
    pjoin_bench::host::warn_if_single_core("cluster_scaling");
    let mut c = Criterion::default();
    bench_cluster(&mut c);
    c.final_summary();
    // Keep `cargo test` runs side-effect free; only a real bench run
    // refreshes the summary file.
    if !std::env::args().any(|a| a == "--test") {
        write_summary(&c);
    }
}
