//! Shard-scaling of the parallel PJoin executor: end-to-end throughput
//! and per-shard load balance over 1/2/4/8 shards.
//!
//! Two metrics land in `BENCH_shard.json`:
//!
//! * **Wall-clock throughput** (criterion): elements/sec through the
//!   full pipeline — router, shard workers, alignment, merge. On a
//!   multi-core host this shows parallel speedup; on the single-core
//!   container used for committed figures it mostly shows pipeline
//!   overhead, so it is reported alongside (not instead of)
//! * **virtual-time speedup**: the cost-model critical path — the most
//!   heavily loaded shard's modeled nanoseconds (`max` over shards of
//!   `CostModel::nanos(work)`), the repo-standard simulation metric
//!   every paper figure uses. With balanced hash partitioning this
//!   approaches `total/N`, the speedup an N-core deployment realizes.
//!   The `cores` field records the host parallelism so readers can tell
//!   which regime the wall numbers came from.

use std::fmt::Write as _;

use criterion::{black_box, BenchmarkId, Criterion, Throughput};
use pjoin::PJoinConfig;
use punct_exec::{shards_from_env, ExecConfig, ExecStats, ShardedPJoin};
use punct_types::{StreamElement, Timestamped};
use stream_sim::{CostModel, Side};
use streamgen::{generate_pair, PunctScheme, StreamConfig};

const BASE_SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const TUPLES_PER_SIDE: usize = 4_000;
const PUSH_CHUNK: usize = 512;

fn shard_counts() -> Vec<usize> {
    let mut counts = BASE_SHARD_COUNTS.to_vec();
    if let Some(s) = shards_from_env() {
        if !counts.contains(&s) {
            counts.push(s);
            counts.sort_unstable();
        }
    }
    counts
}

/// The benchmark workload: a generated punctuated pair (constant-per-key
/// punctuations every ~20 tuples), interleaved by timestamp.
fn workload() -> Vec<(Side, Timestamped<StreamElement>)> {
    let config = StreamConfig {
        tuples: TUPLES_PER_SIDE,
        key_window: 16,
        punct_scheme: PunctScheme::ConstantPerKey,
        punct_mean_tuples: 20.0,
        seed: 7,
        ..StreamConfig::default()
    };
    let (left, right) = generate_pair(&config, 20.0, 20.0);
    let mut feed = Vec::with_capacity(left.elements.len() + right.elements.len());
    let (mut i, mut j) = (0, 0);
    while i < left.elements.len() || j < right.elements.len() {
        let take_left = match (left.elements.get(i), right.elements.get(j)) {
            (Some(l), Some(r)) => l.ts <= r.ts,
            (Some(_), None) => true,
            _ => false,
        };
        if take_left {
            feed.push((Side::Left, left.elements[i].clone()));
            i += 1;
        } else {
            feed.push((Side::Right, right.elements[j].clone()));
            j += 1;
        }
    }
    feed
}

/// One full run: spawn, push in chunks (polling outputs to keep the
/// pipeline flowing and sampling peak aggregate state), finish.
fn run_once(
    shards: usize,
    feed: &[(Side, Timestamped<StreamElement>)],
) -> (usize, usize, ExecStats) {
    let exec = ShardedPJoin::spawn(ExecConfig::new(shards, PJoinConfig::new(2, 2)));
    let mut outputs = 0usize;
    let mut peak_state = 0usize;
    for chunk in feed.chunks(PUSH_CHUNK) {
        exec.push_batch(chunk.to_vec());
        outputs += exec.poll_outputs().len();
        peak_state = peak_state.max(exec.metrics().state_tuples);
    }
    let (rest, stats) = exec.finish();
    outputs += rest.len();
    peak_state = peak_state.max(stats.total_metrics().state_tuples);
    (outputs, peak_state, stats)
}

fn bench_shard_scaling(c: &mut Criterion) {
    let feed = workload();
    let mut g = c.benchmark_group("shard_scaling");
    g.throughput(Throughput::Elements(feed.len() as u64));
    for shards in shard_counts() {
        g.bench_with_input(BenchmarkId::new("end_to_end", shards), &shards, |b, &s| {
            b.iter(|| black_box(run_once(s, &feed)).0)
        });
    }
    g.finish();
}

fn write_summary(c: &Criterion) {
    let feed = workload();
    let cost = CostModel::default();
    let counts = shard_counts();

    // One instrumented run per shard count for the virtual-time and
    // state columns.
    struct Row {
        shards: usize,
        outputs: usize,
        peak_state: usize,
        critical_ns: u64,
        total_ns: u64,
        max_shard_tuples: u64,
    }
    let rows: Vec<Row> = counts
        .iter()
        .map(|&shards| {
            let (outputs, peak_state, stats) = run_once(shards, &feed);
            Row {
                shards,
                outputs,
                peak_state,
                critical_ns: stats.critical_path_nanos(&cost),
                total_ns: cost.nanos(&stats.total_work()),
                max_shard_tuples: stats
                    .shards
                    .iter()
                    .map(|s| s.metrics.consumed)
                    .max()
                    .unwrap_or(0),
            }
        })
        .collect();
    let base_ns = rows
        .iter()
        .find(|r| r.shards == 1)
        .map(|r| r.critical_ns)
        .unwrap_or(0);

    let mut measurements = String::new();
    for m in c.measurements() {
        if !measurements.is_empty() {
            measurements.push_str(",\n");
        }
        let _ = write!(
            measurements,
            "    {{\"group\": \"{}\", \"id\": \"{}\", \"mean_ns\": {:.1}, \"elements_per_sec\": {:.1}}}",
            m.group,
            m.id,
            m.mean_ns,
            m.per_second().unwrap_or(0.0)
        );
    }

    let mut scaling = String::new();
    for r in &rows {
        if !scaling.is_empty() {
            scaling.push_str(",\n");
        }
        let wall = c
            .measurements()
            .iter()
            .find(|m| m.id == format!("end_to_end/{}", r.shards))
            .and_then(|m| m.per_second())
            .unwrap_or(0.0);
        let _ = write!(
            scaling,
            "    {{\"shards\": {}, \"wall_elements_per_sec\": {:.1}, \"virtual_critical_path_ns\": {}, \"virtual_total_ns\": {}, \"virtual_speedup_vs_1shard\": {:.2}, \"virtual_throughput_elements_per_sec\": {:.1}, \"peak_aggregate_state_tuples\": {}, \"max_shard_consumed\": {}, \"outputs\": {}}}",
            r.shards,
            wall,
            r.critical_ns,
            r.total_ns,
            base_ns as f64 / r.critical_ns.max(1) as f64,
            feed.len() as f64 * 1e9 / r.critical_ns.max(1) as f64,
            r.peak_state,
            r.max_shard_tuples,
            r.outputs,
        );
    }

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let cores_fields = pjoin_bench::host::cores_json_fields(true);
    let json = format!(
        "{{\n  \"bench\": \"shard_scaling\",\n  {cores_fields}\n  \"elements\": {},\n  \"note\": \"virtual-time speedup is the cost-model critical path (max per-shard modeled work), the repo-standard simulation metric; wall throughput on a {cores}-core host cannot show parallel speedup when cores=1\",\n  \"measurements\": [\n{measurements}\n  ],\n  \"scaling\": [\n{scaling}\n  ]\n}}\n",
        feed.len()
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_shard.json");
    match std::fs::write(path, json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn main() {
    pjoin_bench::host::warn_if_single_core("shard_scaling");
    let mut c = Criterion::default();
    bench_shard_scaling(&mut c);
    c.final_summary();
    // Keep `cargo test` runs side-effect free; only a real bench run
    // refreshes the summary file.
    if !std::env::args().any(|a| a == "--test") {
        write_summary(&c);
    }
}
