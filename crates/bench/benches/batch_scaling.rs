//! Batch-size scaling of the data path: how far batching amortizes the
//! per-element costs the first reproduction paid everywhere (a channel
//! send per tuple in the executor, a wire frame and a syscall per tuple
//! on the network).
//!
//! Two lanes, each swept over `PJOIN_BATCH` ∈ {1, 16, 64, 256, 1024}
//! (plus whatever the environment adds, so the CI batch matrix folds
//! its leg into the sweep):
//!
//! * **in_process** — the sharded executor (4 shards) fed a timestamp-
//!   interleaved generated pair; frames are router batches (channel
//!   sends).
//! * **networked** — the full loopback path: two TCP sources through
//!   the ingest server into the sharded executor; frames are wire
//!   frames (`Data` frames at batch 1, `DataBatch` frames otherwise,
//!   counted from the client traces).
//!
//! Latency is reported as the punctuation round trip — from the moment
//! a punctuation is pushed into the executor to the moment it emerges
//! aligned — whose p99 is the bound the flush-barrier design promises
//! to keep flat while throughput climbs. Results land in
//! `BENCH_batch.json`.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use criterion::{black_box, BenchmarkId, Criterion, Throughput};
use pjoin::PJoinConfig;
use punct_exec::{ExecConfig, ShardedPJoin};
use punct_net::{
    spawn_source, BackoffPolicy, ClientOptions, IngestMsg, IngestOptions, IngestServer,
};
use punct_trace::{LatencyHistogram, TraceKind, TraceSettings};
use punct_types::{batch_from_env, BatchConfig, StreamElement, Timestamped};
use stream_sim::Side;
use streamgen::{generate_pair, interleave_sides, PunctScheme, StreamConfig};

const SHARDS: usize = 4;
const INPROC_TUPLES_PER_SIDE: usize = 3_000;
const NET_TUPLES_PER_SIDE: usize = 2_500;
const BASE_BATCH_SIZES: [usize; 5] = [1, 16, 64, 256, 1024];

/// The swept batch sizes; `PJOIN_BATCH` (the CI matrix) adds one.
fn batch_sizes() -> Vec<usize> {
    let mut sizes = BASE_BATCH_SIZES.to_vec();
    if let Some(b) = batch_from_env() {
        if !sizes.contains(&b) {
            sizes.push(b);
            sizes.sort_unstable();
        }
    }
    sizes
}

fn stream_config(tuples: usize) -> StreamConfig {
    StreamConfig {
        tuples,
        key_window: 16,
        punct_scheme: PunctScheme::ConstantPerKey,
        punct_mean_tuples: 20.0,
        seed: 17,
        ..StreamConfig::default()
    }
}

fn inproc_feed() -> Vec<(Side, Timestamped<StreamElement>)> {
    let (left, right) = generate_pair(&stream_config(INPROC_TUPLES_PER_SIDE), 20.0, 20.0);
    interleave_sides(&left.elements, &right.elements)
}

fn net_workload() -> (
    Vec<Timestamped<StreamElement>>,
    Vec<Timestamped<StreamElement>>,
) {
    let (left, right) = generate_pair(&stream_config(NET_TUPLES_PER_SIDE), 20.0, 20.0);
    (left.elements, right.elements)
}

fn exec_config(batch: usize) -> ExecConfig {
    ExecConfig::new(SHARDS, PJoinConfig::new(2, 2)).with_batch(BatchConfig::with_elems(batch))
}

struct RunStats {
    outputs: usize,
    /// Channel (router) or wire frames carrying data, lane-dependent.
    frames: u64,
    /// Punctuation push→aligned-emergence round trip, µs.
    punct_rtt: LatencyHistogram,
}

/// One in-process run, pushing in chunks and draining concurrently.
/// Punctuation round trips pair push instants with emergence instants
/// FIFO — alignment can reorder distinct punctuations slightly, which
/// perturbs individual pairings but not the distribution.
fn run_in_process(batch: usize, feed: &[(Side, Timestamped<StreamElement>)]) -> RunStats {
    let exec = ShardedPJoin::spawn(exec_config(batch));
    let mut punct_in: std::collections::VecDeque<Instant> = std::collections::VecDeque::new();
    let mut punct_rtt = LatencyHistogram::new();
    let mut outputs = 0usize;
    let mut drain = |batch: Vec<Timestamped<StreamElement>>,
                     punct_in: &mut std::collections::VecDeque<Instant>,
                     punct_rtt: &mut LatencyHistogram| {
        for e in batch {
            if e.item.is_punctuation() {
                if let Some(t0) = punct_in.pop_front() {
                    punct_rtt.record(t0.elapsed().as_micros() as u64);
                }
            }
            outputs += 1;
        }
    };
    for chunk in feed.chunks(512) {
        let puncts = chunk
            .iter()
            .filter(|(_, e)| e.item.is_punctuation())
            .count();
        exec.push_batch(chunk.to_vec());
        let now = Instant::now();
        for _ in 0..puncts {
            punct_in.push_back(now);
        }
        drain(exec.poll_outputs(), &mut punct_in, &mut punct_rtt);
    }
    let (rest, stats) = exec.finish();
    drain(rest, &mut punct_in, &mut punct_rtt);
    RunStats {
        outputs,
        frames: stats.router.batches,
        punct_rtt,
    }
}

/// One full loopback networked run: two TCP sources → ingest server →
/// sharded executor, everything batched at `batch`. Wire frames come
/// from the client traces (`NetBatch` instants; at batch 1 the clients
/// emit plain per-element `Data` frames instead).
fn run_networked(
    batch: usize,
    left: &[Timestamped<StreamElement>],
    right: &[Timestamped<StreamElement>],
) -> RunStats {
    let schema = stream_config(NET_TUPLES_PER_SIDE).schema();
    let (server, rx) =
        IngestServer::bind(&[Side::Left, Side::Right], IngestOptions::default()).expect("bind");
    let opts = |seed: u64| {
        ClientOptions {
            policy: BackoffPolicy::fast(),
            seed,
            trace: TraceSettings::enabled(),
            ..ClientOptions::default()
        }
        .with_batch(BatchConfig::with_elems(batch))
    };
    let ls = spawn_source(
        server.addr(),
        0,
        Side::Left,
        schema.clone(),
        left.to_vec(),
        opts(1),
    );
    let rs = spawn_source(
        server.addr(),
        1,
        Side::Right,
        schema,
        right.to_vec(),
        opts(2),
    );

    let exec = ShardedPJoin::spawn(exec_config(batch));
    let mut punct_in: std::collections::VecDeque<Instant> = std::collections::VecDeque::new();
    let mut punct_rtt = LatencyHistogram::new();
    let mut outputs = 0usize;
    let mut drain = |batch: Vec<Timestamped<StreamElement>>,
                     punct_in: &mut std::collections::VecDeque<Instant>,
                     punct_rtt: &mut LatencyHistogram| {
        for e in batch {
            if e.item.is_punctuation() {
                if let Some(t0) = punct_in.pop_front() {
                    punct_rtt.record(t0.elapsed().as_micros() as u64);
                }
            }
            outputs += 1;
        }
    };
    let feed = |msg: IngestMsg| -> usize {
        match msg {
            IngestMsg::One(side, element) => {
                let punct = usize::from(element.item.is_punctuation());
                exec.push(side, element);
                punct
            }
            IngestMsg::Batch(side, batch) => {
                let puncts = batch.iter().filter(|e| e.item.is_punctuation()).count();
                exec.push_side_batch(side, batch);
                puncts
            }
        }
    };
    loop {
        match rx.recv_timeout(Duration::from_millis(1)) {
            Ok(msg) => {
                let mut puncts = feed(msg);
                while let Ok(next) = rx.try_recv() {
                    puncts += feed(next);
                }
                let now = Instant::now();
                for _ in 0..puncts {
                    punct_in.push_back(now);
                }
                drain(exec.poll_outputs(), &mut punct_in, &mut punct_rtt);
            }
            Err(_) => {
                if server.all_finished() {
                    while let Ok(next) = rx.try_recv() {
                        feed(next);
                    }
                    break;
                }
            }
        }
    }
    let (rest, _stats) = exec.finish();
    drain(rest, &mut punct_in, &mut punct_rtt);

    let lr = ls.join().expect("left thread").expect("left client");
    let rr = rs.join().expect("right thread").expect("right client");
    let frames = if batch <= 1 {
        (left.len() + right.len()) as u64
    } else {
        (lr.trace.of_kind(TraceKind::NetBatch).count()
            + rr.trace.of_kind(TraceKind::NetBatch).count()) as u64
    };
    RunStats {
        outputs,
        frames,
        punct_rtt,
    }
}

fn bench_batch_scaling(c: &mut Criterion) {
    let feed = inproc_feed();
    let mut g = c.benchmark_group("batch_inproc");
    g.throughput(Throughput::Elements(feed.len() as u64));
    for batch in batch_sizes() {
        g.bench_with_input(BenchmarkId::new("end_to_end", batch), &batch, |b, &n| {
            b.iter(|| black_box(run_in_process(n, &feed)).outputs)
        });
    }
    g.finish();

    let (left, right) = net_workload();
    let mut g = c.benchmark_group("batch_net");
    g.throughput(Throughput::Elements((left.len() + right.len()) as u64));
    for batch in batch_sizes() {
        g.bench_with_input(BenchmarkId::new("loopback", batch), &batch, |b, &n| {
            b.iter(|| black_box(run_networked(n, &left, &right)).outputs)
        });
    }
    g.finish();
}

fn write_summary(c: &Criterion) {
    let feed = inproc_feed();
    let (left, right) = net_workload();
    let net_elements = left.len() + right.len();

    let eps = |group: &str, id: String| {
        c.measurements()
            .iter()
            .find(|m| m.group == group && m.id == id)
            .and_then(|m| m.per_second())
            .unwrap_or(0.0)
    };

    let mut rows = String::new();
    let mut push_row = |lane: &str,
                        batch: usize,
                        elements: usize,
                        elems_per_sec: f64,
                        base_eps: f64,
                        r: &RunStats| {
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        let frames_per_sec = elems_per_sec * r.frames as f64 / elements.max(1) as f64;
        let _ = write!(
            rows,
            "    {{\"lane\": \"{}\", \"batch\": {}, \"elements\": {}, \"elements_per_sec\": {:.1}, \"speedup_vs_batch1\": {:.2}, \"data_frames\": {}, \"frames_per_sec\": {:.1}, \"punct_rtt_p50_us\": {}, \"punct_rtt_p99_us\": {}, \"punct_rtt_max_us\": {}, \"outputs\": {}}}",
            lane,
            batch,
            elements,
            elems_per_sec,
            if base_eps > 0.0 { elems_per_sec / base_eps } else { 0.0 },
            r.frames,
            frames_per_sec,
            r.punct_rtt.quantile(0.5),
            r.punct_rtt.quantile(0.99),
            r.punct_rtt.max(),
            r.outputs,
        );
    };

    let inproc_base = eps("batch_inproc", "end_to_end/1".to_string());
    for batch in batch_sizes() {
        let r = run_in_process(batch, &feed);
        let e = eps("batch_inproc", format!("end_to_end/{batch}"));
        push_row("in_process", batch, feed.len(), e, inproc_base, &r);
    }
    let net_base = eps("batch_net", "loopback/1".to_string());
    for batch in batch_sizes() {
        let r = run_networked(batch, &left, &right);
        let e = eps("batch_net", format!("loopback/{batch}"));
        push_row("networked", batch, net_elements, e, net_base, &r);
    }

    let cores = pjoin_bench::host::cores_json_fields(false);
    let json = format!(
        "{{\n  \"bench\": \"batch_scaling\",\n  {cores}\n  \"shards\": {SHARDS},\n  \"note\": \"in_process frames are router channel batches; networked frames are wire data frames (per-element Data at batch 1, DataBatch otherwise). punct_rtt is the punctuation push-to-aligned-emergence round trip in wall-clock microseconds — the p99 the flush-barrier design bounds: a punctuation flushes every staged buffer, so its latency tracks pipeline depth, not batch size\",\n  \"measurements\": [\n{rows}\n  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_batch.json");
    match std::fs::write(path, json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn main() {
    let mut c = Criterion::default();
    bench_batch_scaling(&mut c);
    c.final_summary();
    // Keep `cargo test` runs side-effect free; only a real bench run
    // refreshes the summary file.
    if !std::env::args().any(|a| a == "--test") {
        write_summary(&c);
    }
}
