//! Microbenchmarks of the §6 extensions: sliding-window expiry and the
//! n-ary join.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pjoin::{run_nary, NaryConfig, NaryPJoin, PJoinBuilder};
use pjoin_bench::paper_workload;
use punct_types::{Punctuation, StreamElement, Timestamp, Timestamped, Tuple};
use stream_sim::{BinaryStreamOp, CostModel, Driver, DriverConfig};

fn bench_window_vs_punctuation(c: &mut Criterion) {
    // The same workload, state-bounding by window, by punctuations, and
    // by both: real CPU cost of each bounding mechanism.
    let w = paper_workload(4_000, 20.0, 20.0, 5);
    let mut g = c.benchmark_group("state_bounding");
    g.sample_size(10);
    let run = |op: &mut dyn BinaryStreamOp| {
        let driver = Driver::new(DriverConfig {
            cost: CostModel::free(),
            sample_every_micros: 10_000_000,
            collect_outputs: false,
            ..DriverConfig::default()
        });
        driver.run(op, &w.left, &w.right).total_out_tuples
    };
    g.bench_function("punctuation_purge", |b| {
        b.iter(|| {
            let mut op = PJoinBuilder::new(2, 2).eager_purge().no_propagation().build();
            black_box(run(&mut op))
        })
    });
    g.bench_function("window_only", |b| {
        b.iter(|| {
            let mut op = PJoinBuilder::new(2, 2)
                .never_purge()
                .no_propagation()
                .window_micros(50_000)
                .build();
            black_box(run(&mut op))
        })
    });
    g.bench_function("window_plus_punctuation", |b| {
        b.iter(|| {
            let mut op = PJoinBuilder::new(2, 2)
                .eager_purge()
                .no_propagation()
                .window_micros(50_000)
                .build();
            black_box(run(&mut op))
        })
    });
    g.finish();
}

fn nary_inputs(streams: usize, per_stream: usize) -> Vec<Vec<Timestamped<StreamElement>>> {
    (0..streams)
        .map(|s| {
            let mut v = Vec::new();
            let mut closed = 0i64;
            for i in 0..per_stream {
                let ts = (i * streams + s) as u64 * 100;
                let key = closed + (i % 7) as i64;
                v.push(Timestamped::new(
                    Timestamp(ts),
                    StreamElement::Tuple(Tuple::of((key, i as i64))),
                ));
                if i % 10 == 9 {
                    v.push(Timestamped::new(
                        Timestamp(ts),
                        StreamElement::Punctuation(Punctuation::close_value(2, 0, closed)),
                    ));
                    closed += 1;
                }
            }
            v
        })
        .collect()
}

fn bench_nary(c: &mut Criterion) {
    let mut g = c.benchmark_group("nary_join");
    g.sample_size(10);
    for n in [2usize, 3, 4] {
        let inputs = nary_inputs(n, 2_000);
        g.bench_with_input(BenchmarkId::new("streams", n), &n, |b, &n| {
            b.iter(|| {
                let mut op = NaryPJoin::new(NaryConfig::symmetric(n, 2));
                black_box(run_nary(&mut op, &inputs).len())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_window_vs_punctuation, bench_nary);
criterion_main!(benches);
