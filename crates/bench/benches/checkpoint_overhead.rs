//! What the durable checkpoint plane costs, and what recovery buys.
//!
//! Two experiments on the same 2-worker loopback cluster:
//!
//! * **Throughput** with durability off, at the lazy 10 s auto-cut
//!   interval (the shipped default posture: input logging and output
//!   withholding on, epochs cut rarely), and at an aggressive 1 s
//!   interval (several epochs per run). The run is sized to take over a
//!   second, so the 1 s row really cuts mid-stream.
//! * **Recovery time vs state size**: for growing workloads, cut one
//!   epoch with every tuple stored (all closes still pending), "crash"
//!   (drop the coordinator without finishing), then time a cold
//!   [`Cluster::restore_latest`] — disk read, staged re-install into
//!   fresh workers, pending re-injection — and verify the resumed run
//!   completes.
//!
//! Results land in `BENCH_checkpoint.json`. A timed run (not `--test`)
//! additionally asserts the default posture stays within the design
//! budget: ≤ 5% throughput cost against durability-off.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use criterion::{black_box, BenchmarkId, Criterion, Throughput};
use punct_cluster::{
    run_worker, Cluster, ClusterOptions, DurabilityOptions, JoinSpec, WorkerOptions,
};
use punct_net::{BackoffPolicy, ClientOptions};
use punct_types::{Pattern, Punctuation, StreamElement, Timestamp, Timestamped, Tuple};
use stream_sim::Side;

const KEYS: i64 = 2000;
const OVERHEAD_BUDGET: f64 = 0.05;

/// The cluster_scaling workload: keyed pairs, per-key close punctuations
/// four keys behind, stream-end wildcards.
fn workload(keys: i64) -> Vec<(Side, StreamElement)> {
    let mut work: Vec<(Side, StreamElement)> = Vec::new();
    for k in 0..keys {
        work.push((Side::Left, Tuple::of((k, 10 * k)).into()));
        work.push((Side::Right, Tuple::of((k, -k)).into()));
        if k >= 4 {
            let c = k - 4;
            work.push((Side::Left, Punctuation::close_value(2, 0, c).into()));
            work.push((Side::Right, Punctuation::close_value(2, 0, c).into()));
        }
    }
    let wild = Punctuation::on_attr(2, 0, Pattern::Wildcard);
    work.push((Side::Left, wild.clone().into()));
    work.push((Side::Right, wild.into()));
    work
}

/// The three durability postures under test: off, the lazy 10 s
/// auto-cut interval, and an aggressive 1 s one.
fn modes() -> [(&'static str, Option<Duration>); 3] {
    [
        ("off", None),
        ("interval_10s", Some(Duration::from_secs(10))),
        ("interval_1s", Some(Duration::from_secs(1))),
    ]
}

fn ckpt_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pjoin_bench_ckpt_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create checkpoint dir");
    dir
}

fn base_opts() -> ClusterOptions {
    let mut opts = ClusterOptions::new(JoinSpec::new(2, 2), 2, 2);
    opts.client = ClientOptions {
        policy: BackoffPolicy::fast(),
        seed: 77,
        ..ClientOptions::default()
    };
    opts
}

/// One full 2-worker run under the given checkpoint posture. Returns
/// (outputs, epochs cut).
fn run_once(interval: Option<Duration>, work: &[(Side, StreamElement)]) -> (usize, u64) {
    let mut opts = base_opts();
    let dir = interval.map(|iv| {
        let dir = ckpt_dir("throughput");
        opts.durability = DurabilityOptions::at(&dir);
        opts.durability.interval = Some(iv);
        dir
    });
    let mut cluster = Cluster::bind(opts).expect("bind coordinator");
    let ctrl = cluster.ctrl_addr();
    let handles: Vec<_> = (0..2u32)
        .map(|i| std::thread::spawn(move || run_worker(WorkerOptions::new(i, ctrl))))
        .collect();
    cluster.accept_workers().expect("assemble cluster");
    let mut outputs = 0usize;
    for (i, (side, el)) in work.iter().enumerate() {
        cluster
            .push(*side, Timestamped::new(Timestamp(i as u64), el.clone()))
            .expect("push");
        if i % 128 == 0 {
            outputs += cluster.poll_outputs().expect("poll").len();
        }
    }
    let report = cluster.finish().expect("finish");
    outputs += report.outputs.len();
    for h in handles {
        h.join().expect("worker thread").expect("worker");
    }
    if let Some(dir) = dir {
        let _ = std::fs::remove_dir_all(&dir);
    }
    (outputs, report.checkpoints)
}

fn bench_checkpoint(c: &mut Criterion) {
    let work = workload(KEYS);
    let mut g = c.benchmark_group("checkpoint_overhead");
    g.throughput(Throughput::Elements(work.len() as u64));
    g.sample_size(10);
    for (name, interval) in modes() {
        g.bench_with_input(BenchmarkId::new("mode", name), &interval, |b, &iv| {
            b.iter(|| black_box(run_once(iv, &work)))
        });
    }
    g.finish();
}

/// One crash-and-restore cycle at the given workload size. Returns
/// (epoch-file bytes on disk, records re-installed, restore wall time).
///
/// Unlike the throughput workload, punctuations here all trail the
/// tuples and the epoch is cut right between the two sections — so the
/// checkpointed state holds every tuple (2·keys records) and the restore
/// cost actually scales with `keys`.
fn recovery_probe(keys: i64) -> (u64, u64, Duration) {
    let mut work: Vec<(Side, StreamElement)> = Vec::new();
    for k in 0..keys {
        work.push((Side::Left, Tuple::of((k, 10 * k)).into()));
        work.push((Side::Right, Tuple::of((k, -k)).into()));
    }
    let cut_at = work.len();
    for k in 0..keys {
        work.push((Side::Left, Punctuation::close_value(2, 0, k).into()));
        work.push((Side::Right, Punctuation::close_value(2, 0, k).into()));
    }
    let wild = Punctuation::on_attr(2, 0, Pattern::Wildcard);
    work.push((Side::Left, wild.clone().into()));
    work.push((Side::Right, wild.into()));
    let dir = ckpt_dir(&format!("recovery_{keys}"));

    // Phase 1: feed every tuple, cut one epoch, crash without finishing.
    {
        let mut opts = base_opts();
        opts.durability = DurabilityOptions::at(&dir);
        let mut cluster = Cluster::bind(opts).expect("bind coordinator");
        let ctrl = cluster.ctrl_addr();
        let handles: Vec<_> = (0..2u32)
            .map(|i| std::thread::spawn(move || run_worker(WorkerOptions::new(i, ctrl))))
            .collect();
        cluster.accept_workers().expect("assemble cluster");
        for (i, (side, el)) in work.iter().enumerate().take(cut_at) {
            cluster
                .push(*side, Timestamped::new(Timestamp(i as u64), el.clone()))
                .expect("push");
            if i % 128 == 0 {
                let _ = cluster.poll_outputs().expect("poll");
            }
        }
        cluster.checkpoint().expect("cut the epoch");
        drop(cluster);
        for h in handles {
            let _ = h.join().expect("worker thread");
        }
    }
    let disk_bytes: u64 = std::fs::read_dir(&dir)
        .expect("read checkpoint dir")
        .filter_map(|e| e.ok()?.metadata().ok())
        .map(|m| m.len())
        .sum();

    // Phase 2: cold restore into fresh workers, timed, then run out the
    // stream so the restore is known-good end to end.
    let mut opts = base_opts();
    opts.durability = DurabilityOptions::at(&dir);
    let mut cluster = Cluster::bind(opts).expect("rebind coordinator");
    let ctrl = cluster.ctrl_addr();
    let handles: Vec<_> = (0..2u32)
        .map(|i| std::thread::spawn(move || run_worker(WorkerOptions::new(i, ctrl))))
        .collect();
    cluster.accept_workers().expect("reassemble cluster");
    let started = Instant::now();
    let cursor = cluster
        .restore_latest()
        .expect("restore latest epoch")
        .expect("an epoch exists on disk") as usize;
    let restore_time = started.elapsed();
    assert_eq!(
        cursor, cut_at,
        "the epoch must cover exactly the fed prefix"
    );
    for (i, (side, el)) in work.iter().enumerate().skip(cursor) {
        cluster
            .push(*side, Timestamped::new(Timestamp(i as u64), el.clone()))
            .expect("push");
        if i % 128 == 0 {
            let _ = cluster.poll_outputs().expect("poll");
        }
    }
    cluster.finish().expect("finish restored cluster");
    let imported: u64 = handles
        .into_iter()
        .map(|h| {
            h.join()
                .expect("worker thread")
                .expect("worker")
                .records_imported
        })
        .sum();
    let _ = std::fs::remove_dir_all(&dir);
    (disk_bytes, imported, restore_time)
}

fn mean_ns(c: &Criterion, mode: &str) -> f64 {
    c.measurements()
        .iter()
        .find(|m| m.group == "checkpoint_overhead" && m.id == format!("mode/{mode}"))
        .map(|m| m.mean_ns)
        .unwrap_or(0.0)
}

fn write_summary(c: &Criterion) {
    let work = workload(KEYS);
    let baseline = mean_ns(c, "off");
    let mut rows = String::new();
    for (name, interval) in modes() {
        let m = c
            .measurements()
            .iter()
            .find(|m| m.group == "checkpoint_overhead" && m.id == format!("mode/{name}"))
            .cloned();
        let eps = m.as_ref().and_then(|m| m.per_second()).unwrap_or(0.0);
        let mean = m.as_ref().map(|m| m.mean_ns).unwrap_or(0.0);
        let overhead = if baseline > 0.0 {
            mean / baseline - 1.0
        } else {
            0.0
        };
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        let _ = write!(
            rows,
            "    {{\"kind\": \"throughput\", \"mode\": \"{}\", \"interval_ms\": {}, \"elements\": {}, \"mean_ns\": {:.1}, \"elements_per_sec\": {:.1}, \"overhead_vs_off\": {:.4}}}",
            name,
            interval.map(|d| d.as_millis() as i64).unwrap_or(-1),
            work.len(),
            mean,
            eps,
            overhead,
        );
    }
    for keys in [200i64, 800, 3200] {
        let (disk_bytes, records, took) = recovery_probe(keys);
        rows.push_str(",\n");
        let _ = write!(
            rows,
            "    {{\"kind\": \"recovery\", \"keys\": {}, \"epoch_bytes\": {}, \"records_reinstalled\": {}, \"restore_ms\": {:.2}}}",
            keys,
            disk_bytes,
            records,
            took.as_secs_f64() * 1e3,
        );
    }
    let cores = pjoin_bench::host::cores_json_fields(false);
    let json = format!(
        "{{\n  \"bench\": \"checkpoint_overhead\",\n  {cores}\n  \"overhead_budget\": {OVERHEAD_BUDGET},\n  \"note\": \"2-worker loopback cluster, full distributed path; durability off vs 10 s auto-cut epochs (the lazy default posture: input logging + output withholding, rare cuts) vs 1 s epochs; overhead_vs_off is mean-time ratio minus one. recovery rows: one epoch cut with every tuple stored (2·keys records) and all closes still pending, coordinator dropped, cold restore_latest() timed (disk read + staged re-install + pending re-injection) into fresh workers\",\n  \"measurements\": [\n{rows}\n  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_checkpoint.json");
    match std::fs::write(path, json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    // The design-budget gate, timed runs only: the lazy default posture
    // must cost at most 5% against durability-off.
    let default_mean = mean_ns(c, "interval_10s");
    assert!(baseline > 0.0 && default_mean > 0.0, "missing measurements");
    let overhead = default_mean / baseline - 1.0;
    println!(
        "default-posture overhead: {:.2}% (budget {:.0}%)",
        overhead * 100.0,
        OVERHEAD_BUDGET * 100.0
    );
    assert!(
        overhead <= OVERHEAD_BUDGET,
        "durable checkpointing at the default posture costs {:.2}%, over the {:.0}% budget",
        overhead * 100.0,
        OVERHEAD_BUDGET * 100.0
    );
}

fn main() {
    let mut c = Criterion::default();
    bench_checkpoint(&mut c);
    c.final_summary();
    // Keep `cargo test` runs side-effect free (and un-asserted); only a
    // real bench run refreshes the summary and enforces the budget.
    if !std::env::args().any(|a| a == "--test") {
        write_summary(&c);
    }
}
