//! # stream-metrics
//!
//! Time-series recording and reporting for the experiment harness.
//!
//! Every figure in the paper is a time series (state size over time,
//! cumulative outputs over time, punctuations propagated over time).
//! This crate provides:
//!
//! * [`Series`] — an `(x, y)` series with summary statistics.
//! * [`Recorder`] — a named collection of series produced by one experiment.
//! * [`csv`] — CSV export (one column per series, aligned on x).
//! * [`ascii_chart`] — terminal line charts so experiments are readable
//!   without any plotting stack.

pub mod ascii_chart;
pub mod csv;
pub mod recorder;
pub mod series;
pub mod stats;

pub use ascii_chart::ChartOptions;
pub use recorder::{shard_series_name, Recorder};
pub use series::Series;
pub use stats::Summary;
