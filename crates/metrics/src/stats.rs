//! Summary statistics over samples.

use serde::{Deserialize, Serialize};

/// Summary statistics of a sample set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Minimum (0 when empty).
    pub min: f64,
    /// Maximum (0 when empty).
    pub max: f64,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Population standard deviation (0 when empty).
    pub stddev: f64,
    /// Median (linear interpolation; 0 when empty).
    pub p50: f64,
    /// 95th percentile (linear interpolation; 0 when empty).
    pub p95: f64,
}

impl Summary {
    /// Computes a summary of `samples`.
    pub fn of(samples: impl IntoIterator<Item = f64>) -> Summary {
        let mut xs: Vec<f64> = samples.into_iter().filter(|x| x.is_finite()).collect();
        if xs.is_empty() {
            return Summary { count: 0, min: 0.0, max: 0.0, mean: 0.0, stddev: 0.0, p50: 0.0, p95: 0.0 };
        }
        xs.sort_by(f64::total_cmp);
        let count = xs.len();
        let sum: f64 = xs.iter().sum();
        let mean = sum / count as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / count as f64;
        Summary {
            count,
            min: xs[0],
            max: xs[count - 1],
            mean,
            stddev: var.sqrt(),
            p50: percentile(&xs, 0.50),
            p95: percentile(&xs, 0.95),
        }
    }
}

/// Linear-interpolation percentile of a **sorted** slice; `q` in `[0, 1]`.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zeroed() {
        let s = Summary::of(std::iter::empty());
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.p95, 0.0);
    }

    #[test]
    fn single_sample() {
        let s = Summary::of([42.0]);
        assert_eq!(s.count, 1);
        assert_eq!(s.min, 42.0);
        assert_eq!(s.max, 42.0);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.p50, 42.0);
    }

    #[test]
    fn basic_statistics() {
        let s = Summary::of([1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.p50 - 3.0).abs() < 1e-12);
        assert!((s.stddev - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn ignores_non_finite() {
        let s = Summary::of([1.0, f64::NAN, 3.0, f64::INFINITY]);
        assert_eq!(s.count, 2);
        assert_eq!(s.max, 3.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&xs, 0.0), 10.0);
        assert_eq!(percentile(&xs, 1.0), 40.0);
        assert!((percentile(&xs, 0.5) - 25.0).abs() < 1e-12);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn percentile_clamps_q() {
        let xs = [1.0, 2.0];
        assert_eq!(percentile(&xs, -0.5), 1.0);
        assert_eq!(percentile(&xs, 1.5), 2.0);
    }
}
