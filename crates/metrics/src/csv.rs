//! CSV export of recorded series.
//!
//! Two layouts are provided:
//!
//! * [`long_csv`] — tidy/long format: `series,x,y` rows; robust to series
//!   with different x grids.
//! * [`wide_csv`] — one `x` column plus one column per series, aligned by
//!   linear interpolation onto the union grid; convenient for spreadsheets.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use crate::recorder::Recorder;

/// Renders the recorder in long format (`series,x,y`).
pub fn long_csv(recorder: &Recorder) -> String {
    let mut out = String::from("series,x,y\n");
    for s in recorder.iter() {
        for &(x, y) in s.points() {
            let _ = writeln!(out, "{},{},{}", escape(&s.name), fmt_num(x), fmt_num(y));
        }
    }
    out
}

/// Renders the recorder in wide format: union x grid, one column per series
/// (linear interpolation, clamped at the edges). Cells for series with no
/// points are empty.
pub fn wide_csv(recorder: &Recorder) -> String {
    let mut grid: Vec<f64> = recorder
        .iter()
        .flat_map(|s| s.points().iter().map(|&(x, _)| x))
        .collect();
    grid.sort_by(f64::total_cmp);
    grid.dedup();

    let mut out = String::from("x");
    for s in recorder.iter() {
        let _ = write!(out, ",{}", escape(&s.name));
    }
    out.push('\n');
    for &x in &grid {
        let _ = write!(out, "{}", fmt_num(x));
        for s in recorder.iter() {
            match s.interpolate(x) {
                Some(y) => {
                    let _ = write!(out, ",{}", fmt_num(y));
                }
                None => out.push(','),
            }
        }
        out.push('\n');
    }
    out
}

/// Writes both layouts under `dir` as `<stem>_long.csv` and
/// `<stem>_wide.csv`, creating `dir` if necessary.
pub fn write_csv_files(recorder: &Recorder, dir: &Path, stem: &str) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join(format!("{stem}_long.csv")), long_csv(recorder))?;
    std::fs::write(dir.join(format!("{stem}_wide.csv")), wide_csv(recorder))?;
    Ok(())
}

fn escape(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

fn fmt_num(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x:.6}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::Series;

    fn sample_recorder() -> Recorder {
        let mut r = Recorder::new();
        r.insert(Series::from_points("alpha", vec![(0.0, 1.0), (2.0, 3.0)]));
        r.insert(Series::from_points("beta", vec![(1.0, 10.0)]));
        r
    }

    #[test]
    fn long_format() {
        let csv = long_csv(&sample_recorder());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "series,x,y");
        assert_eq!(lines[1], "alpha,0,1");
        assert_eq!(lines[2], "alpha,2,3");
        assert_eq!(lines[3], "beta,1,10");
    }

    #[test]
    fn wide_format_unions_grid() {
        let csv = wide_csv(&sample_recorder());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,alpha,beta");
        // grid = {0, 1, 2}; alpha interpolates to 2 at x=1; beta clamps.
        assert_eq!(lines[1], "0,1,10");
        assert_eq!(lines[2], "1,2,10");
        assert_eq!(lines[3], "2,3,10");
    }

    #[test]
    fn escaping() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a,b"), "\"a,b\"");
        assert_eq!(escape("q\"q"), "\"q\"\"q\"");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_num(3.0), "3");
        assert_eq!(fmt_num(0.5), "0.500000");
        assert_eq!(fmt_num(-7.0), "-7");
    }

    #[test]
    fn writes_files() {
        let dir = std::env::temp_dir().join("stream_metrics_csv_test");
        let _ = std::fs::remove_dir_all(&dir);
        write_csv_files(&sample_recorder(), &dir, "fig1").unwrap();
        assert!(dir.join("fig1_long.csv").exists());
        assert!(dir.join("fig1_wide.csv").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
