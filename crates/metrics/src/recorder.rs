//! A named collection of series produced by one experiment run.

use std::collections::BTreeMap;

use crate::series::Series;

/// Collects the series of one experiment, keyed by name.
///
/// Names iterate in lexicographic order so CSV output and charts are
/// stable across runs.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    series: BTreeMap<String, Series>,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// Appends a point to the series named `name`, creating it on first use.
    pub fn record(&mut self, name: &str, x: f64, y: f64) {
        self.series
            .entry(name.to_string())
            .or_insert_with(|| Series::new(name))
            .push(x, y);
    }

    /// Inserts (or replaces) a whole series.
    pub fn insert(&mut self, series: Series) {
        self.series.insert(series.name.clone(), series);
    }

    /// Looks up a series by name.
    pub fn get(&self, name: &str) -> Option<&Series> {
        self.series.get(name)
    }

    /// Iterates over all series in name order.
    pub fn iter(&self) -> impl Iterator<Item = &Series> {
        self.series.values()
    }

    /// Number of series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// True if no series were recorded.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Series names in order.
    pub fn names(&self) -> Vec<&str> {
        self.series.keys().map(String::as_str).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_creates_and_appends() {
        let mut r = Recorder::new();
        r.record("a", 0.0, 1.0);
        r.record("a", 1.0, 2.0);
        r.record("b", 0.0, 9.0);
        assert_eq!(r.len(), 2);
        assert_eq!(r.get("a").unwrap().len(), 2);
        assert_eq!(r.get("b").unwrap().len(), 1);
        assert!(r.get("c").is_none());
    }

    #[test]
    fn names_are_sorted() {
        let mut r = Recorder::new();
        r.record("zeta", 0.0, 0.0);
        r.record("alpha", 0.0, 0.0);
        assert_eq!(r.names(), vec!["alpha", "zeta"]);
    }

    #[test]
    fn insert_replaces() {
        let mut r = Recorder::new();
        r.record("s", 0.0, 1.0);
        r.insert(Series::from_points("s", vec![(5.0, 5.0)]));
        assert_eq!(r.get("s").unwrap().points(), &[(5.0, 5.0)]);
    }
}
