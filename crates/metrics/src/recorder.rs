//! A named collection of series produced by one experiment run.

use std::collections::BTreeMap;

use crate::series::Series;

/// Collects the series of one experiment, keyed by name.
///
/// Names iterate in lexicographic order so CSV output and charts are
/// stable across runs.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    series: BTreeMap<String, Series>,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// Appends a point to the series named `name`, creating it on first use.
    pub fn record(&mut self, name: &str, x: f64, y: f64) {
        self.series
            .entry(name.to_string())
            .or_insert_with(|| Series::new(name))
            .push(x, y);
    }

    /// Inserts (or replaces) a whole series.
    pub fn insert(&mut self, series: Series) {
        self.series.insert(series.name.clone(), series);
    }

    /// Looks up a series by name.
    pub fn get(&self, name: &str) -> Option<&Series> {
        self.series.get(name)
    }

    /// Iterates over all series in name order.
    pub fn iter(&self) -> impl Iterator<Item = &Series> {
        self.series.values()
    }

    /// Number of series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// True if no series were recorded.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Series names in order.
    pub fn names(&self) -> Vec<&str> {
        self.series.keys().map(String::as_str).collect()
    }

    /// Appends a point to the per-shard series `base[shard=i]`, creating
    /// it on first use. Sharded executors record each worker's samples
    /// under the same base name so they group in charts and CSV output.
    pub fn record_shard(&mut self, base: &str, shard: usize, x: f64, y: f64) {
        self.record(&shard_series_name(base, shard), x, y);
    }

    /// The per-shard series recorded under `base`, in shard order
    /// (shard 0, 1, …); stops at the first missing shard index.
    pub fn shard_series(&self, base: &str) -> Vec<&Series> {
        let mut found = Vec::new();
        for shard in 0.. {
            match self.get(&shard_series_name(base, shard)) {
                Some(s) => found.push(s),
                None => break,
            }
        }
        found
    }

    /// Sums the per-shard series recorded under `base` into one
    /// aggregate series named `base` — the x-axes are merged (union of
    /// sample points) and each shard contributes its most recent value
    /// at or before every x (step interpolation), so shards sampled at
    /// slightly different instants still aggregate correctly.
    pub fn sum_shards(&self, base: &str) -> Option<Series> {
        let shards = self.shard_series(base);
        if shards.is_empty() {
            return None;
        }
        let mut xs: Vec<f64> = shards
            .iter()
            .flat_map(|s| s.points().iter().map(|&(x, _)| x))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite sample times"));
        xs.dedup();
        let points = xs
            .into_iter()
            .map(|x| {
                let y = shards
                    .iter()
                    .map(|s| {
                        s.points()
                            .iter()
                            .take_while(|&&(px, _)| px <= x)
                            .last()
                            .map_or(0.0, |&(_, py)| py)
                    })
                    .sum();
                (x, y)
            })
            .collect();
        Some(Series::from_points(base, points))
    }
}

/// The canonical per-shard series name: `base[shard=i]`.
pub fn shard_series_name(base: &str, shard: usize) -> String {
    format!("{base}[shard={shard}]")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_creates_and_appends() {
        let mut r = Recorder::new();
        r.record("a", 0.0, 1.0);
        r.record("a", 1.0, 2.0);
        r.record("b", 0.0, 9.0);
        assert_eq!(r.len(), 2);
        assert_eq!(r.get("a").unwrap().len(), 2);
        assert_eq!(r.get("b").unwrap().len(), 1);
        assert!(r.get("c").is_none());
    }

    #[test]
    fn names_are_sorted() {
        let mut r = Recorder::new();
        r.record("zeta", 0.0, 0.0);
        r.record("alpha", 0.0, 0.0);
        assert_eq!(r.names(), vec!["alpha", "zeta"]);
    }

    #[test]
    fn insert_replaces() {
        let mut r = Recorder::new();
        r.record("s", 0.0, 1.0);
        r.insert(Series::from_points("s", vec![(5.0, 5.0)]));
        assert_eq!(r.get("s").unwrap().points(), &[(5.0, 5.0)]);
    }

    #[test]
    fn shard_series_group_and_enumerate_in_order() {
        let mut r = Recorder::new();
        r.record_shard("state", 1, 0.0, 5.0);
        r.record_shard("state", 0, 0.0, 3.0);
        let shards = r.shard_series("state");
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0].name, "state[shard=0]");
        assert_eq!(shards[1].name, "state[shard=1]");
        assert!(r.shard_series("missing").is_empty());
    }

    #[test]
    fn sum_shards_step_interpolates_misaligned_samples() {
        let mut r = Recorder::new();
        // Shard 0 samples at t=0,2; shard 1 at t=1.
        r.record_shard("state", 0, 0.0, 10.0);
        r.record_shard("state", 0, 2.0, 30.0);
        r.record_shard("state", 1, 1.0, 5.0);
        let sum = r.sum_shards("state").unwrap();
        assert_eq!(sum.name, "state");
        // t=0: 10 + (no shard-1 sample yet) 0; t=1: 10+5; t=2: 30+5.
        assert_eq!(sum.points(), &[(0.0, 10.0), (1.0, 15.0), (2.0, 35.0)]);
        assert!(r.sum_shards("missing").is_none());
    }
}
