//! A named collection of series produced by one experiment run.

use std::collections::BTreeMap;

use crate::series::Series;

/// Collects the series of one experiment, keyed by name.
///
/// Names iterate in lexicographic order so CSV output and charts are
/// stable across runs.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    series: BTreeMap<String, Series>,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// Appends a point to the series named `name`, creating it on first use.
    pub fn record(&mut self, name: &str, x: f64, y: f64) {
        self.series
            .entry(name.to_string())
            .or_insert_with(|| Series::new(name))
            .push(x, y);
    }

    /// Inserts (or replaces) a whole series.
    pub fn insert(&mut self, series: Series) {
        self.series.insert(series.name.clone(), series);
    }

    /// Looks up a series by name.
    pub fn get(&self, name: &str) -> Option<&Series> {
        self.series.get(name)
    }

    /// Iterates over all series in name order.
    pub fn iter(&self) -> impl Iterator<Item = &Series> {
        self.series.values()
    }

    /// Number of series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// True if no series were recorded.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Series names in order.
    pub fn names(&self) -> Vec<&str> {
        self.series.keys().map(String::as_str).collect()
    }

    /// Appends a point to the per-shard series `base[shard=i]`, creating
    /// it on first use. Sharded executors record each worker's samples
    /// under the same base name so they group in charts and CSV output.
    pub fn record_shard(&mut self, base: &str, shard: usize, x: f64, y: f64) {
        self.record(&shard_series_name(base, shard), x, y);
    }

    /// The per-shard series recorded under `base`, in shard order
    /// (shard 0, 1, …). Found by name, so gaps in the shard numbering
    /// (e.g. a shard that never sampled) do not hide the shards after
    /// them.
    pub fn shard_series(&self, base: &str) -> Vec<&Series> {
        let mut found: Vec<(usize, &Series)> = self
            .series
            .iter()
            .filter_map(|(name, s)| Some((parse_shard_series_name(name, base)?, s)))
            .collect();
        found.sort_by_key(|&(shard, _)| shard);
        found.into_iter().map(|(_, s)| s).collect()
    }

    /// Sums the per-shard series recorded under `base` into one
    /// aggregate series named `base` — the x-axes are merged (union of
    /// sample points) and each shard contributes its most recent value
    /// at or before every x (step interpolation), so shards sampled at
    /// slightly different instants still aggregate correctly.
    ///
    /// Boundary behavior: before a shard's first sample it contributes
    /// **0** (no extrapolation backwards); at and after its last sample
    /// it holds that final value for the rest of the merged x-axis.
    pub fn sum_shards(&self, base: &str) -> Option<Series> {
        let shards = self.shard_series(base);
        if shards.is_empty() {
            return None;
        }
        let mut xs: Vec<f64> = shards
            .iter()
            .flat_map(|s| s.points().iter().map(|&(x, _)| x))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite sample times"));
        xs.dedup();
        // One cursor per shard: each series' points are in recording
        // order, so a linear scan per shard replaces the quadratic
        // take_while-per-x lookup.
        let mut cursors = vec![(0usize, 0.0f64); shards.len()];
        let points = xs
            .into_iter()
            .map(|x| {
                let mut y = 0.0;
                for (shard, s) in shards.iter().enumerate() {
                    let (ref mut i, ref mut last) = cursors[shard];
                    let pts = s.points();
                    while *i < pts.len() && pts[*i].0 <= x {
                        *last = pts[*i].1;
                        *i += 1;
                    }
                    // `last` stays 0.0 until the shard's first sample.
                    y += *last;
                }
                (x, y)
            })
            .collect();
        Some(Series::from_points(base, points))
    }
}

/// The canonical per-shard series name: `base[shard=i]`.
pub fn shard_series_name(base: &str, shard: usize) -> String {
    format!("{base}[shard={shard}]")
}

/// Parses a series name of the form `base[shard=i]` back to `i`, for
/// the given base. Returns `None` for any other name.
fn parse_shard_series_name(name: &str, base: &str) -> Option<usize> {
    let rest = name.strip_prefix(base)?;
    let digits = rest.strip_prefix("[shard=")?.strip_suffix(']')?;
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_creates_and_appends() {
        let mut r = Recorder::new();
        r.record("a", 0.0, 1.0);
        r.record("a", 1.0, 2.0);
        r.record("b", 0.0, 9.0);
        assert_eq!(r.len(), 2);
        assert_eq!(r.get("a").unwrap().len(), 2);
        assert_eq!(r.get("b").unwrap().len(), 1);
        assert!(r.get("c").is_none());
    }

    #[test]
    fn names_are_sorted() {
        let mut r = Recorder::new();
        r.record("zeta", 0.0, 0.0);
        r.record("alpha", 0.0, 0.0);
        assert_eq!(r.names(), vec!["alpha", "zeta"]);
    }

    #[test]
    fn insert_replaces() {
        let mut r = Recorder::new();
        r.record("s", 0.0, 1.0);
        r.insert(Series::from_points("s", vec![(5.0, 5.0)]));
        assert_eq!(r.get("s").unwrap().points(), &[(5.0, 5.0)]);
    }

    #[test]
    fn shard_series_group_and_enumerate_in_order() {
        let mut r = Recorder::new();
        r.record_shard("state", 1, 0.0, 5.0);
        r.record_shard("state", 0, 0.0, 3.0);
        let shards = r.shard_series("state");
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0].name, "state[shard=0]");
        assert_eq!(shards[1].name, "state[shard=1]");
        assert!(r.shard_series("missing").is_empty());
    }

    #[test]
    fn sum_shards_step_interpolates_misaligned_samples() {
        let mut r = Recorder::new();
        // Shard 0 samples at t=0,2; shard 1 at t=1.
        r.record_shard("state", 0, 0.0, 10.0);
        r.record_shard("state", 0, 2.0, 30.0);
        r.record_shard("state", 1, 1.0, 5.0);
        let sum = r.sum_shards("state").unwrap();
        assert_eq!(sum.name, "state");
        // t=0: 10 + (no shard-1 sample yet) 0; t=1: 10+5; t=2: 30+5.
        assert_eq!(sum.points(), &[(0.0, 10.0), (1.0, 15.0), (2.0, 35.0)]);
        assert!(r.sum_shards("missing").is_none());
    }

    #[test]
    fn shard_series_survives_gaps_in_shard_numbering() {
        // A shard that never sampled (here shard 1) must not hide the
        // shards after it — the old enumeration stopped at the first
        // missing index, silently dropping shard 2+ from aggregates.
        let mut r = Recorder::new();
        r.record_shard("state", 0, 0.0, 1.0);
        r.record_shard("state", 2, 0.0, 4.0);
        r.record_shard("state", 3, 0.0, 8.0);
        let shards = r.shard_series("state");
        assert_eq!(shards.len(), 3);
        assert_eq!(shards[0].name, "state[shard=0]");
        assert_eq!(shards[1].name, "state[shard=2]");
        assert_eq!(shards[2].name, "state[shard=3]");
        let sum = r.sum_shards("state").unwrap();
        assert_eq!(sum.points(), &[(0.0, 13.0)]);
        // A missing shard 0 must not hide everything.
        let mut r = Recorder::new();
        r.record_shard("q", 5, 1.0, 7.0);
        assert_eq!(r.shard_series("q").len(), 1);
    }

    #[test]
    fn shard_series_ignores_other_bases_and_malformed_names() {
        let mut r = Recorder::new();
        r.record_shard("state", 0, 0.0, 1.0);
        r.record_shard("state2", 0, 0.0, 100.0); // prefix collision
        r.record("state[shard=x]", 0.0, 100.0); // non-numeric index
        r.record("state[shard=1] extra", 0.0, 100.0); // trailing garbage
        r.record("state", 0.0, 100.0); // the base itself
        let shards = r.shard_series("state");
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].name, "state[shard=0]");
        assert_eq!(r.sum_shards("state").unwrap().points(), &[(0.0, 1.0)]);
    }

    #[test]
    fn sum_shards_boundary_no_backward_extrapolation_and_hold_last() {
        let mut r = Recorder::new();
        // Shard 0 covers [0, 10]; shard 1 only [4, 6].
        r.record_shard("s", 0, 0.0, 1.0);
        r.record_shard("s", 0, 10.0, 2.0);
        r.record_shard("s", 1, 4.0, 100.0);
        r.record_shard("s", 1, 6.0, 200.0);
        let sum = r.sum_shards("s").unwrap();
        // Before shard 1's first sample it contributes 0, never its
        // first value; after its last sample it holds 200.
        assert_eq!(
            sum.points(),
            &[(0.0, 1.0), (4.0, 101.0), (6.0, 201.0), (10.0, 202.0)]
        );
    }

    #[test]
    fn sum_shards_duplicate_x_takes_latest_value() {
        // Two samples at the same instant: the cursor advances past
        // both, so the later recording wins (step function semantics).
        let mut r = Recorder::new();
        r.record_shard("s", 0, 1.0, 5.0);
        r.record_shard("s", 0, 1.0, 7.0);
        let sum = r.sum_shards("s").unwrap();
        assert_eq!(sum.points(), &[(1.0, 7.0)]);
    }
}
