//! `(x, y)` time series.

use serde::{Deserialize, Serialize};

use crate::stats::Summary;

/// A named series of `(x, y)` points, x non-decreasing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Series name (used as CSV column header and chart legend).
    pub name: String,
    points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(name: impl Into<String>) -> Series {
        Series { name: name.into(), points: Vec::new() }
    }

    /// Creates a series from points (must be x-sorted).
    pub fn from_points(name: impl Into<String>, points: Vec<(f64, f64)>) -> Series {
        debug_assert!(
            points.windows(2).all(|w| w[0].0 <= w[1].0),
            "series points must be x-sorted"
        );
        Series { name: name.into(), points }
    }

    /// Appends a point. `x` must be ≥ the last x.
    pub fn push(&mut self, x: f64, y: f64) {
        debug_assert!(
            self.points.last().is_none_or(|&(px, _)| px <= x),
            "x must be non-decreasing"
        );
        self.points.push((x, y));
    }

    /// The points, in x order.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if there are no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Summary statistics of the y values.
    pub fn summary(&self) -> Summary {
        Summary::of(self.points.iter().map(|&(_, y)| y))
    }

    /// Linearly interpolated y at `x`; clamps outside the domain.
    pub fn interpolate(&self, x: f64) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        if x <= self.points[0].0 {
            return Some(self.points[0].1);
        }
        if x >= self.points[self.points.len() - 1].0 {
            return Some(self.points[self.points.len() - 1].1);
        }
        let idx = self.points.partition_point(|&(px, _)| px < x);
        let (x0, y0) = self.points[idx - 1];
        let (x1, y1) = self.points[idx];
        if x1 == x0 {
            return Some(y1);
        }
        Some(y0 + (y1 - y0) * (x - x0) / (x1 - x0))
    }

    /// The discrete derivative series: `(midpoint x, Δy/Δx)`. Useful for
    /// turning cumulative output counts into output *rates*.
    pub fn rate(&self) -> Series {
        let mut out = Series::new(format!("{}_rate", self.name));
        for w in self.points.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            if x1 > x0 {
                out.push((x0 + x1) / 2.0, (y1 - y0) / (x1 - x0));
            }
        }
        out
    }

    /// Last y value, if any.
    pub fn last_y(&self) -> Option<f64> {
        self.points.last().map(|&(_, y)| y)
    }

    /// The x-weighted mean of y: the trapezoidal integral of `y dx`
    /// divided by the x range. Unlike [`summary`](Series::summary)'s
    /// arithmetic mean, this is robust to unevenly-spaced samples.
    pub fn mean_over_x(&self) -> f64 {
        if self.points.len() < 2 {
            return self.points.first().map_or(0.0, |&(_, y)| y);
        }
        let mut area = 0.0;
        for w in self.points.windows(2) {
            let ((x0, y0), (x1, y1)) = (w[0], w[1]);
            area += (y0 + y1) / 2.0 * (x1 - x0);
        }
        let range = self.points[self.points.len() - 1].0 - self.points[0].0;
        if range == 0.0 {
            self.points[0].1
        } else {
            area / range
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_access() {
        let mut s = Series::new("state");
        s.push(0.0, 1.0);
        s.push(1.0, 3.0);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.last_y(), Some(3.0));
        assert_eq!(s.points(), &[(0.0, 1.0), (1.0, 3.0)]);
    }

    #[test]
    fn interpolation() {
        let s = Series::from_points("s", vec![(0.0, 0.0), (10.0, 100.0)]);
        assert_eq!(s.interpolate(5.0), Some(50.0));
        assert_eq!(s.interpolate(-1.0), Some(0.0)); // clamp low
        assert_eq!(s.interpolate(20.0), Some(100.0)); // clamp high
        assert_eq!(Series::new("e").interpolate(1.0), None);
    }

    #[test]
    fn interpolation_with_duplicate_x() {
        let s = Series::from_points("s", vec![(0.0, 0.0), (5.0, 10.0), (5.0, 20.0), (10.0, 20.0)]);
        // At the duplicated x, either step value is acceptable; it must not
        // divide by zero.
        let y = s.interpolate(5.0).unwrap();
        assert!((10.0..=20.0).contains(&y));
    }

    #[test]
    fn rate_differentiates() {
        let s = Series::from_points("out", vec![(0.0, 0.0), (1.0, 10.0), (2.0, 15.0)]);
        let r = s.rate();
        assert_eq!(r.name, "out_rate");
        assert_eq!(r.points(), &[(0.5, 10.0), (1.5, 5.0)]);
    }

    #[test]
    fn rate_skips_zero_dx() {
        let s = Series::from_points("out", vec![(1.0, 0.0), (1.0, 5.0), (2.0, 10.0)]);
        let r = s.rate();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn mean_over_x_weights_by_spacing() {
        // y=10 for the first 9 units of x, y=0 at a dense cluster near
        // the end: the arithmetic mean is dragged down, the x-weighted
        // mean is not.
        let s = Series::from_points(
            "s",
            vec![(0.0, 10.0), (9.0, 10.0), (9.5, 0.0), (9.6, 0.0), (9.7, 0.0), (10.0, 0.0)],
        );
        assert!(s.summary().mean < 5.0);
        assert!(s.mean_over_x() > 8.5, "got {}", s.mean_over_x());
        // Degenerate cases.
        assert_eq!(Series::new("e").mean_over_x(), 0.0);
        assert_eq!(Series::from_points("p", vec![(1.0, 7.0)]).mean_over_x(), 7.0);
    }

    #[test]
    fn summary_over_y() {
        let s = Series::from_points("s", vec![(0.0, 2.0), (1.0, 4.0), (2.0, 6.0)]);
        let sum = s.summary();
        assert_eq!(sum.min, 2.0);
        assert_eq!(sum.max, 6.0);
        assert!((sum.mean - 4.0).abs() < 1e-12);
    }
}
