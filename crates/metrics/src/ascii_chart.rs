//! Terminal line charts, so experiment binaries are readable without a
//! plotting stack.
//!
//! Multiple series are overlaid with distinct glyphs and a legend; axes are
//! labelled with min/max values.

use std::fmt::Write as _;

use crate::recorder::Recorder;
use crate::series::Series;

/// Chart rendering options.
#[derive(Debug, Clone)]
pub struct ChartOptions {
    /// Plot area width in characters.
    pub width: usize,
    /// Plot area height in characters.
    pub height: usize,
    /// Chart title printed above the plot.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
}

impl Default for ChartOptions {
    fn default() -> ChartOptions {
        ChartOptions {
            width: 72,
            height: 18,
            title: String::new(),
            x_label: "x".into(),
            y_label: "y".into(),
        }
    }
}

const GLYPHS: &[char] = &['*', '+', 'o', 'x', '#', '@', '%', '&'];

/// Renders all series of `recorder` overlaid in one chart.
pub fn render(recorder: &Recorder, opts: &ChartOptions) -> String {
    let series: Vec<&Series> = recorder.iter().filter(|s| !s.is_empty()).collect();
    render_series(&series, opts)
}

/// Renders the given series overlaid in one chart.
pub fn render_series(series: &[&Series], opts: &ChartOptions) -> String {
    let mut out = String::new();
    if !opts.title.is_empty() {
        let _ = writeln!(out, "== {} ==", opts.title);
    }
    if series.is_empty() || series.iter().all(|s| s.is_empty()) {
        out.push_str("(no data)\n");
        return out;
    }

    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for s in series {
        for &(x, y) in s.points() {
            x_min = x_min.min(x);
            x_max = x_max.max(x);
            y_min = y_min.min(y);
            y_max = y_max.max(y);
        }
    }
    if !x_min.is_finite() || !y_min.is_finite() {
        out.push_str("(no finite data)\n");
        return out;
    }
    if (x_max - x_min).abs() < f64::EPSILON {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < f64::EPSILON {
        y_max = y_min + 1.0;
    }

    let w = opts.width.max(8);
    let h = opts.height.max(4);
    let mut grid = vec![vec![' '; w]; h];

    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        // Sample each column at its x midpoint via interpolation so sparse
        // and dense series render equally well.
        #[allow(clippy::needless_range_loop)]
        for col in 0..w {
            let x = x_min + (x_max - x_min) * (col as f64 + 0.5) / w as f64;
            if x < s.points()[0].0 || x > s.points()[s.len() - 1].0 {
                continue;
            }
            if let Some(y) = s.interpolate(x) {
                let row_f = (y - y_min) / (y_max - y_min) * (h as f64 - 1.0);
                let row = h - 1 - (row_f.round() as usize).min(h - 1);
                grid[row][col] = glyph;
            }
        }
    }

    let y_top = format!("{y_max:.1}");
    let y_bot = format!("{y_min:.1}");
    let label_w = y_top.len().max(y_bot.len());
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            &y_top
        } else if i == h - 1 {
            &y_bot
        } else {
            ""
        };
        let _ = writeln!(out, "{label:>label_w$} |{}", row.iter().collect::<String>());
    }
    let _ = writeln!(out, "{:label_w$} +{}", "", "-".repeat(w));
    let x_lo = format!("{x_min:.1}");
    let x_hi = format!("{x_max:.1}");
    let pad = w.saturating_sub(x_lo.len() + x_hi.len());
    let _ = writeln!(out, "{:label_w$}  {x_lo}{}{x_hi}  ({})", "", " ".repeat(pad), opts.x_label);

    // Legend.
    for (si, s) in series.iter().enumerate() {
        let _ = writeln!(out, "  {} {}", GLYPHS[si % GLYPHS.len()], s.name);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_empty() {
        let r = Recorder::new();
        let s = render(&r, &ChartOptions::default());
        assert!(s.contains("(no data)"));
    }

    #[test]
    fn renders_single_series_with_legend() {
        let mut r = Recorder::new();
        for i in 0..20 {
            r.record("growth", i as f64, (i * i) as f64);
        }
        let opts = ChartOptions { title: "Fig. X".into(), ..ChartOptions::default() };
        let s = render(&r, &opts);
        assert!(s.contains("== Fig. X =="));
        assert!(s.contains("* growth"));
        assert!(s.contains('*'));
        // Axis labels present.
        assert!(s.contains("361.0")); // y max = 19^2
    }

    #[test]
    fn renders_two_series_with_distinct_glyphs() {
        let mut r = Recorder::new();
        for i in 0..10 {
            r.record("a", i as f64, i as f64);
            r.record("b", i as f64, (10 - i) as f64);
        }
        let s = render(&r, &ChartOptions::default());
        assert!(s.contains("* a"));
        assert!(s.contains("+ b"));
    }

    #[test]
    fn constant_series_does_not_panic() {
        let mut r = Recorder::new();
        r.record("flat", 0.0, 5.0);
        r.record("flat", 10.0, 5.0);
        let s = render(&r, &ChartOptions::default());
        assert!(s.contains("flat"));
    }

    #[test]
    fn single_point_does_not_panic() {
        let mut r = Recorder::new();
        r.record("dot", 1.0, 1.0);
        let _ = render(&r, &ChartOptions::default());
    }
}
