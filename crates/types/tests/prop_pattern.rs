//! Property-based tests of the pattern algebra: the punctuation
//! semantics of the whole system rest on `Pattern::matches` and
//! `Pattern::and` agreeing with each other, so we check the algebraic
//! laws over randomized patterns and values.

use proptest::prelude::*;
use punct_types::parse::{parse_pattern, parse_punctuation};
use punct_types::{Bound, Pattern, Punctuation, Value};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-50i64..50).prop_map(Value::Int),
        (-50i64..50).prop_map(|i| Value::Float(i as f64 / 2.0)),
        "[a-e]{0,3}".prop_map(Value::from),
        any::<bool>().prop_map(Value::Bool),
    ]
}

fn arb_int_value() -> impl Strategy<Value = Value> {
    (-50i64..50).prop_map(Value::Int)
}

fn arb_bound() -> impl Strategy<Value = Bound> {
    prop_oneof![
        Just(Bound::Unbounded),
        arb_int_value().prop_map(Bound::Inclusive),
        arb_int_value().prop_map(Bound::Exclusive),
    ]
}

fn arb_pattern() -> impl Strategy<Value = Pattern> {
    prop_oneof![
        Just(Pattern::Wildcard),
        Just(Pattern::Empty),
        arb_value().prop_map(Pattern::Constant),
        (arb_bound(), arb_bound()).prop_map(|(lo, hi)| {
            Pattern::range(lo.clone(), hi.clone())
                .unwrap_or(Pattern::Empty)
        }),
        proptest::collection::vec(arb_int_value(), 0..5).prop_map(Pattern::enumeration),
    ]
}

proptest! {
    /// `and` is the intersection of match sets.
    #[test]
    fn and_is_intersection(a in arb_pattern(), b in arb_pattern(), v in arb_value()) {
        let both = a.and(&b);
        prop_assert_eq!(both.matches(&v), a.matches(&v) && b.matches(&v));
    }

    /// `and` is commutative in match semantics.
    #[test]
    fn and_commutes_semantically(a in arb_pattern(), b in arb_pattern(), v in arb_value()) {
        prop_assert_eq!(a.and(&b).matches(&v), b.and(&a).matches(&v));
    }

    /// `and` is idempotent.
    #[test]
    fn and_idempotent(a in arb_pattern(), v in arb_value()) {
        prop_assert_eq!(a.and(&a).matches(&v), a.matches(&v));
    }

    /// Wildcard is the identity, Empty the annihilator.
    #[test]
    fn identity_and_annihilator(a in arb_pattern(), v in arb_value()) {
        prop_assert_eq!(a.and(&Pattern::Wildcard).matches(&v), a.matches(&v));
        prop_assert!(!a.and(&Pattern::Empty).matches(&v));
    }

    /// `is_empty` is sound: an empty pattern matches nothing.
    #[test]
    fn is_empty_sound(a in arb_pattern(), v in arb_value()) {
        if a.is_empty() {
            prop_assert!(!a.matches(&v));
        }
    }

    /// Subsumption agrees with matching.
    #[test]
    fn subsumption_sound(a in arb_pattern(), b in arb_pattern(), v in arb_value()) {
        if a.subsumed_by(&b) && a.matches(&v) {
            prop_assert!(b.matches(&v));
        }
    }

    /// Disjointness is sound: no common match.
    #[test]
    fn disjointness_sound(a in arb_pattern(), b in arb_pattern(), v in arb_value()) {
        if a.disjoint_with(&b) {
            prop_assert!(!(a.matches(&v) && b.matches(&v)));
        }
    }

    /// Display → parse round-trips patterns (match-semantically).
    #[test]
    fn display_parse_round_trip(a in arb_pattern(), v in arb_value()) {
        // NaN-free by construction, so parsing must succeed.
        let back = parse_pattern(&a.to_string()).unwrap();
        prop_assert_eq!(back.matches(&v), a.matches(&v));
    }

    /// Punctuation match is the conjunction of attribute patterns, and
    /// punctuation `and` mirrors pattern `and`.
    #[test]
    fn punctuation_matches_attributewise(
        pats in proptest::collection::vec(arb_pattern(), 1..4),
        vals in proptest::collection::vec(arb_value(), 1..4),
    ) {
        let width = pats.len().min(vals.len());
        let p = Punctuation::new(pats[..width].to_vec());
        let t = punct_types::Tuple::new(vals[..width].to_vec());
        let expect = pats[..width].iter().zip(t.values()).all(|(p, v)| p.matches(v));
        prop_assert_eq!(p.matches(&t), expect);
    }

    /// Punctuation display round-trips through the parser.
    #[test]
    fn punctuation_display_round_trip(
        pats in proptest::collection::vec(arb_pattern(), 1..4),
    ) {
        let p = Punctuation::new(pats);
        let back = parse_punctuation(&p.to_string()).unwrap();
        prop_assert_eq!(back.to_string(), p.to_string());
    }
}
