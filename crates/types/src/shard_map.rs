//! The shard map: the cluster's routing authority.
//!
//! A [`ShardMap`] names, for every global shard, the worker that owns
//! it, and stamps the assignment with a monotonically increasing
//! *epoch*. The coordinator owns the map; everyone else (routers,
//! workers, clients) holds a copy and treats the epoch as the version
//! of the world — a frame carrying an older epoch is stale and must be
//! ignored.
//!
//! The partition function lives here too, so every layer that needs
//! "which shard owns this hash" — the in-process router
//! (`punct_exec::shard_of_hash`), the cluster coordinator, migration
//! rehashing — agrees on one definition. It uses the *high* 32 bits of
//! the join hash, deliberately decorrelated from `spillstore`'s bucket
//! modulus (which consumes the low bits), so shard and bucket selection
//! stay independent.

use crate::wire::{WireError, WireReader};

/// Which shard (of `shards`) owns join hash `hash`.
///
/// `None` (unjoinable keys: null join attributes) deterministically maps
/// to shard 0 so such tuples still land somewhere consistent.
pub fn partition(hash: Option<u64>, shards: usize) -> usize {
    debug_assert!(shards > 0, "partition over zero shards");
    match hash {
        Some(h) => ((h >> 32) % shards as u64) as usize,
        None => 0,
    }
}

/// A versioned shard→worker assignment.
///
/// `assignment[shard]` is the worker index owning that global shard.
/// The number of global shards is `assignment.len()`; it changes across
/// repartitions, which is why routing must consult the map rather than
/// a fixed `hash % N`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    /// Version of this assignment. Strictly increases with every
    /// repartition; frames stamped with an older epoch are stale.
    pub epoch: u64,
    /// `assignment[shard] == worker` owning that shard.
    pub assignment: Vec<u32>,
}

impl ShardMap {
    /// A fresh epoch-`epoch` map distributing `shards` shards
    /// round-robin over `workers` workers.
    pub fn round_robin(epoch: u64, shards: usize, workers: usize) -> ShardMap {
        assert!(workers > 0, "round_robin over zero workers");
        ShardMap {
            epoch,
            assignment: (0..shards).map(|s| (s % workers) as u32).collect(),
        }
    }

    /// Number of global shards.
    pub fn shards(&self) -> usize {
        self.assignment.len()
    }

    /// The worker owning `shard`.
    pub fn worker_of(&self, shard: usize) -> u32 {
        self.assignment[shard]
    }

    /// The worker owning join hash `hash` under this map.
    pub fn worker_of_hash(&self, hash: Option<u64>) -> u32 {
        self.assignment[partition(hash, self.shards())]
    }

    /// The global shards owned by `worker`, ascending.
    pub fn shards_of(&self, worker: u32) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|(_, &w)| w == worker)
            .map(|(s, _)| s)
            .collect()
    }

    /// Number of distinct workers referenced by the assignment.
    pub fn workers(&self) -> usize {
        self.assignment.iter().map(|&w| w as usize + 1).max().unwrap_or(0)
    }

    /// Appends the wire encoding: epoch, shard count, then one u32 per
    /// shard.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.epoch.to_le_bytes());
        buf.extend_from_slice(&(self.assignment.len() as u32).to_le_bytes());
        for &w in &self.assignment {
            buf.extend_from_slice(&w.to_le_bytes());
        }
    }

    /// Decodes a map written by [`encode_into`](ShardMap::encode_into).
    pub fn decode(r: &mut WireReader) -> Result<ShardMap, WireError> {
        let epoch = r.u64("shardmap epoch")?;
        let count = r.u32("shardmap count")? as usize;
        let mut assignment = Vec::with_capacity(count.min(r.remaining() / 4 + 1));
        for _ in 0..count {
            assignment.push(r.u32("shardmap worker")?);
        }
        Ok(ShardMap { epoch, assignment })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_uses_high_bits() {
        // Low-bit changes must not move the shard (bucket decorrelation).
        let h = 0x1234_5678_0000_0000u64;
        for low in [0u64, 1, 0xFFFF_FFFF] {
            assert_eq!(partition(Some(h | low), 8), partition(Some(h), 8));
        }
        assert_eq!(partition(None, 8), 0);
        // All shards reachable.
        let mut seen = vec![false; 4];
        for i in 0..64u64 {
            seen[partition(Some(i << 32), 4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn round_robin_covers_all_workers() {
        let map = ShardMap::round_robin(1, 5, 2);
        assert_eq!(map.assignment, vec![0, 1, 0, 1, 0]);
        assert_eq!(map.shards_of(0), vec![0, 2, 4]);
        assert_eq!(map.shards_of(1), vec![1, 3]);
        assert_eq!(map.workers(), 2);
        assert_eq!(map.shards(), 5);
    }

    #[test]
    fn wire_round_trip() {
        let map = ShardMap { epoch: 42, assignment: vec![0, 1, 2, 1] };
        let mut buf = Vec::new();
        map.encode_into(&mut buf);
        let mut r = WireReader::new(&buf);
        let back = ShardMap::decode(&mut r).expect("decode");
        r.finish().expect("no trailing bytes");
        assert_eq!(back, map);
    }
}
