//! Batched-execution configuration shared by every layer of the data
//! path.
//!
//! PJoin's framework schedules components per element, and the first
//! reproduction inherited that granularity everywhere: one channel send,
//! one join-key hash (twice), one wire frame and one syscall per tuple.
//! Batching amortizes all of those without changing observable
//! semantics — punctuations act as flush barriers, so alignment and
//! exactly-once ordering are untouched, and a batch size of `1`
//! reproduces per-element behavior exactly.
//!
//! One [`BatchConfig`] value is threaded through the sharded executor
//! (`punct-exec`: router staging and shard-side run grouping), the
//! single-operator runtime (`pjoin::runtime`), and the networked
//! transport (`punct-net`: elements per `DataBatch` frame / socket
//! write). The `PJOIN_BATCH` environment variable overrides the element
//! cap everywhere, which is how the CI batch matrix and the
//! `batch_scaling` bench sweep it without recompiling.

/// Default cap on elements per batch (matches the router's historical
/// flush threshold, so default behavior stays familiar).
pub const DEFAULT_BATCH_ELEMS: usize = 128;

/// Default cap on encoded bytes per wire batch: one `DataBatch` frame
/// never asks the peer for more than this in a single allocation, and a
/// socket write stays well under typical send-buffer sizes.
pub const DEFAULT_BATCH_BYTES: usize = 64 * 1024;

/// How aggressively the data path batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Maximum elements staged per batch (router flush threshold, shard
    /// run-grouping cap, elements per wire frame). Clamped to at least 1.
    pub max_elems: usize,
    /// Maximum encoded bytes per wire batch. Only the transport layer
    /// consults this (in-process batches move `Arc`ed tuples, not
    /// bytes). Clamped to at least one frame.
    pub max_bytes: usize,
}

impl Default for BatchConfig {
    fn default() -> BatchConfig {
        BatchConfig { max_elems: DEFAULT_BATCH_ELEMS, max_bytes: DEFAULT_BATCH_BYTES }
    }
}

impl BatchConfig {
    /// Per-element execution: batch size 1 everywhere — the exact
    /// pre-batching behavior.
    pub const fn per_element() -> BatchConfig {
        BatchConfig { max_elems: 1, max_bytes: DEFAULT_BATCH_BYTES }
    }

    /// A config with the given element cap and the default byte cap.
    pub fn with_elems(max_elems: usize) -> BatchConfig {
        BatchConfig { max_elems: max_elems.max(1), ..BatchConfig::default() }
    }

    /// The default config with any `PJOIN_BATCH` override applied.
    pub fn from_env() -> BatchConfig {
        match batch_from_env() {
            Some(n) => BatchConfig::with_elems(n),
            None => BatchConfig::default(),
        }
    }

    /// True when batching is effectively off (per-element execution).
    pub fn is_per_element(&self) -> bool {
        self.max_elems <= 1
    }
}

/// Reads the batch element cap from the `PJOIN_BATCH` environment
/// variable, if set to a positive integer. Used by tests, benches and
/// the CI batch matrix to parameterize runs without recompiling.
pub fn batch_from_env() -> Option<usize> {
    std::env::var("PJOIN_BATCH")
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()
        .filter(|&n| n >= 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = BatchConfig::default();
        assert_eq!(c.max_elems, DEFAULT_BATCH_ELEMS);
        assert_eq!(c.max_bytes, DEFAULT_BATCH_BYTES);
        assert!(!c.is_per_element());
    }

    #[test]
    fn per_element_is_batch_one() {
        let c = BatchConfig::per_element();
        assert_eq!(c.max_elems, 1);
        assert!(c.is_per_element());
    }

    #[test]
    fn with_elems_clamps_to_one() {
        assert_eq!(BatchConfig::with_elems(0).max_elems, 1);
        assert_eq!(BatchConfig::with_elems(256).max_elems, 256);
    }
}
