//! Error types for the punctuated-stream type system.

use std::fmt;

use crate::value::ValueType;

/// Errors raised by schema validation, pattern evaluation and parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// A tuple's arity does not match its schema or punctuation.
    ArityMismatch {
        /// Number of attributes expected (schema / punctuation width).
        expected: usize,
        /// Number of attributes found.
        found: usize,
    },
    /// Two values of incompatible types were compared.
    TypeMismatch {
        /// Type expected by the schema or pattern.
        expected: ValueType,
        /// Type actually found.
        found: ValueType,
    },
    /// An attribute name was not found in a schema.
    UnknownAttribute(String),
    /// An attribute index was out of range for a schema.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// Schema width.
        width: usize,
    },
    /// A range pattern's lower bound exceeds its upper bound.
    InvalidRange(String),
    /// A punctuation string failed to parse.
    Parse {
        /// Byte offset of the error in the input.
        offset: usize,
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::ArityMismatch { expected, found } => {
                write!(f, "arity mismatch: expected {expected} attributes, found {found}")
            }
            TypeError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            TypeError::UnknownAttribute(name) => write!(f, "unknown attribute `{name}`"),
            TypeError::IndexOutOfRange { index, width } => {
                write!(f, "attribute index {index} out of range for schema of width {width}")
            }
            TypeError::InvalidRange(msg) => write!(f, "invalid range pattern: {msg}"),
            TypeError::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
        }
    }
}

impl std::error::Error for TypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TypeError::ArityMismatch { expected: 3, found: 2 };
        assert!(e.to_string().contains("expected 3"));
        let e = TypeError::UnknownAttribute("item_id".into());
        assert!(e.to_string().contains("item_id"));
        let e = TypeError::Parse { offset: 7, message: "expected `>`".into() };
        assert!(e.to_string().contains("byte 7"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TypeError>();
    }
}
