//! Schemas: named, typed attribute lists for stream tuples.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::error::TypeError;
use crate::tuple::Tuple;
use crate::value::ValueType;

/// A single named, typed attribute of a schema.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Field {
    /// Attribute name (unique within a schema).
    pub name: String,
    /// Attribute type.
    pub ty: ValueType,
}

impl Field {
    /// Creates a field.
    pub fn new(name: impl Into<String>, ty: ValueType) -> Field {
        Field { name: name.into(), ty }
    }
}

/// An ordered list of [`Field`]s describing the shape of a stream's tuples.
///
/// Schemas are immutable and cheap to clone (`Arc` inside).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    fields: Arc<[Field]>,
}

impl Schema {
    /// Builds a schema from fields.
    pub fn new(fields: Vec<Field>) -> Schema {
        Schema { fields: fields.into() }
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn of(pairs: &[(&str, ValueType)]) -> Schema {
        Schema::new(pairs.iter().map(|(n, t)| Field::new(*n, *t)).collect())
    }

    /// Number of attributes.
    pub fn width(&self) -> usize {
        self.fields.len()
    }

    /// Whether the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// The fields, in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Field at `index`, if in range.
    pub fn field(&self, index: usize) -> Option<&Field> {
        self.fields.get(index)
    }

    /// Index of the attribute named `name`.
    pub fn index_of(&self, name: &str) -> Result<usize, TypeError> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| TypeError::UnknownAttribute(name.to_string()))
    }

    /// Validates that `tuple` conforms to this schema: correct arity, and
    /// every non-null value has the declared type.
    pub fn check(&self, tuple: &Tuple) -> Result<(), TypeError> {
        if tuple.width() != self.width() {
            return Err(TypeError::ArityMismatch { expected: self.width(), found: tuple.width() });
        }
        for (field, value) in self.fields.iter().zip(tuple.values()) {
            if !value.is_null() && value.type_of() != field.ty {
                return Err(TypeError::TypeMismatch {
                    expected: field.ty,
                    found: value.type_of(),
                });
            }
        }
        Ok(())
    }

    /// Concatenates two schemas (used for join output). Fields from `other`
    /// whose names collide are disambiguated with a `right_` prefix, matching
    /// the usual convention of binary join operators.
    pub fn join(&self, other: &Schema) -> Schema {
        let mut fields: Vec<Field> = self.fields.to_vec();
        for f in other.fields.iter() {
            let name = if self.fields.iter().any(|g| g.name == f.name) {
                format!("right_{}", f.name)
            } else {
                f.name.clone()
            };
            fields.push(Field::new(name, f.ty));
        }
        Schema::new(fields)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{}: {}", field.name, field.ty)?;
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn open_schema() -> Schema {
        Schema::of(&[
            ("item_id", ValueType::Int),
            ("seller_id", ValueType::Str),
            ("open_price", ValueType::Float),
        ])
    }

    #[test]
    fn width_and_lookup() {
        let s = open_schema();
        assert_eq!(s.width(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.index_of("seller_id").unwrap(), 1);
        assert!(matches!(s.index_of("nope"), Err(TypeError::UnknownAttribute(_))));
        assert_eq!(s.field(0).unwrap().name, "item_id");
        assert!(s.field(3).is_none());
    }

    #[test]
    fn check_accepts_conforming_tuple() {
        let s = open_schema();
        let t = Tuple::new(vec![Value::Int(1), Value::str("alice"), Value::Float(9.99)]);
        assert!(s.check(&t).is_ok());
    }

    #[test]
    fn check_accepts_nulls() {
        let s = open_schema();
        let t = Tuple::new(vec![Value::Int(1), Value::Null, Value::Null]);
        assert!(s.check(&t).is_ok());
    }

    #[test]
    fn check_rejects_wrong_arity() {
        let s = open_schema();
        let t = Tuple::new(vec![Value::Int(1)]);
        assert!(matches!(s.check(&t), Err(TypeError::ArityMismatch { expected: 3, found: 1 })));
    }

    #[test]
    fn check_rejects_wrong_type() {
        let s = open_schema();
        let t = Tuple::new(vec![Value::str("oops"), Value::str("a"), Value::Float(0.0)]);
        assert!(matches!(s.check(&t), Err(TypeError::TypeMismatch { .. })));
    }

    #[test]
    fn join_concatenates_and_disambiguates() {
        let a = Schema::of(&[("item_id", ValueType::Int), ("x", ValueType::Int)]);
        let b = Schema::of(&[("item_id", ValueType::Int), ("y", ValueType::Float)]);
        let j = a.join(&b);
        assert_eq!(j.width(), 4);
        assert_eq!(j.field(2).unwrap().name, "right_item_id");
        assert_eq!(j.field(3).unwrap().name, "y");
    }

    #[test]
    fn display_formats() {
        let s = Schema::of(&[("a", ValueType::Int), ("b", ValueType::Str)]);
        assert_eq!(s.to_string(), "(a: int, b: str)");
    }
}
