//! A textual grammar for punctuations, used by tests, examples and
//! configuration files.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! punctuation := '<' pattern (',' pattern)* '>'
//! pattern     := '*'                      wildcard
//!              | '-'                      empty
//!              | value                    constant
//!              | range                    e.g. [1,10] (1,10] [1,..) (..,10)
//!              | '{' value (',' value)* '}'   enumeration list
//! value       := integer | float | '"'string'"' | 'true' | 'false' | 'null'
//! range       := ('['|'(') (value|'..') ',' (value|'..') (']'|')')
//! ```
//!
//! `Display` on [`Punctuation`] emits the same syntax, so values round-trip:
//!
//! ```
//! use punct_types::parse::parse_punctuation;
//! let p = parse_punctuation("<*, 42, [1,10), {1,2}, ->").unwrap();
//! assert_eq!(parse_punctuation(&p.to_string()).unwrap(), p);
//! ```

use crate::error::TypeError;
use crate::pattern::{Bound, Pattern};
use crate::punctuation::Punctuation;
use crate::value::Value;

/// Parses a punctuation from its textual form.
pub fn parse_punctuation(input: &str) -> Result<Punctuation, TypeError> {
    let mut p = Parser::new(input);
    let punct = p.punctuation()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.error("trailing input after punctuation"));
    }
    Ok(punct)
}

/// Parses a single pattern from its textual form.
pub fn parse_pattern(input: &str) -> Result<Pattern, TypeError> {
    let mut p = Parser::new(input);
    let pat = p.pattern()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.error("trailing input after pattern"));
    }
    Ok(pat)
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Parser<'a> {
        Parser { input, pos: 0 }
    }

    fn error(&self, message: impl Into<String>) -> TypeError {
        TypeError::Parse { offset: self.pos, message: message.into() }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn at_end(&self) -> bool {
        self.pos >= self.input.len()
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(char::is_whitespace) {
            self.bump();
        }
    }

    fn expect(&mut self, c: char) -> Result<(), TypeError> {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!("expected `{c}`")))
        }
    }

    fn eat(&mut self, c: char) -> bool {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_str(&mut self, s: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn punctuation(&mut self) -> Result<Punctuation, TypeError> {
        self.expect('<')?;
        let mut patterns = vec![self.pattern()?];
        while self.eat(',') {
            patterns.push(self.pattern()?);
        }
        self.expect('>')?;
        Ok(Punctuation::new(patterns))
    }

    fn pattern(&mut self) -> Result<Pattern, TypeError> {
        self.skip_ws();
        match self.peek() {
            Some('*') => {
                self.bump();
                Ok(Pattern::Wildcard)
            }
            Some('{') => self.enumeration(),
            Some('[') => self.range(),
            Some('(') => self.range(),
            Some('-') => {
                // `-` alone is the empty pattern; `-3` is a negative number.
                let after = self.rest()[1..].chars().next();
                if after.is_some_and(|c| c.is_ascii_digit()) {
                    Ok(Pattern::Constant(self.value()?))
                } else {
                    self.bump();
                    Ok(Pattern::Empty)
                }
            }
            Some(_) => Ok(Pattern::Constant(self.value()?)),
            None => Err(self.error("expected a pattern")),
        }
    }

    fn enumeration(&mut self) -> Result<Pattern, TypeError> {
        self.expect('{')?;
        let mut values = Vec::new();
        if !self.eat('}') {
            values.push(self.value()?);
            while self.eat(',') {
                values.push(self.value()?);
            }
            self.expect('}')?;
        }
        Ok(Pattern::enumeration(values))
    }

    fn range(&mut self) -> Result<Pattern, TypeError> {
        self.skip_ws();
        let lo_inclusive = match self.bump() {
            Some('[') => true,
            Some('(') => false,
            _ => return Err(self.error("expected `[` or `(`")),
        };
        let lo = if self.eat_str("..") {
            Bound::Unbounded
        } else {
            let v = self.value()?;
            if lo_inclusive {
                Bound::Inclusive(v)
            } else {
                Bound::Exclusive(v)
            }
        };
        self.expect(',')?;
        self.skip_ws();
        let hi = if self.eat_str("..") {
            Bound::Unbounded
        } else {
            let v = self.value()?;
            // Bound kind decided by the closing delimiter below.
            Bound::Inclusive(v)
        };
        self.skip_ws();
        let hi = match self.bump() {
            Some(']') => hi,
            Some(')') => match hi {
                Bound::Inclusive(v) => Bound::Exclusive(v),
                other => other,
            },
            _ => return Err(self.error("expected `]` or `)`")),
        };
        Pattern::range(lo, hi)
    }

    fn value(&mut self) -> Result<Value, TypeError> {
        self.skip_ws();
        if self.eat_str("true") {
            return Ok(Value::Bool(true));
        }
        if self.eat_str("false") {
            return Ok(Value::Bool(false));
        }
        if self.eat_str("null") {
            return Ok(Value::Null);
        }
        match self.peek() {
            Some('"') => self.string(),
            Some(c) if c.is_ascii_digit() || c == '-' || c == '+' => self.number(),
            _ => Err(self.error("expected a value")),
        }
    }

    fn string(&mut self) -> Result<Value, TypeError> {
        self.expect('"')?;
        let mut s = String::new();
        loop {
            match self.bump() {
                Some('"') => return Ok(Value::str(s)),
                Some('\\') => match self.bump() {
                    Some(c @ ('"' | '\\')) => s.push(c),
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    _ => return Err(self.error("invalid escape sequence")),
                },
                Some(c) => s.push(c),
                None => return Err(self.error("unterminated string literal")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, TypeError> {
        let start = self.pos;
        if matches!(self.peek(), Some('-' | '+')) {
            self.bump();
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        let mut is_float = false;
        // A `.` only belongs to the number if followed by a digit; this keeps
        // `[1,..)`'s `..` out of the number.
        if self.peek() == Some('.')
            && self.rest()[1..].chars().next().is_some_and(|c| c.is_ascii_digit())
        {
            is_float = true;
            self.bump();
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some('e' | 'E')) {
            is_float = true;
            self.bump();
            if matches!(self.peek(), Some('-' | '+')) {
                self.bump();
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
            }
        }
        let text = &self.input[start..self.pos];
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| self.error(format!("invalid float `{text}`: {e}")))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| self.error(format!("invalid integer `{text}`: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_wildcard_and_empty() {
        assert_eq!(parse_pattern("*").unwrap(), Pattern::Wildcard);
        assert_eq!(parse_pattern("-").unwrap(), Pattern::Empty);
    }

    #[test]
    fn parses_constants() {
        assert_eq!(parse_pattern("42").unwrap(), Pattern::Constant(Value::Int(42)));
        assert_eq!(parse_pattern("-3").unwrap(), Pattern::Constant(Value::Int(-3)));
        assert_eq!(parse_pattern("2.5").unwrap(), Pattern::Constant(Value::Float(2.5)));
        assert_eq!(parse_pattern("1e3").unwrap(), Pattern::Constant(Value::Float(1000.0)));
        assert_eq!(parse_pattern("\"abc\"").unwrap(), Pattern::Constant(Value::str("abc")));
        assert_eq!(parse_pattern("true").unwrap(), Pattern::Constant(Value::Bool(true)));
        assert_eq!(parse_pattern("null").unwrap(), Pattern::Constant(Value::Null));
    }

    #[test]
    fn parses_string_escapes() {
        assert_eq!(
            parse_pattern(r#""a\"b\\c\nd""#).unwrap(),
            Pattern::Constant(Value::str("a\"b\\c\nd"))
        );
    }

    #[test]
    fn parses_ranges() {
        assert_eq!(parse_pattern("[1,10]").unwrap(), Pattern::int_range(1, 10));
        let p = parse_pattern("(1, 10]").unwrap();
        assert!(!p.matches(&Value::Int(1)));
        assert!(p.matches(&Value::Int(10)));
        let p = parse_pattern("[1, 10)").unwrap();
        assert!(p.matches(&Value::Int(1)));
        assert!(!p.matches(&Value::Int(10)));
    }

    #[test]
    fn parses_unbounded_ranges() {
        let p = parse_pattern("[1, ..)").unwrap();
        assert!(p.matches(&Value::Int(1_000_000)));
        assert!(!p.matches(&Value::Int(0)));
        let p = parse_pattern("(.., 10]").unwrap();
        assert!(p.matches(&Value::Int(-5)));
        assert!(!p.matches(&Value::Int(11)));
    }

    #[test]
    fn parses_enumerations() {
        assert_eq!(
            parse_pattern("{3, 1, 2}").unwrap(),
            Pattern::In(vec![Value::Int(1), Value::Int(2), Value::Int(3)])
        );
        assert_eq!(parse_pattern("{}").unwrap(), Pattern::Empty);
        assert_eq!(parse_pattern("{7}").unwrap(), Pattern::Constant(Value::Int(7)));
    }

    #[test]
    fn parses_full_punctuation() {
        let p = parse_punctuation("<*, 42, [1,10), {1,2}, ->").unwrap();
        assert_eq!(p.width(), 5);
        assert_eq!(p.pattern(0), Some(&Pattern::Wildcard));
        assert_eq!(p.pattern(1), Some(&Pattern::Constant(Value::Int(42))));
        assert_eq!(p.pattern(4), Some(&Pattern::Empty));
    }

    #[test]
    fn display_round_trips() {
        for text in [
            "<*, 1, [1,10], {1,2,3}, ->",
            "<\"auction-7\", *>",
            "<[0,..), (..,5)>",
            "<2.5, true, false>",
        ] {
            let p = parse_punctuation(text).unwrap();
            assert_eq!(parse_punctuation(&p.to_string()).unwrap(), p, "round-trip of {text}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_punctuation("").is_err());
        assert!(parse_punctuation("<").is_err());
        assert!(parse_punctuation("<*>trailing").is_err());
        assert!(parse_punctuation("<[5,1]>").is_err()); // inverted range
        assert!(parse_pattern("\"unterminated").is_err());
        assert!(parse_pattern("{1,").is_err());
        assert!(parse_pattern("[1;2]").is_err());
    }

    #[test]
    fn error_carries_offset() {
        let err = parse_punctuation("<*, !>").unwrap_err();
        match err {
            TypeError::Parse { offset, .. } => assert!(offset >= 3),
            other => panic!("expected parse error, got {other:?}"),
        }
    }
}
