//! # punct-types
//!
//! The value, tuple, schema and **punctuation** type system underlying the
//! PJoin reproduction (Ding, Mehta, Rundensteiner, Heineman: *Joining
//! Punctuated Streams*, EDBT 2004).
//!
//! A *punctuated stream* interleaves data tuples with [`Punctuation`]s —
//! ordered sets of [`Pattern`]s, one per attribute — that assert that no
//! tuple arriving **after** the punctuation will match it. Stateful
//! operators exploit punctuations to discard state (purge) and blocking
//! operators use them to emit partial results early.
//!
//! The crate provides:
//!
//! * [`Value`] / [`ValueType`] — a small dynamically-typed value model with
//!   total ordering and hashing so values can serve as join keys.
//! * [`Schema`] / [`Field`] — named, typed attribute lists.
//! * [`Tuple`] — an immutable, cheaply-cloneable row of values.
//! * [`Pattern`] — the five pattern kinds of the paper (wildcard, constant,
//!   range, enumeration list, empty) with `match` and `and` semantics.
//! * [`Punctuation`] — an ordered set of patterns over a schema.
//! * [`PunctuationSet`] — an indexed collection of punctuations with a
//!   fast `set_match` on a designated (join) attribute.
//! * [`StreamElement`] / [`Timestamped`] — the element model of a
//!   punctuated stream.
//! * a textual grammar ([`parse`]) for writing punctuations in tests,
//!   examples and config files, e.g. `<*, 42, [10,20), {1,2,3}, ->`.
//! * a wire-stable binary encoding ([`wire`]) of all of the above, used
//!   by the networked transport (`punct-net`).

pub mod batch;
pub mod error;
pub mod parse;
pub mod pattern;
pub mod punct_seq;
pub mod punct_set;
pub mod punctuation;
pub mod schema;
pub mod shard_map;
pub mod stream;
pub mod tuple;
pub mod value;
pub mod wire;

pub use batch::{batch_from_env, BatchConfig};
pub use error::TypeError;
pub use pattern::{Bound, Pattern};
pub use punct_seq::{PunctSeq, PunctSeqAssigner};
pub use punct_set::{PunctId, PunctuationSet};
pub use punctuation::Punctuation;
pub use schema::{Field, Schema};
pub use shard_map::{partition, ShardMap};
pub use stream::{StreamElement, Timestamp, Timestamped};
pub use tuple::Tuple;
pub use value::{Value, ValueType};
pub use wire::{WireError, WireReader};
