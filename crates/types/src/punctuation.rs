//! Punctuations: ordered sets of patterns embedded into data streams.
//!
//! A punctuation `p` asserts that **no tuple arriving after `p`** matches
//! `p` — formally, viewing `p` as a predicate, every later stream element
//! evaluates to `false` under it (paper §2.2). The elements *before* the
//! punctuation may match or not.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::error::TypeError;
use crate::pattern::Pattern;
use crate::tuple::Tuple;
use crate::value::Value;

/// An ordered set of [`Pattern`]s, one per attribute of the stream schema.
///
/// Punctuations are immutable and cheap to clone.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Punctuation {
    patterns: Arc<[Pattern]>,
}

impl Punctuation {
    /// Creates a punctuation from per-attribute patterns.
    pub fn new(patterns: Vec<Pattern>) -> Punctuation {
        Punctuation { patterns: patterns.into() }
    }

    /// A punctuation of width `width` that constrains only attribute
    /// `attr` with `pattern`; all other attributes are wildcards.
    ///
    /// This is the common shape for join-attribute punctuations (the paper
    /// "only focus\[es\] on exploiting punctuations over the join attribute").
    pub fn on_attr(width: usize, attr: usize, pattern: Pattern) -> Punctuation {
        debug_assert!(attr < width, "attribute index within width");
        let mut patterns = vec![Pattern::Wildcard; width];
        patterns[attr] = pattern;
        Punctuation::new(patterns)
    }

    /// Shorthand: close a single constant key value on `attr`.
    pub fn close_value(width: usize, attr: usize, value: impl Into<Value>) -> Punctuation {
        Punctuation::on_attr(width, attr, Pattern::Constant(value.into()))
    }

    /// Number of attribute patterns.
    pub fn width(&self) -> usize {
        self.patterns.len()
    }

    /// The patterns in attribute order.
    pub fn patterns(&self) -> &[Pattern] {
        &self.patterns
    }

    /// Pattern for attribute `attr`, if in range.
    pub fn pattern(&self, attr: usize) -> Option<&Pattern> {
        self.patterns.get(attr)
    }

    /// True if tuple `t` matches this punctuation, i.e. every attribute
    /// value matches the corresponding pattern (the paper's `match(t, p)`).
    ///
    /// Returns an error if arities differ.
    pub fn try_matches(&self, t: &Tuple) -> Result<bool, TypeError> {
        if t.width() != self.width() {
            return Err(TypeError::ArityMismatch { expected: self.width(), found: t.width() });
        }
        Ok(self.patterns.iter().zip(t.values()).all(|(p, v)| p.matches(v)))
    }

    /// Infallible variant of [`Punctuation::try_matches`]; arity mismatches
    /// simply do not match. Operators on validated streams use this on the
    /// hot path.
    pub fn matches(&self, t: &Tuple) -> bool {
        self.width() == t.width()
            && self.patterns.iter().zip(t.values()).all(|(p, v)| p.matches(v))
    }

    /// Conjunction of two punctuations: attribute-wise `and` of the
    /// patterns. Per the paper, the `and` of two punctuations is again a
    /// punctuation.
    pub fn and(&self, other: &Punctuation) -> Result<Punctuation, TypeError> {
        if self.width() != other.width() {
            return Err(TypeError::ArityMismatch {
                expected: self.width(),
                found: other.width(),
            });
        }
        Ok(Punctuation::new(
            self.patterns
                .iter()
                .zip(other.patterns.iter())
                .map(|(a, b)| a.and(b))
                .collect(),
        ))
    }

    /// True if this punctuation matches no tuple at all (some attribute
    /// pattern is empty).
    pub fn is_empty(&self) -> bool {
        self.patterns.iter().any(Pattern::is_empty)
    }

    /// True if every tuple matched by `self` is matched by `other`.
    ///
    /// This attribute-wise check is sound (if every attribute pattern is
    /// subsumed, the punctuation is subsumed) and exact for non-empty
    /// punctuations of this crate's pattern language.
    pub fn subsumed_by(&self, other: &Punctuation) -> bool {
        self.width() == other.width()
            && (self.is_empty()
                || self
                    .patterns
                    .iter()
                    .zip(other.patterns.iter())
                    .all(|(a, b)| a.subsumed_by(b)))
    }

    /// The paper's well-formedness assumption for join-attribute
    /// punctuation sequences: for `p_i` arriving before `p_j`, their join
    /// attribute patterns satisfy `Ptn_i ∧ Ptn_j = ∅` or
    /// `Ptn_i ∧ Ptn_j = Ptn_i`. Returns true when `self` (earlier) and
    /// `other` (later) satisfy the assumption on attribute `attr`.
    pub fn compatible_on(&self, other: &Punctuation, attr: usize) -> bool {
        match (self.pattern(attr), other.pattern(attr)) {
            (Some(a), Some(b)) => {
                let both = a.and(b);
                both.is_empty() || both == *a
            }
            _ => false,
        }
    }
}

impl fmt::Display for Punctuation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("<")?;
        for (i, p) in self.patterns.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{p}")?;
        }
        f.write_str(">")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Bound;

    fn t(vals: (i64, &str, i64)) -> Tuple {
        Tuple::of(vals)
    }

    #[test]
    fn on_attr_builds_wildcards_elsewhere() {
        let p = Punctuation::on_attr(3, 1, Pattern::Constant(Value::str("x")));
        assert_eq!(p.width(), 3);
        assert_eq!(p.pattern(0), Some(&Pattern::Wildcard));
        assert_eq!(p.pattern(2), Some(&Pattern::Wildcard));
    }

    #[test]
    fn matches_all_attributes() {
        let p = Punctuation::new(vec![
            Pattern::Constant(Value::Int(1)),
            Pattern::Wildcard,
            Pattern::int_range(0, 100),
        ]);
        assert!(p.matches(&t((1, "anything", 50))));
        assert!(!p.matches(&t((2, "anything", 50))));
        assert!(!p.matches(&t((1, "anything", 500))));
    }

    #[test]
    fn try_matches_checks_arity() {
        let p = Punctuation::close_value(2, 0, 7i64);
        assert!(p.try_matches(&Tuple::of((7i64, "x", 1i64))).is_err());
        assert!(p.try_matches(&Tuple::of((7i64, "x"))).unwrap());
        // Infallible variant treats arity mismatch as non-match.
        assert!(!p.matches(&Tuple::of((7i64, "x", 1i64))));
    }

    #[test]
    fn and_is_attributewise() {
        let a = Punctuation::new(vec![Pattern::int_range(0, 10), Pattern::Wildcard]);
        let b = Punctuation::new(vec![Pattern::int_range(5, 20), Pattern::Constant(Value::str("k"))]);
        let c = a.and(&b).unwrap();
        assert_eq!(c.pattern(0), Some(&Pattern::int_range(5, 10)));
        assert_eq!(c.pattern(1), Some(&Pattern::Constant(Value::str("k"))));
    }

    #[test]
    fn and_rejects_arity_mismatch() {
        let a = Punctuation::new(vec![Pattern::Wildcard]);
        let b = Punctuation::new(vec![Pattern::Wildcard, Pattern::Wildcard]);
        assert!(a.and(&b).is_err());
    }

    #[test]
    fn empty_detection() {
        let p = Punctuation::new(vec![Pattern::Wildcard, Pattern::Empty]);
        assert!(p.is_empty());
        assert!(!Punctuation::new(vec![Pattern::Wildcard]).is_empty());
    }

    #[test]
    fn subsumption() {
        let narrow = Punctuation::close_value(2, 0, 5i64);
        let wide = Punctuation::on_attr(2, 0, Pattern::int_range(0, 10));
        assert!(narrow.subsumed_by(&wide));
        assert!(!wide.subsumed_by(&narrow));
        let empty = Punctuation::new(vec![Pattern::Empty, Pattern::Constant(Value::Int(1))]);
        assert!(empty.subsumed_by(&narrow));
    }

    #[test]
    fn paper_compatibility_assumption() {
        // Disjoint constants: compatible.
        let p1 = Punctuation::close_value(1, 0, 1i64);
        let p2 = Punctuation::close_value(1, 0, 2i64);
        assert!(p1.compatible_on(&p2, 0));
        // Nested ranges where earlier is contained in later: compatible.
        let narrow = Punctuation::on_attr(1, 0, Pattern::int_range(3, 4));
        let wide = Punctuation::on_attr(1, 0, Pattern::int_range(0, 10));
        assert!(narrow.compatible_on(&wide, 0));
        // Partially overlapping ranges: incompatible.
        let a = Punctuation::on_attr(1, 0, Pattern::int_range(0, 5));
        let b = Punctuation::on_attr(1, 0, Pattern::int_range(3, 8));
        assert!(!a.compatible_on(&b, 0));
    }

    #[test]
    fn display() {
        let p = Punctuation::new(vec![
            Pattern::Wildcard,
            Pattern::Constant(Value::Int(42)),
            Pattern::Range { lo: Bound::Inclusive(Value::Int(1)), hi: Bound::Unbounded },
            Pattern::Empty,
        ]);
        assert_eq!(p.to_string(), "<*, 42, [1,..), ->");
    }
}
