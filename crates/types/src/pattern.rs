//! The five punctuation pattern kinds of the paper (§2.2): wildcard,
//! constant, range, enumeration list and empty — with `matches` and `and`
//! (conjunction) semantics.
//!
//! A pattern describes a set of attribute values. The conjunction (`and`)
//! of any two patterns is again a pattern, which the paper relies on to
//! combine punctuations.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::TypeError;
use crate::value::Value;

/// One endpoint of a range pattern.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Bound {
    /// Unbounded endpoint.
    Unbounded,
    /// Inclusive endpoint.
    Inclusive(Value),
    /// Exclusive endpoint.
    Exclusive(Value),
}

impl Bound {
    /// True if `v` satisfies this bound interpreted as a *lower* bound.
    pub(crate) fn admits_from_below(&self, v: &Value) -> bool {
        match self {
            Bound::Unbounded => true,
            Bound::Inclusive(b) => v >= b,
            Bound::Exclusive(b) => v > b,
        }
    }

    /// True if `v` satisfies this bound interpreted as an *upper* bound.
    pub(crate) fn admits_from_above(&self, v: &Value) -> bool {
        match self {
            Bound::Unbounded => true,
            Bound::Inclusive(b) => v <= b,
            Bound::Exclusive(b) => v < b,
        }
    }

    /// Picks the tighter of two lower bounds.
    fn tighter_lower(a: &Bound, b: &Bound) -> Bound {
        match (a, b) {
            (Bound::Unbounded, x) | (x, Bound::Unbounded) => x.clone(),
            (Bound::Inclusive(x), Bound::Inclusive(y)) => {
                Bound::Inclusive(std::cmp::max(x, y).clone())
            }
            (Bound::Exclusive(x), Bound::Exclusive(y)) => {
                Bound::Exclusive(std::cmp::max(x, y).clone())
            }
            (Bound::Inclusive(x), Bound::Exclusive(y))
            | (Bound::Exclusive(y), Bound::Inclusive(x)) => {
                if y >= x {
                    Bound::Exclusive(y.clone())
                } else {
                    Bound::Inclusive(x.clone())
                }
            }
        }
    }

    /// Picks the tighter of two upper bounds.
    fn tighter_upper(a: &Bound, b: &Bound) -> Bound {
        match (a, b) {
            (Bound::Unbounded, x) | (x, Bound::Unbounded) => x.clone(),
            (Bound::Inclusive(x), Bound::Inclusive(y)) => {
                Bound::Inclusive(std::cmp::min(x, y).clone())
            }
            (Bound::Exclusive(x), Bound::Exclusive(y)) => {
                Bound::Exclusive(std::cmp::min(x, y).clone())
            }
            (Bound::Inclusive(x), Bound::Exclusive(y))
            | (Bound::Exclusive(y), Bound::Inclusive(x)) => {
                if y <= x {
                    Bound::Exclusive(y.clone())
                } else {
                    Bound::Inclusive(x.clone())
                }
            }
        }
    }
}

/// A punctuation pattern over a single attribute.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pattern {
    /// `*` — matches every value.
    Wildcard,
    /// A single constant — matches exactly that value.
    Constant(Value),
    /// A (possibly half-open) interval — matches values within the bounds.
    Range {
        /// Lower endpoint.
        lo: Bound,
        /// Upper endpoint.
        hi: Bound,
    },
    /// An enumeration list — matches any of the listed values.
    /// The list is kept sorted and deduplicated so equality is structural.
    In(Vec<Value>),
    /// `-` — the empty pattern; matches nothing.
    Empty,
}

impl Pattern {
    /// Builds a normalized enumeration-list pattern. A singleton list
    /// normalizes to a [`Pattern::Constant`] and an empty list to
    /// [`Pattern::Empty`].
    pub fn enumeration(mut values: Vec<Value>) -> Pattern {
        values.sort();
        values.dedup();
        match values.len() {
            0 => Pattern::Empty,
            1 => Pattern::Constant(values.pop().expect("len checked")),
            _ => Pattern::In(values),
        }
    }

    /// Builds a validated range pattern. Returns an error when the lower
    /// bound exceeds the upper one; a degenerate `[v, v]` normalizes to
    /// a constant.
    pub fn range(lo: Bound, hi: Bound) -> Result<Pattern, TypeError> {
        if let (Bound::Inclusive(a) | Bound::Exclusive(a), Bound::Inclusive(b) | Bound::Exclusive(b)) =
            (&lo, &hi)
        {
            if a > b {
                return Err(TypeError::InvalidRange(format!("lower bound {a} exceeds upper {b}")));
            }
            if a == b {
                return Ok(match (&lo, &hi) {
                    (Bound::Inclusive(v), Bound::Inclusive(_)) => Pattern::Constant(v.clone()),
                    // [v,v) or (v,v] or (v,v) are all empty.
                    _ => Pattern::Empty,
                });
            }
        }
        Ok(Pattern::Range { lo, hi })
    }

    /// Convenience: the inclusive integer range `[lo, hi]`.
    pub fn int_range(lo: i64, hi: i64) -> Pattern {
        Pattern::range(Bound::Inclusive(Value::Int(lo)), Bound::Inclusive(Value::Int(hi)))
            .expect("lo <= hi ranges are valid")
    }

    /// True if the pattern matches value `v`.
    ///
    /// `Null` values match only the wildcard: a punctuation about specific
    /// values never speaks about unknown ones.
    pub fn matches(&self, v: &Value) -> bool {
        match self {
            Pattern::Wildcard => true,
            Pattern::Empty => false,
            _ if v.is_null() => false,
            Pattern::Constant(c) => c == v,
            Pattern::Range { lo, hi } => lo.admits_from_below(v) && hi.admits_from_above(v),
            Pattern::In(vs) => vs.binary_search(v).is_ok(),
        }
    }

    /// True if this pattern matches no value at all.
    ///
    /// This is syntactic for `Empty` and enumeration lists; range emptiness
    /// is detected for fully-bounded ranges.
    pub fn is_empty(&self) -> bool {
        match self {
            Pattern::Empty => true,
            Pattern::In(vs) => vs.is_empty(),
            Pattern::Range { lo, hi } => match (lo, hi) {
                (
                    Bound::Inclusive(a) | Bound::Exclusive(a),
                    Bound::Inclusive(b) | Bound::Exclusive(b),
                ) => {
                    a > b
                        || (a == b
                            && !matches!((lo, hi), (Bound::Inclusive(_), Bound::Inclusive(_))))
                }
                _ => false,
            },
            _ => false,
        }
    }

    /// Conjunction of two patterns: the pattern matching exactly the values
    /// both operands match. Per the paper, "the *and* of any two
    /// punctuations is also a punctuation"; this is the attribute-wise core
    /// of that operation.
    pub fn and(&self, other: &Pattern) -> Pattern {
        use Pattern::*;
        match (self, other) {
            (Wildcard, p) | (p, Wildcard) => p.clone(),
            (Empty, _) | (_, Empty) => Empty,
            (Constant(a), Constant(b)) => {
                if a == b {
                    Constant(a.clone())
                } else {
                    Empty
                }
            }
            (Constant(c), p) | (p, Constant(c)) => {
                if p.matches(c) {
                    Constant(c.clone())
                } else {
                    Empty
                }
            }
            (In(xs), In(ys)) => {
                // Both sorted: linear merge intersection.
                let mut out = Vec::new();
                let (mut i, mut j) = (0, 0);
                while i < xs.len() && j < ys.len() {
                    match xs[i].cmp(&ys[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            out.push(xs[i].clone());
                            i += 1;
                            j += 1;
                        }
                    }
                }
                Pattern::enumeration(out)
            }
            (In(vs), r @ Range { .. }) | (r @ Range { .. }, In(vs)) => {
                Pattern::enumeration(vs.iter().filter(|v| r.matches(v)).cloned().collect())
            }
            (Range { lo: l1, hi: h1 }, Range { lo: l2, hi: h2 }) => {
                let lo = Bound::tighter_lower(l1, l2);
                let hi = Bound::tighter_upper(h1, h2);
                let candidate = Range { lo, hi };
                if candidate.is_empty() {
                    Empty
                } else {
                    candidate
                }
            }
        }
    }

    /// True if every value matched by `self` is also matched by `other`
    /// (i.e. `self ∧ other = self`). Used to check the paper's assumption
    /// that successive punctuations on the join attribute are either
    /// disjoint or nested.
    pub fn subsumed_by(&self, other: &Pattern) -> bool {
        self.and(other) == *self
    }

    /// True if the two patterns share no matching value
    /// (i.e. `self ∧ other = ∅`).
    pub fn disjoint_with(&self, other: &Pattern) -> bool {
        self.and(other).is_empty()
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pattern::Wildcard => f.write_str("*"),
            Pattern::Empty => f.write_str("-"),
            Pattern::Constant(v) => write!(f, "{v}"),
            Pattern::Range { lo, hi } => {
                match lo {
                    Bound::Unbounded => f.write_str("(.."),
                    Bound::Inclusive(v) => write!(f, "[{v}"),
                    Bound::Exclusive(v) => write!(f, "({v}"),
                }?;
                f.write_str(",")?;
                match hi {
                    Bound::Unbounded => f.write_str("..)"),
                    Bound::Inclusive(v) => write!(f, "{v}]"),
                    Bound::Exclusive(v) => write!(f, "{v})"),
                }
            }
            Pattern::In(vs) => {
                f.write_str("{")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(i: i64) -> Value {
        Value::Int(i)
    }

    #[test]
    fn wildcard_matches_everything() {
        assert!(Pattern::Wildcard.matches(&int(1)));
        assert!(Pattern::Wildcard.matches(&Value::str("x")));
        assert!(Pattern::Wildcard.matches(&Value::Null));
    }

    #[test]
    fn empty_matches_nothing() {
        assert!(!Pattern::Empty.matches(&int(1)));
        assert!(!Pattern::Empty.matches(&Value::Null));
        assert!(Pattern::Empty.is_empty());
    }

    #[test]
    fn constant_matches_exactly() {
        let p = Pattern::Constant(int(5));
        assert!(p.matches(&int(5)));
        assert!(!p.matches(&int(6)));
        assert!(!p.matches(&Value::Null));
        assert!(!p.is_empty());
    }

    #[test]
    fn range_matching_respects_bound_kinds() {
        let p = Pattern::Range {
            lo: Bound::Inclusive(int(10)),
            hi: Bound::Exclusive(int(20)),
        };
        assert!(p.matches(&int(10)));
        assert!(p.matches(&int(19)));
        assert!(!p.matches(&int(20)));
        assert!(!p.matches(&int(9)));
    }

    #[test]
    fn half_open_ranges() {
        let below = Pattern::Range { lo: Bound::Unbounded, hi: Bound::Inclusive(int(0)) };
        assert!(below.matches(&int(-100)));
        assert!(below.matches(&int(0)));
        assert!(!below.matches(&int(1)));
        let above = Pattern::Range { lo: Bound::Exclusive(int(0)), hi: Bound::Unbounded };
        assert!(above.matches(&int(1)));
        assert!(!above.matches(&int(0)));
    }

    #[test]
    fn range_constructor_validates() {
        assert!(Pattern::range(Bound::Inclusive(int(5)), Bound::Inclusive(int(1))).is_err());
        assert_eq!(
            Pattern::range(Bound::Inclusive(int(3)), Bound::Inclusive(int(3))).unwrap(),
            Pattern::Constant(int(3))
        );
        assert_eq!(
            Pattern::range(Bound::Inclusive(int(3)), Bound::Exclusive(int(3))).unwrap(),
            Pattern::Empty
        );
    }

    #[test]
    fn enumeration_normalizes() {
        assert_eq!(Pattern::enumeration(vec![]), Pattern::Empty);
        assert_eq!(Pattern::enumeration(vec![int(4)]), Pattern::Constant(int(4)));
        assert_eq!(
            Pattern::enumeration(vec![int(2), int(1), int(2)]),
            Pattern::In(vec![int(1), int(2)])
        );
    }

    #[test]
    fn enumeration_matches_members_only() {
        let p = Pattern::enumeration(vec![int(1), int(3), int(5)]);
        assert!(p.matches(&int(3)));
        assert!(!p.matches(&int(2)));
    }

    #[test]
    fn and_with_wildcard_is_identity() {
        let p = Pattern::int_range(1, 9);
        assert_eq!(Pattern::Wildcard.and(&p), p);
        assert_eq!(p.and(&Pattern::Wildcard), p);
    }

    #[test]
    fn and_with_empty_is_empty() {
        let p = Pattern::Constant(int(2));
        assert_eq!(p.and(&Pattern::Empty), Pattern::Empty);
        assert_eq!(Pattern::Empty.and(&p), Pattern::Empty);
    }

    #[test]
    fn and_constants() {
        assert_eq!(
            Pattern::Constant(int(1)).and(&Pattern::Constant(int(1))),
            Pattern::Constant(int(1))
        );
        assert_eq!(Pattern::Constant(int(1)).and(&Pattern::Constant(int(2))), Pattern::Empty);
    }

    #[test]
    fn and_constant_with_range() {
        let r = Pattern::int_range(0, 10);
        assert_eq!(r.and(&Pattern::Constant(int(5))), Pattern::Constant(int(5)));
        assert_eq!(r.and(&Pattern::Constant(int(50))), Pattern::Empty);
    }

    #[test]
    fn and_ranges_intersect() {
        let a = Pattern::int_range(0, 10);
        let b = Pattern::int_range(5, 20);
        assert_eq!(a.and(&b), Pattern::int_range(5, 10));
        let c = Pattern::int_range(11, 20);
        assert_eq!(a.and(&c), Pattern::Empty);
    }

    #[test]
    fn and_ranges_mixed_bound_kinds() {
        let a = Pattern::Range { lo: Bound::Inclusive(int(0)), hi: Bound::Exclusive(int(10)) };
        let b = Pattern::Range { lo: Bound::Exclusive(int(0)), hi: Bound::Inclusive(int(10)) };
        let c = a.and(&b);
        assert!(!c.matches(&int(0)));
        assert!(c.matches(&int(5)));
        assert!(!c.matches(&int(10)));
    }

    #[test]
    fn and_enumerations_intersect() {
        let a = Pattern::enumeration(vec![int(1), int(2), int(3)]);
        let b = Pattern::enumeration(vec![int(2), int(3), int(4)]);
        assert_eq!(a.and(&b), Pattern::In(vec![int(2), int(3)]));
        let c = Pattern::enumeration(vec![int(9)]);
        assert_eq!(a.and(&c), Pattern::Empty);
    }

    #[test]
    fn and_enumeration_with_range_filters() {
        let e = Pattern::enumeration(vec![int(1), int(5), int(9)]);
        let r = Pattern::int_range(2, 8);
        assert_eq!(e.and(&r), Pattern::Constant(int(5)));
    }

    #[test]
    fn subsumption_and_disjointness() {
        let narrow = Pattern::int_range(3, 5);
        let wide = Pattern::int_range(0, 10);
        assert!(narrow.subsumed_by(&wide));
        assert!(!wide.subsumed_by(&narrow));
        assert!(narrow.disjoint_with(&Pattern::int_range(6, 9)));
        assert!(!narrow.disjoint_with(&wide));
        assert!(Pattern::Constant(int(1)).subsumed_by(&Pattern::Wildcard));
    }

    #[test]
    fn range_emptiness_detection() {
        let empty = Pattern::Range { lo: Bound::Exclusive(int(3)), hi: Bound::Inclusive(int(3)) };
        assert!(empty.is_empty());
        let ok = Pattern::int_range(3, 3);
        assert!(!ok.is_empty());
        let unbounded = Pattern::Range { lo: Bound::Unbounded, hi: Bound::Unbounded };
        assert!(!unbounded.is_empty());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Pattern::Wildcard.to_string(), "*");
        assert_eq!(Pattern::Empty.to_string(), "-");
        assert_eq!(Pattern::Constant(int(7)).to_string(), "7");
        assert_eq!(Pattern::int_range(1, 2).to_string(), "[1,2]");
        assert_eq!(
            Pattern::enumeration(vec![int(2), int(1)]).to_string(),
            "{1,2}"
        );
    }

    #[test]
    fn string_patterns() {
        let p = Pattern::Constant(Value::str("item-42"));
        assert!(p.matches(&Value::str("item-42")));
        assert!(!p.matches(&Value::str("item-43")));
        let r = Pattern::Range {
            lo: Bound::Inclusive(Value::str("a")),
            hi: Bound::Exclusive(Value::str("m")),
        };
        assert!(r.matches(&Value::str("hello")));
        assert!(!r.matches(&Value::str("zebra")));
    }
}
