//! Punctuation sets with a fast `setMatch` on a designated join attribute.
//!
//! The paper's purge rule (§2.2, eq. 1) tests `setMatch(t, PS(T))` — does
//! *any* punctuation seen so far match tuple `t`? A join evaluates this for
//! every arriving tuple (on-the-fly drop) and for every stored tuple during
//! a purge scan, so the common case — constant patterns on the join
//! attribute — is indexed in a hash map for O(1) lookup, while range and
//! enumeration patterns fall back to a linear scan.

use std::collections::HashMap;
use std::fmt;

use crate::pattern::Pattern;
use crate::punctuation::Punctuation;
use crate::tuple::Tuple;
use crate::value::Value;

/// Stable identifier of a punctuation within a [`PunctuationSet`].
///
/// Ids are assigned in arrival order and never reused, which the paper's
/// punctuation index relies on ("the pid of the tuple is always set as the
/// pid of the *first arrived* punctuation found to be matched").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PunctId(pub u64);

impl fmt::Display for PunctId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// An entry in the set.
#[derive(Debug, Clone)]
struct Entry {
    id: PunctId,
    punctuation: Punctuation,
    /// Whether the entry has been logically removed (after propagation).
    removed: bool,
}

/// A collection of punctuations over one stream, indexed for fast
/// `set_match` on the stream's join attribute.
///
/// ```
/// use punct_types::{Punctuation, PunctuationSet, Tuple};
/// let mut ps = PunctuationSet::new(0);
/// let id = ps.insert(Punctuation::close_value(2, 0, 7i64));
/// assert_eq!(ps.set_match(&Tuple::of((7i64, 0i64))), Some(id));
/// assert_eq!(ps.set_match(&Tuple::of((8i64, 0i64))), None);
/// ```
#[derive(Debug, Clone)]
pub struct PunctuationSet {
    /// Index of the join attribute within the stream schema.
    attr: usize,
    /// All punctuations in arrival order (tombstoned on removal).
    entries: Vec<Entry>,
    /// Arrival position by id (dense: id.0 == index into `entries`).
    next_id: u64,
    /// Constant-pattern fast path: join value -> id of the first
    /// punctuation closing it.
    constants: HashMap<Value, PunctId>,
    /// Ids of punctuations whose join-attribute pattern is not a constant
    /// (wildcard / range / enumeration / empty), scanned linearly.
    non_constant: Vec<PunctId>,
    /// Number of live (non-removed) entries.
    live: usize,
}

impl PunctuationSet {
    /// Creates an empty set; `attr` is the join attribute index used by
    /// the fast-path index.
    pub fn new(attr: usize) -> PunctuationSet {
        PunctuationSet {
            attr,
            entries: Vec::new(),
            next_id: 0,
            constants: HashMap::new(),
            non_constant: Vec::new(),
            live: 0,
        }
    }

    /// The join attribute this set indexes on.
    pub fn join_attr(&self) -> usize {
        self.attr
    }

    /// Number of live punctuations.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live punctuations remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total punctuations ever inserted (live + removed).
    pub fn total_inserted(&self) -> usize {
        self.entries.len()
    }

    /// Inserts a punctuation, returning its id.
    pub fn insert(&mut self, punctuation: Punctuation) -> PunctId {
        let id = PunctId(self.next_id);
        self.next_id += 1;
        match punctuation.pattern(self.attr) {
            Some(Pattern::Constant(v)) => {
                // Keep the first-arrived id for a value, matching pid
                // assignment semantics.
                self.constants.entry(v.clone()).or_insert(id);
            }
            _ => self.non_constant.push(id),
        }
        self.entries.push(Entry { id, punctuation, removed: false });
        self.live += 1;
        id
    }

    /// Looks up a punctuation by id (live entries only).
    pub fn get(&self, id: PunctId) -> Option<&Punctuation> {
        self.entries
            .get(id.0 as usize)
            .filter(|e| !e.removed)
            .map(|e| &e.punctuation)
    }

    /// Logically removes a punctuation (after it has been propagated).
    /// Returns true if it was live.
    pub fn remove(&mut self, id: PunctId) -> bool {
        let Some(entry) = self.entries.get_mut(id.0 as usize) else {
            return false;
        };
        if entry.removed {
            return false;
        }
        entry.removed = true;
        self.live -= 1;
        if let Some(Pattern::Constant(v)) = entry.punctuation.pattern(self.attr) {
            if self.constants.get(v) == Some(&id) {
                self.constants.remove(v);
            }
        } else {
            self.non_constant.retain(|x| *x != id);
        }
        true
    }

    /// The paper's `setMatch(t, PS)`: returns the id of the **first
    /// arrived** live punctuation matching tuple `t`, if any.
    pub fn set_match(&self, t: &Tuple) -> Option<PunctId> {
        let mut best: Option<PunctId> = None;
        // Fast path: constant pattern on the join attribute.
        if let Some(v) = t.get(self.attr) {
            if let Some(&id) = self.constants.get(v) {
                if self.entry_matches(id, t) {
                    best = Some(id);
                }
            }
        }
        // Non-constant punctuations may have arrived earlier; scan them.
        for &id in &self.non_constant {
            if best.is_some_and(|b| b <= id) {
                break;
            }
            if self.entry_matches(id, t) {
                best = Some(id);
            }
        }
        best
    }

    /// Like [`set_match`](Self::set_match) but only consults punctuations
    /// with `id > after`, for incremental index building.
    pub fn set_match_after(&self, t: &Tuple, after: PunctId) -> Option<PunctId> {
        let mut best: Option<PunctId> = None;
        if let Some(v) = t.get(self.attr) {
            if let Some(&id) = self.constants.get(v) {
                if id > after && self.entry_matches(id, t) {
                    best = Some(id);
                }
            }
        }
        for &id in &self.non_constant {
            if id <= after {
                continue;
            }
            if best.is_some_and(|b| b <= id) {
                break;
            }
            if self.entry_matches(id, t) {
                best = Some(id);
            }
        }
        best
    }

    /// Quick check: does any live punctuation match a tuple whose join
    /// attribute equals `v`? Considers only the join attribute, so it is a
    /// *necessary* condition (exact when all other patterns are wildcards,
    /// which is the join-attribute punctuation shape the paper exploits).
    pub fn covers_value(&self, v: &Value) -> bool {
        if self.constants.contains_key(v) {
            return true;
        }
        self.non_constant.iter().any(|id| {
            self.entries[id.0 as usize]
                .punctuation
                .pattern(self.attr)
                .is_some_and(|p| p.matches(v))
        })
    }

    /// Iterates over live punctuations in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = (PunctId, &Punctuation)> {
        self.entries
            .iter()
            .filter(|e| !e.removed)
            .map(|e| (e.id, &e.punctuation))
    }

    /// Iterates over live punctuations with `id > after`, in arrival order.
    pub fn iter_after(&self, after: PunctId) -> impl Iterator<Item = (PunctId, &Punctuation)> {
        self.entries
            .iter()
            .filter(move |e| !e.removed && e.id > after)
            .map(|e| (e.id, &e.punctuation))
    }

    fn entry_matches(&self, id: PunctId, t: &Tuple) -> bool {
        let entry = &self.entries[id.0 as usize];
        !entry.removed && entry.punctuation.matches(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(v: i64) -> Punctuation {
        Punctuation::close_value(2, 0, v)
    }

    fn tup(k: i64, x: i64) -> Tuple {
        Tuple::of((k, x))
    }

    #[test]
    fn insert_and_len() {
        let mut ps = PunctuationSet::new(0);
        assert!(ps.is_empty());
        let a = ps.insert(close(1));
        let b = ps.insert(close(2));
        assert_eq!(ps.len(), 2);
        assert!(a < b);
        assert_eq!(ps.total_inserted(), 2);
    }

    #[test]
    fn set_match_constant_fast_path() {
        let mut ps = PunctuationSet::new(0);
        let id = ps.insert(close(7));
        assert_eq!(ps.set_match(&tup(7, 0)), Some(id));
        assert_eq!(ps.set_match(&tup(8, 0)), None);
    }

    #[test]
    fn set_match_range_pattern() {
        let mut ps = PunctuationSet::new(0);
        let id = ps.insert(Punctuation::on_attr(2, 0, Pattern::int_range(10, 19)));
        assert_eq!(ps.set_match(&tup(15, 0)), Some(id));
        assert_eq!(ps.set_match(&tup(20, 0)), None);
    }

    #[test]
    fn set_match_returns_first_arrived() {
        let mut ps = PunctuationSet::new(0);
        let range = ps.insert(Punctuation::on_attr(2, 0, Pattern::int_range(0, 100)));
        let _constant = ps.insert(close(5));
        // Both match key 5; the range arrived first.
        assert_eq!(ps.set_match(&tup(5, 0)), Some(range));
    }

    #[test]
    fn set_match_prefers_earlier_constant_over_later_range() {
        let mut ps = PunctuationSet::new(0);
        let constant = ps.insert(close(5));
        let _range = ps.insert(Punctuation::on_attr(2, 0, Pattern::int_range(0, 100)));
        assert_eq!(ps.set_match(&tup(5, 0)), Some(constant));
    }

    #[test]
    fn set_match_after_skips_early_ids() {
        let mut ps = PunctuationSet::new(0);
        let a = ps.insert(close(5));
        let b = ps.insert(Punctuation::on_attr(2, 0, Pattern::int_range(0, 100)));
        assert_eq!(ps.set_match_after(&tup(5, 0), a), Some(b));
        assert_eq!(ps.set_match_after(&tup(5, 0), b), None);
    }

    #[test]
    fn remove_makes_punctuation_invisible() {
        let mut ps = PunctuationSet::new(0);
        let id = ps.insert(close(3));
        assert!(ps.remove(id));
        assert!(!ps.remove(id));
        assert_eq!(ps.set_match(&tup(3, 0)), None);
        assert_eq!(ps.len(), 0);
        assert!(ps.get(id).is_none());
    }

    #[test]
    fn remove_nonconstant() {
        let mut ps = PunctuationSet::new(0);
        let id = ps.insert(Punctuation::on_attr(2, 0, Pattern::int_range(0, 9)));
        assert!(ps.remove(id));
        assert_eq!(ps.set_match(&tup(5, 0)), None);
    }

    #[test]
    fn duplicate_constants_keep_first_id() {
        let mut ps = PunctuationSet::new(0);
        let first = ps.insert(close(9));
        let _second = ps.insert(close(9));
        assert_eq!(ps.set_match(&tup(9, 0)), Some(first));
        // Removing the first makes the map drop the value; second is only
        // reachable by linear means — covers_value reflects the map.
        ps.remove(first);
        // The second constant punctuation still exists but the constant
        // index pointed at the first; set_match now misses it. This is the
        // documented trade-off: duplicate constant punctuations are
        // redundant by the paper's stream well-formedness assumption.
        assert_eq!(ps.len(), 1);
    }

    #[test]
    fn covers_value() {
        let mut ps = PunctuationSet::new(0);
        ps.insert(close(1));
        ps.insert(Punctuation::on_attr(2, 0, Pattern::int_range(10, 20)));
        assert!(ps.covers_value(&Value::Int(1)));
        assert!(ps.covers_value(&Value::Int(15)));
        assert!(!ps.covers_value(&Value::Int(2)));
    }

    #[test]
    fn iter_orders_by_arrival() {
        let mut ps = PunctuationSet::new(0);
        let a = ps.insert(close(1));
        let b = ps.insert(close(2));
        let c = ps.insert(close(3));
        ps.remove(b);
        let ids: Vec<PunctId> = ps.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![a, c]);
        let ids: Vec<PunctId> = ps.iter_after(a).map(|(id, _)| id).collect();
        assert_eq!(ids, vec![c]);
    }

    #[test]
    fn punctuation_with_extra_attrs_still_checked_fully() {
        // A punctuation constraining both attributes: the fast path must
        // still verify the full punctuation.
        let mut ps = PunctuationSet::new(0);
        let p = Punctuation::new(vec![
            Pattern::Constant(Value::Int(4)),
            Pattern::Constant(Value::Int(99)),
        ]);
        let id = ps.insert(p);
        assert_eq!(ps.set_match(&tup(4, 99)), Some(id));
        assert_eq!(ps.set_match(&tup(4, 98)), None);
    }
}
