//! Punctuation sets with a fast `setMatch` on a designated join attribute.
//!
//! The paper's purge rule (§2.2, eq. 1) tests `setMatch(t, PS(T))` — does
//! *any* punctuation seen so far match tuple `t`? A join evaluates this for
//! every arriving tuple (on-the-fly drop) and for every stored tuple during
//! a purge scan, so every pattern shape on the join attribute is indexed:
//! constants in a hash map (O(1)), enumeration-list members in a hash map
//! from member value to punctuation ids, and range patterns in a sorted
//! interval list answering stabbing queries by binary search. Only
//! wildcard (and schema-less) punctuations fall back to a linear scan.

use std::cmp::Ordering;
use std::collections::HashMap;
use std::fmt;

use crate::pattern::{Bound, Pattern};
use crate::punctuation::Punctuation;
use crate::tuple::Tuple;
use crate::value::Value;

/// Stable identifier of a punctuation within a [`PunctuationSet`].
///
/// Ids are assigned in arrival order and never reused, which the paper's
/// punctuation index relies on ("the pid of the tuple is always set as the
/// pid of the *first arrived* punctuation found to be matched").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PunctId(pub u64);

impl fmt::Display for PunctId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// An entry in the set.
#[derive(Debug, Clone, PartialEq)]
struct Entry {
    id: PunctId,
    punctuation: Punctuation,
    /// Whether the entry has been logically removed (after propagation).
    removed: bool,
}

/// Orders two *lower* bounds by the values they admit: `a <= b` iff the
/// set `a` admits contains the set `b` admits. Sorting by this key gives
/// the prefix property a stabbing query needs: once a lower bound stops
/// admitting `v`, no later one admits it either.
fn cmp_lower(a: &Bound, b: &Bound) -> Ordering {
    match (a, b) {
        (Bound::Unbounded, Bound::Unbounded) => Ordering::Equal,
        (Bound::Unbounded, _) => Ordering::Less,
        (_, Bound::Unbounded) => Ordering::Greater,
        (Bound::Inclusive(x), Bound::Inclusive(y))
        | (Bound::Exclusive(x), Bound::Exclusive(y)) => x.cmp(y),
        // At the same value an inclusive lower bound admits more.
        (Bound::Inclusive(x), Bound::Exclusive(y)) => x.cmp(y).then(Ordering::Less),
        (Bound::Exclusive(x), Bound::Inclusive(y)) => x.cmp(y).then(Ordering::Greater),
    }
}

/// Orders two *upper* bounds by looseness: `a >= b` iff `a` admits every
/// value `b` admits. Used for the prefix-loosest array.
fn cmp_upper(a: &Bound, b: &Bound) -> Ordering {
    match (a, b) {
        (Bound::Unbounded, Bound::Unbounded) => Ordering::Equal,
        (Bound::Unbounded, _) => Ordering::Greater,
        (_, Bound::Unbounded) => Ordering::Less,
        (Bound::Inclusive(x), Bound::Inclusive(y))
        | (Bound::Exclusive(x), Bound::Exclusive(y)) => x.cmp(y),
        // At the same value an inclusive upper bound admits more.
        (Bound::Inclusive(x), Bound::Exclusive(y)) => x.cmp(y).then(Ordering::Greater),
        (Bound::Exclusive(x), Bound::Inclusive(y)) => x.cmp(y).then(Ordering::Less),
    }
}

/// One range punctuation in the interval index.
#[derive(Debug, Clone, PartialEq)]
struct RangeEntry {
    lo: Bound,
    hi: Bound,
    id: PunctId,
}

/// A sorted interval list answering "which range punctuations admit value
/// `v`" stabbing queries.
///
/// Entries are sorted by lower bound (loosest first), and
/// `prefix_loosest_hi[i]` holds the loosest upper bound among
/// `entries[..=i]`. A query binary-searches the last entry whose lower
/// bound admits `v`, then walks left collecting matches; it stops as soon
/// as the prefix-loosest upper bound no longer admits `v` — at that point
/// no earlier entry can match. With the disjoint-or-nested range
/// punctuations the paper assumes, a query touches O(log n + matches)
/// entries.
#[derive(Debug, Clone, Default, PartialEq)]
struct RangeIndex {
    entries: Vec<RangeEntry>,
    prefix_loosest_hi: Vec<Bound>,
}

impl RangeIndex {
    fn insert(&mut self, lo: Bound, hi: Bound, id: PunctId) {
        let pos = self.entries.partition_point(|e| cmp_lower(&e.lo, &lo) != Ordering::Greater);
        self.entries.insert(pos, RangeEntry { lo, hi, id });
        self.rebuild_prefix(pos);
    }

    /// Removes the entry for `id`. Returns true when it was present.
    fn remove(&mut self, id: PunctId) -> bool {
        let Some(pos) = self.entries.iter().position(|e| e.id == id) else {
            return false;
        };
        self.entries.remove(pos);
        self.rebuild_prefix(pos);
        true
    }

    /// Recomputes `prefix_loosest_hi` from `from` onward.
    fn rebuild_prefix(&mut self, from: usize) {
        self.prefix_loosest_hi.truncate(from);
        for i in from..self.entries.len() {
            let hi = &self.entries[i].hi;
            let loosest = match self.prefix_loosest_hi.last() {
                Some(prev) if cmp_upper(prev, hi) == Ordering::Greater => prev.clone(),
                _ => hi.clone(),
            };
            self.prefix_loosest_hi.push(loosest);
        }
    }

    /// Calls `f` with the id of every entry whose range admits `v`.
    fn stab(&self, v: &Value, mut f: impl FnMut(PunctId)) {
        let end = self.entries.partition_point(|e| e.lo.admits_from_below(v));
        for i in (0..end).rev() {
            if !self.prefix_loosest_hi[i].admits_from_above(v) {
                break;
            }
            if self.entries[i].hi.admits_from_above(v) {
                f(self.entries[i].id);
            }
        }
    }
}

/// A collection of punctuations over one stream, indexed for fast
/// `set_match` on the stream's join attribute.
///
/// ```
/// use punct_types::{Punctuation, PunctuationSet, Tuple};
/// let mut ps = PunctuationSet::new(0);
/// let id = ps.insert(Punctuation::close_value(2, 0, 7i64));
/// assert_eq!(ps.set_match(&Tuple::of((7i64, 0i64))), Some(id));
/// assert_eq!(ps.set_match(&Tuple::of((8i64, 0i64))), None);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PunctuationSet {
    /// Index of the join attribute within the stream schema.
    attr: usize,
    /// All punctuations in arrival order (tombstoned on removal).
    entries: Vec<Entry>,
    /// Arrival position by id (dense: id.0 == index into `entries`).
    next_id: u64,
    /// Constant-pattern fast path: join value -> id of the first
    /// punctuation closing it.
    constants: HashMap<Value, PunctId>,
    /// Enumeration-list fast path: member value -> ascending ids of the
    /// `In` punctuations listing it.
    members: HashMap<Value, Vec<PunctId>>,
    /// Range patterns, binary-searchable by stabbing value.
    ranges: RangeIndex,
    /// Ids of punctuations the value indexes cannot answer (wildcard on
    /// the join attribute, or no pattern for it), scanned linearly.
    unindexed: Vec<PunctId>,
    /// Number of live (non-removed) entries.
    live: usize,
}

impl PunctuationSet {
    /// Creates an empty set; `attr` is the join attribute index used by
    /// the fast-path index.
    pub fn new(attr: usize) -> PunctuationSet {
        PunctuationSet {
            attr,
            entries: Vec::new(),
            next_id: 0,
            constants: HashMap::new(),
            members: HashMap::new(),
            ranges: RangeIndex::default(),
            unindexed: Vec::new(),
            live: 0,
        }
    }

    /// The join attribute this set indexes on.
    pub fn join_attr(&self) -> usize {
        self.attr
    }

    /// Number of live punctuations.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live punctuations remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total punctuations ever inserted (live + removed).
    pub fn total_inserted(&self) -> usize {
        self.entries.len()
    }

    /// Inserts a punctuation, returning its id.
    pub fn insert(&mut self, punctuation: Punctuation) -> PunctId {
        let id = PunctId(self.next_id);
        self.next_id += 1;
        match punctuation.pattern(self.attr) {
            Some(Pattern::Constant(v)) => {
                // Keep the first-arrived id for a value, matching pid
                // assignment semantics.
                self.constants.entry(v.clone()).or_insert(id);
            }
            Some(Pattern::In(vs)) => {
                for v in vs {
                    // Ids ascend, so pushing keeps each list sorted.
                    self.members.entry(v.clone()).or_default().push(id);
                }
            }
            Some(Pattern::Range { lo, hi }) => {
                self.ranges.insert(lo.clone(), hi.clone(), id);
            }
            // Empty matches nothing: not findable through any index, and
            // nothing to scan either.
            Some(Pattern::Empty) => {}
            _ => self.unindexed.push(id),
        }
        self.entries.push(Entry { id, punctuation, removed: false });
        self.live += 1;
        id
    }

    /// Looks up a punctuation by id (live entries only).
    pub fn get(&self, id: PunctId) -> Option<&Punctuation> {
        self.entries
            .get(id.0 as usize)
            .filter(|e| !e.removed)
            .map(|e| &e.punctuation)
    }

    /// Logically removes a punctuation (after it has been propagated).
    /// Returns true if it was live.
    pub fn remove(&mut self, id: PunctId) -> bool {
        let Some(entry) = self.entries.get_mut(id.0 as usize) else {
            return false;
        };
        if entry.removed {
            return false;
        }
        entry.removed = true;
        self.live -= 1;
        match entry.punctuation.pattern(self.attr) {
            Some(Pattern::Constant(v)) => {
                if self.constants.get(v) == Some(&id) {
                    self.constants.remove(v);
                }
            }
            Some(Pattern::In(vs)) => {
                for v in vs {
                    if let Some(ids) = self.members.get_mut(v) {
                        ids.retain(|x| *x != id);
                        if ids.is_empty() {
                            self.members.remove(v);
                        }
                    }
                }
            }
            Some(Pattern::Range { .. }) => {
                self.ranges.remove(id);
            }
            Some(Pattern::Empty) => {}
            _ => self.unindexed.retain(|x| *x != id),
        }
        true
    }

    /// The paper's `setMatch(t, PS)`: returns the id of the **first
    /// arrived** live punctuation matching tuple `t`, if any.
    pub fn set_match(&self, t: &Tuple) -> Option<PunctId> {
        self.match_above(t, None)
    }

    /// Like [`set_match`](Self::set_match) but only consults punctuations
    /// with `id > after`, for incremental index building.
    pub fn set_match_after(&self, t: &Tuple, after: PunctId) -> Option<PunctId> {
        self.match_above(t, Some(after))
    }

    /// Minimum matching id above the optional floor. Every index yields
    /// *candidates* on the join attribute alone; each is verified against
    /// the full punctuation before it can win.
    fn match_above(&self, t: &Tuple, after: Option<PunctId>) -> Option<PunctId> {
        let mut best: Option<PunctId> = None;
        let consider = |id: PunctId, best: &mut Option<PunctId>| {
            if after.is_some_and(|a| id <= a) {
                return;
            }
            if best.is_some_and(|b| b <= id) {
                return;
            }
            if self.entry_matches(id, t) {
                *best = Some(id);
            }
        };
        if let Some(v) = t.get(self.attr).filter(|v| !v.is_null()) {
            if let Some(&id) = self.constants.get(v) {
                consider(id, &mut best);
            }
            if let Some(ids) = self.members.get(v) {
                for &id in ids {
                    consider(id, &mut best);
                }
            }
            self.ranges.stab(v, |id| consider(id, &mut best));
        }
        for &id in &self.unindexed {
            if best.is_some_and(|b| b <= id) {
                break;
            }
            consider(id, &mut best);
        }
        best
    }

    /// Quick check: does any live punctuation match a tuple whose join
    /// attribute equals `v`? Considers only the join attribute, so it is a
    /// *necessary* condition (exact when all other patterns are wildcards,
    /// which is the join-attribute punctuation shape the paper exploits).
    pub fn covers_value(&self, v: &Value) -> bool {
        if self.constants.contains_key(v) {
            return true;
        }
        if !v.is_null() {
            if self.members.contains_key(v) {
                return true;
            }
            let mut stabbed = false;
            self.ranges.stab(v, |_| stabbed = true);
            if stabbed {
                return true;
            }
        }
        self.unindexed.iter().any(|id| {
            self.entries[id.0 as usize]
                .punctuation
                .pattern(self.attr)
                .is_some_and(|p| p.matches(v))
        })
    }

    /// Iterates over live punctuations in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = (PunctId, &Punctuation)> {
        self.entries
            .iter()
            .filter(|e| !e.removed)
            .map(|e| (e.id, &e.punctuation))
    }

    /// Iterates over live punctuations with `id > after`, in arrival order.
    pub fn iter_after(&self, after: PunctId) -> impl Iterator<Item = (PunctId, &Punctuation)> {
        self.entries
            .iter()
            .filter(move |e| !e.removed && e.id > after)
            .map(|e| (e.id, &e.punctuation))
    }

    fn entry_matches(&self, id: PunctId, t: &Tuple) -> bool {
        let entry = &self.entries[id.0 as usize];
        !entry.removed && entry.punctuation.matches(t)
    }

    /// Snapshot view for durable checkpointing: every entry ever
    /// inserted — tombstones included — in id order. Replaying
    /// [`insert`](Self::insert) in this order and then
    /// [`remove`](Self::remove) for the flagged ids reproduces the
    /// members, range, and unindexed indexes exactly (ids are dense and
    /// arrival-ordered; removals only delete).
    pub fn snapshot_entries(&self) -> impl Iterator<Item = (&Punctuation, bool)> {
        self.entries.iter().map(|e| (&e.punctuation, e.removed))
    }

    /// Snapshot view of the constant-pattern index, sorted by value for
    /// deterministic encoding. Carried explicitly because the index is
    /// *timing*-dependent, not derivable from the final entries: a
    /// remove interleaved between duplicate constants decides which id
    /// (if any) the map keeps (see `duplicate_constants_keep_first_id`).
    pub fn snapshot_constants(&self) -> Vec<(Value, PunctId)> {
        let mut out: Vec<(Value, PunctId)> =
            self.constants.iter().map(|(v, id)| (v.clone(), *id)).collect();
        out.sort();
        out
    }

    /// Rebuilds a set from its snapshot: entries (with tombstone flags)
    /// in id order plus the constant-index image. Inverse of
    /// [`snapshot_entries`](Self::snapshot_entries) /
    /// [`snapshot_constants`](Self::snapshot_constants); the result
    /// compares equal to the snapshotted set.
    pub fn restore(
        attr: usize,
        entries: Vec<(Punctuation, bool)>,
        constants: Vec<(Value, PunctId)>,
    ) -> PunctuationSet {
        let mut set = PunctuationSet::new(attr);
        let mut dead = Vec::new();
        for (punctuation, removed) in entries {
            let id = set.insert(punctuation);
            if removed {
                dead.push(id);
            }
        }
        for id in dead {
            set.remove(id);
        }
        set.constants = constants.into_iter().collect();
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(v: i64) -> Punctuation {
        Punctuation::close_value(2, 0, v)
    }

    fn tup(k: i64, x: i64) -> Tuple {
        Tuple::of((k, x))
    }

    #[test]
    fn insert_and_len() {
        let mut ps = PunctuationSet::new(0);
        assert!(ps.is_empty());
        let a = ps.insert(close(1));
        let b = ps.insert(close(2));
        assert_eq!(ps.len(), 2);
        assert!(a < b);
        assert_eq!(ps.total_inserted(), 2);
    }

    #[test]
    fn set_match_constant_fast_path() {
        let mut ps = PunctuationSet::new(0);
        let id = ps.insert(close(7));
        assert_eq!(ps.set_match(&tup(7, 0)), Some(id));
        assert_eq!(ps.set_match(&tup(8, 0)), None);
    }

    #[test]
    fn set_match_range_pattern() {
        let mut ps = PunctuationSet::new(0);
        let id = ps.insert(Punctuation::on_attr(2, 0, Pattern::int_range(10, 19)));
        assert_eq!(ps.set_match(&tup(15, 0)), Some(id));
        assert_eq!(ps.set_match(&tup(20, 0)), None);
    }

    #[test]
    fn set_match_returns_first_arrived() {
        let mut ps = PunctuationSet::new(0);
        let range = ps.insert(Punctuation::on_attr(2, 0, Pattern::int_range(0, 100)));
        let _constant = ps.insert(close(5));
        // Both match key 5; the range arrived first.
        assert_eq!(ps.set_match(&tup(5, 0)), Some(range));
    }

    #[test]
    fn set_match_prefers_earlier_constant_over_later_range() {
        let mut ps = PunctuationSet::new(0);
        let constant = ps.insert(close(5));
        let _range = ps.insert(Punctuation::on_attr(2, 0, Pattern::int_range(0, 100)));
        assert_eq!(ps.set_match(&tup(5, 0)), Some(constant));
    }

    #[test]
    fn set_match_after_skips_early_ids() {
        let mut ps = PunctuationSet::new(0);
        let a = ps.insert(close(5));
        let b = ps.insert(Punctuation::on_attr(2, 0, Pattern::int_range(0, 100)));
        assert_eq!(ps.set_match_after(&tup(5, 0), a), Some(b));
        assert_eq!(ps.set_match_after(&tup(5, 0), b), None);
    }

    #[test]
    fn remove_makes_punctuation_invisible() {
        let mut ps = PunctuationSet::new(0);
        let id = ps.insert(close(3));
        assert!(ps.remove(id));
        assert!(!ps.remove(id));
        assert_eq!(ps.set_match(&tup(3, 0)), None);
        assert_eq!(ps.len(), 0);
        assert!(ps.get(id).is_none());
    }

    #[test]
    fn remove_nonconstant() {
        let mut ps = PunctuationSet::new(0);
        let id = ps.insert(Punctuation::on_attr(2, 0, Pattern::int_range(0, 9)));
        assert!(ps.remove(id));
        assert_eq!(ps.set_match(&tup(5, 0)), None);
    }

    #[test]
    fn duplicate_constants_keep_first_id() {
        let mut ps = PunctuationSet::new(0);
        let first = ps.insert(close(9));
        let _second = ps.insert(close(9));
        assert_eq!(ps.set_match(&tup(9, 0)), Some(first));
        // Removing the first makes the map drop the value; second is only
        // reachable by linear means — covers_value reflects the map.
        ps.remove(first);
        // The second constant punctuation still exists but the constant
        // index pointed at the first; set_match now misses it. This is the
        // documented trade-off: duplicate constant punctuations are
        // redundant by the paper's stream well-formedness assumption.
        assert_eq!(ps.len(), 1);
    }

    #[test]
    fn covers_value() {
        let mut ps = PunctuationSet::new(0);
        ps.insert(close(1));
        ps.insert(Punctuation::on_attr(2, 0, Pattern::int_range(10, 20)));
        assert!(ps.covers_value(&Value::Int(1)));
        assert!(ps.covers_value(&Value::Int(15)));
        assert!(!ps.covers_value(&Value::Int(2)));
    }

    #[test]
    fn iter_orders_by_arrival() {
        let mut ps = PunctuationSet::new(0);
        let a = ps.insert(close(1));
        let b = ps.insert(close(2));
        let c = ps.insert(close(3));
        ps.remove(b);
        let ids: Vec<PunctId> = ps.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![a, c]);
        let ids: Vec<PunctId> = ps.iter_after(a).map(|(id, _)| id).collect();
        assert_eq!(ids, vec![c]);
    }

    #[test]
    fn many_disjoint_ranges_stab_correctly() {
        // 100 disjoint ranges [10k, 10k+9]; every value must find exactly
        // its own range through the interval index.
        let mut ps = PunctuationSet::new(0);
        let ids: Vec<PunctId> = (0..100)
            .map(|k| ps.insert(Punctuation::on_attr(2, 0, Pattern::int_range(10 * k, 10 * k + 9))))
            .collect();
        for k in 0..100 {
            assert_eq!(ps.set_match(&tup(10 * k + 5, 0)), Some(ids[k as usize]));
        }
        assert_eq!(ps.set_match(&tup(1000, 0)), None);
        assert_eq!(ps.set_match(&tup(-1, 0)), None);
    }

    #[test]
    fn overlapping_ranges_return_first_arrived() {
        let mut ps = PunctuationSet::new(0);
        let wide = ps.insert(Punctuation::on_attr(2, 0, Pattern::int_range(0, 100)));
        let narrow = ps.insert(Punctuation::on_attr(2, 0, Pattern::int_range(40, 60)));
        assert_eq!(ps.set_match(&tup(50, 0)), Some(wide));
        assert_eq!(ps.set_match_after(&tup(50, 0), wide), Some(narrow));
        assert_eq!(ps.set_match(&tup(30, 0)), Some(wide));
        // Nested the other way round: narrow arrives first.
        let mut ps = PunctuationSet::new(0);
        let narrow = ps.insert(Punctuation::on_attr(2, 0, Pattern::int_range(40, 60)));
        let _wide = ps.insert(Punctuation::on_attr(2, 0, Pattern::int_range(0, 100)));
        assert_eq!(ps.set_match(&tup(50, 0)), Some(narrow));
    }

    #[test]
    fn exclusive_and_unbounded_range_endpoints() {
        let mut ps = PunctuationSet::new(0);
        let below = ps.insert(Punctuation::on_attr(
            2,
            0,
            Pattern::Range { lo: Bound::Unbounded, hi: Bound::Exclusive(Value::Int(0)) },
        ));
        let above = ps.insert(Punctuation::on_attr(
            2,
            0,
            Pattern::Range { lo: Bound::Exclusive(Value::Int(10)), hi: Bound::Unbounded },
        ));
        assert_eq!(ps.set_match(&tup(-5, 0)), Some(below));
        assert_eq!(ps.set_match(&tup(0, 0)), None);
        assert_eq!(ps.set_match(&tup(10, 0)), None);
        assert_eq!(ps.set_match(&tup(11, 0)), Some(above));
        assert!(ps.covers_value(&Value::Int(-100)));
        assert!(ps.covers_value(&Value::Int(100)));
        assert!(!ps.covers_value(&Value::Int(5)));
    }

    #[test]
    fn removed_range_no_longer_stabs() {
        let mut ps = PunctuationSet::new(0);
        let a = ps.insert(Punctuation::on_attr(2, 0, Pattern::int_range(0, 9)));
        let b = ps.insert(Punctuation::on_attr(2, 0, Pattern::int_range(5, 14)));
        assert!(ps.remove(a));
        assert_eq!(ps.set_match(&tup(3, 0)), None);
        assert_eq!(ps.set_match(&tup(7, 0)), Some(b));
        assert!(!ps.covers_value(&Value::Int(3)));
        assert!(ps.covers_value(&Value::Int(12)));
    }

    #[test]
    fn enumeration_members_indexed() {
        let mut ps = PunctuationSet::new(0);
        let e1 = ps.insert(Punctuation::on_attr(
            2,
            0,
            Pattern::enumeration(vec![Value::Int(1), Value::Int(3)]),
        ));
        let e2 = ps.insert(Punctuation::on_attr(
            2,
            0,
            Pattern::enumeration(vec![Value::Int(3), Value::Int(5)]),
        ));
        assert_eq!(ps.set_match(&tup(1, 0)), Some(e1));
        assert_eq!(ps.set_match(&tup(3, 0)), Some(e1), "first arrived wins on shared member");
        assert_eq!(ps.set_match(&tup(5, 0)), Some(e2));
        assert_eq!(ps.set_match(&tup(2, 0)), None);
        assert_eq!(ps.set_match_after(&tup(3, 0), e1), Some(e2));
        assert!(ps.covers_value(&Value::Int(5)));
        ps.remove(e2);
        assert_eq!(ps.set_match(&tup(5, 0)), None);
        assert!(!ps.covers_value(&Value::Int(5)));
        assert!(ps.covers_value(&Value::Int(3)));
    }

    #[test]
    fn mixed_shapes_first_arrived_across_indexes() {
        // Constant, enumeration, and range all covering key 5, inserted in
        // every arrival order: set_match must always return the earliest.
        let shapes: [fn() -> Pattern; 3] = [
            || Pattern::Constant(Value::Int(5)),
            || Pattern::enumeration(vec![Value::Int(5), Value::Int(6)]),
            || Pattern::int_range(0, 9),
        ];
        let orders =
            [[0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]];
        for order in orders {
            let mut ps = PunctuationSet::new(0);
            let mut first = None;
            for (i, &s) in order.iter().enumerate() {
                let id = ps.insert(Punctuation::on_attr(2, 0, shapes[s]()));
                if i == 0 {
                    first = Some(id);
                }
            }
            assert_eq!(ps.set_match(&tup(5, 0)), first, "order {order:?}");
        }
    }

    #[test]
    fn punctuation_with_extra_attrs_still_checked_fully() {
        // A punctuation constraining both attributes: the fast path must
        // still verify the full punctuation.
        let mut ps = PunctuationSet::new(0);
        let p = Punctuation::new(vec![
            Pattern::Constant(Value::Int(4)),
            Pattern::Constant(Value::Int(99)),
        ]);
        let id = ps.insert(p);
        assert_eq!(ps.set_match(&tup(4, 99)), Some(id));
        assert_eq!(ps.set_match(&tup(4, 98)), None);
    }
}
