//! Stream-level punctuation sequence ids.
//!
//! A [`PunctId`](crate::PunctId) identifies a punctuation *within one
//! operator's* [`PunctuationSet`](crate::PunctuationSet); once an
//! executor replicates an operator (e.g. a sharded join where every
//! shard keeps its own set), per-set ids of the same stream punctuation
//! diverge across replicas. A [`PunctSeq`] is assigned once at ingest,
//! *before* fan-out, so all replicas — and the alignment layer that
//! merges their propagations — agree on which punctuation instance they
//! are talking about.
//!
//! Sequence ids are per input side: side A's and side B's punctuations
//! are numbered independently, mirroring the paper's treatment of the
//! two punctuation sequences as separate well-formed streams.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Ingest-order sequence number of a punctuation on one input stream.
///
/// Assigned densely from 0 by a [`PunctSeqAssigner`]; never reused.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct PunctSeq(pub u64);

impl fmt::Display for PunctSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Dense sequence-id source for one input stream's punctuations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PunctSeqAssigner {
    next: u64,
}

impl PunctSeqAssigner {
    /// An assigner starting at sequence 0.
    pub fn new() -> PunctSeqAssigner {
        PunctSeqAssigner::default()
    }

    /// Assigns the next sequence id.
    pub fn assign(&mut self) -> PunctSeq {
        let s = PunctSeq(self.next);
        self.next += 1;
        s
    }

    /// Number of ids assigned so far (equals the next id's value).
    pub fn assigned(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assigns_densely_from_zero() {
        let mut a = PunctSeqAssigner::new();
        assert_eq!(a.assign(), PunctSeq(0));
        assert_eq!(a.assign(), PunctSeq(1));
        assert_eq!(a.assigned(), 2);
    }

    #[test]
    fn independent_assigners_do_not_alias() {
        let mut a = PunctSeqAssigner::new();
        let mut b = PunctSeqAssigner::new();
        a.assign();
        assert_eq!(b.assign(), PunctSeq(0));
    }

    #[test]
    fn ordering_and_display() {
        assert!(PunctSeq(1) < PunctSeq(2));
        assert_eq!(PunctSeq(7).to_string(), "s7");
    }
}
