//! Wire-stable binary encoding of the stream element model.
//!
//! This is the byte-level representation the networked transport
//! (`punct-net`) frames on the wire: values, tuples, every one of the
//! five punctuation pattern kinds, punctuations, schemas and stream
//! elements. The encoding lives here, next to the types themselves, so
//! that adding a `Value` or `Pattern` variant forces the wire format to
//! be revisited in the same change.
//!
//! Design rules:
//!
//! * **Little-endian, length-prefixed, tag-discriminated.** Every
//!   variable-length field carries a `u32` length; every enum carries a
//!   leading tag byte. There is no padding and no alignment, so the
//!   encoding is identical across platforms.
//! * **Decode never panics.** Malformed input — truncation, unknown
//!   tags, invalid UTF-8, lengths exceeding the remaining buffer —
//!   surfaces as a typed [`WireError`]. Length fields are validated
//!   against the bytes actually present *before* any allocation, so a
//!   corrupt length cannot trigger a huge allocation.
//! * **Bit-exact round trips.** Floats are encoded as their IEEE bit
//!   pattern (`f64::to_bits`), so `NaN` payloads and `-0.0` survive
//!   unchanged — the same totality guarantee `Value`'s `Eq` provides.

use std::fmt;
use std::sync::Arc;

use crate::pattern::{Bound, Pattern};
use crate::punctuation::Punctuation;
use crate::schema::{Field, Schema};
use crate::stream::{StreamElement, Timestamp, Timestamped};
use crate::tuple::Tuple;
use crate::value::{Value, ValueType};

/// Decoding failure: what was malformed and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the announced structure was complete.
    Truncated {
        /// What was being decoded.
        what: &'static str,
        /// Bytes needed beyond those available.
        needed: usize,
        /// Bytes remaining.
        available: usize,
    },
    /// An enum tag byte was not a known discriminant.
    BadTag {
        /// What was being decoded.
        what: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// A string field did not hold valid UTF-8.
    BadUtf8 {
        /// What was being decoded.
        what: &'static str,
    },
    /// A length field exceeded the protocol's sanity limit.
    TooLarge {
        /// What was being decoded.
        what: &'static str,
        /// The announced length.
        len: usize,
        /// The maximum the decoder accepts.
        max: usize,
    },
    /// Bytes remained after the outermost structure was decoded.
    TrailingBytes {
        /// How many bytes were left over.
        count: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { what, needed, available } => write!(
                f,
                "truncated {what}: needed {needed} more byte(s), {available} available"
            ),
            WireError::BadTag { what, tag } => write!(f, "unknown {what} tag {tag:#04x}"),
            WireError::BadUtf8 { what } => write!(f, "invalid UTF-8 in {what}"),
            WireError::TooLarge { what, len, max } => {
                write!(f, "{what} length {len} exceeds limit {max}")
            }
            WireError::TrailingBytes { count } => {
                write!(f, "{count} trailing byte(s) after decoded structure")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Upper bound on any single announced collection length (attributes,
/// enumeration values, string bytes). Generous for real workloads while
/// keeping a corrupted length from requesting a multi-gigabyte buffer.
pub const MAX_WIRE_LEN: usize = 1 << 24;

// ---------------------------------------------------------------------
// Writer side
// ---------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Appends the encoding of a [`Value`].
pub fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.push(0),
        Value::Bool(b) => {
            buf.push(1);
            buf.push(u8::from(*b));
        }
        Value::Int(i) => {
            buf.push(2);
            buf.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(x) => {
            buf.push(3);
            put_u64(buf, x.to_bits());
        }
        Value::Str(s) => {
            buf.push(4);
            put_str(buf, s);
        }
    }
}

fn put_bound(buf: &mut Vec<u8>, b: &Bound) {
    match b {
        Bound::Unbounded => buf.push(0),
        Bound::Inclusive(v) => {
            buf.push(1);
            put_value(buf, v);
        }
        Bound::Exclusive(v) => {
            buf.push(2);
            put_value(buf, v);
        }
    }
}

/// Appends the encoding of a [`Pattern`] (all five kinds).
pub fn put_pattern(buf: &mut Vec<u8>, p: &Pattern) {
    match p {
        Pattern::Wildcard => buf.push(0),
        Pattern::Constant(v) => {
            buf.push(1);
            put_value(buf, v);
        }
        Pattern::Range { lo, hi } => {
            buf.push(2);
            put_bound(buf, lo);
            put_bound(buf, hi);
        }
        Pattern::In(vs) => {
            buf.push(3);
            put_u32(buf, vs.len() as u32);
            for v in vs {
                put_value(buf, v);
            }
        }
        Pattern::Empty => buf.push(4),
    }
}

/// Appends the encoding of a [`Tuple`].
pub fn put_tuple(buf: &mut Vec<u8>, t: &Tuple) {
    put_u32(buf, t.width() as u32);
    for v in t.values() {
        put_value(buf, v);
    }
}

/// Appends the encoding of a [`Punctuation`].
pub fn put_punctuation(buf: &mut Vec<u8>, p: &Punctuation) {
    put_u32(buf, p.width() as u32);
    for pat in p.patterns() {
        put_pattern(buf, pat);
    }
}

impl Punctuation {
    /// FNV-1a hash of the punctuation's canonical wire encoding.
    ///
    /// Because the wire codec is canonical (one byte sequence per
    /// punctuation value), equal punctuations hash equal across
    /// processes — the telemetry plane uses this as a stable
    /// content-derived correlation key when matching worker-side
    /// lifecycle records back to coordinator-side routing decisions.
    pub fn content_hash(&self) -> u64 {
        let mut buf = Vec::with_capacity(16 + 8 * self.width());
        put_punctuation(&mut buf, self);
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for &b in &buf {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// Appends the encoding of a [`StreamElement`].
pub fn put_element(buf: &mut Vec<u8>, e: &StreamElement) {
    match e {
        StreamElement::Tuple(t) => {
            buf.push(0);
            put_tuple(buf, t);
        }
        StreamElement::Punctuation(p) => {
            buf.push(1);
            put_punctuation(buf, p);
        }
    }
}

/// Appends the encoding of a [`Timestamped<StreamElement>`].
pub fn put_timestamped(buf: &mut Vec<u8>, e: &Timestamped<StreamElement>) {
    put_u64(buf, e.ts.as_micros());
    put_element(buf, &e.item);
}

/// Appends the encoding of a [`Schema`].
pub fn put_schema(buf: &mut Vec<u8>, s: &Schema) {
    put_u32(buf, s.width() as u32);
    for f in s.fields() {
        put_str(buf, &f.name);
        buf.push(match f.ty {
            ValueType::Null => 0,
            ValueType::Bool => 1,
            ValueType::Int => 2,
            ValueType::Float => 3,
            ValueType::Str => 4,
        });
    }
}

// ---------------------------------------------------------------------
// Reader side
// ---------------------------------------------------------------------

/// A bounds-checked cursor over an encoded byte slice.
#[derive(Debug, Clone)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader over `buf` starting at offset 0.
    pub fn new(buf: &'a [u8]) -> WireReader<'a> {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current offset into the buffer.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Errors unless the reader consumed the buffer exactly.
    pub fn finish(&self) -> Result<(), WireError> {
        match self.remaining() {
            0 => Ok(()),
            count => Err(WireError::TrailingBytes { count }),
        }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                what,
                needed: n - self.remaining(),
                available: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().expect("8 bytes")))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self, what: &'static str) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8, what)?.try_into().expect("8 bytes")))
    }

    /// Reads a `u32` collection length, validated against both the
    /// protocol limit and the bytes actually remaining (each entry of
    /// any collection occupies at least `min_entry_bytes`).
    fn len(
        &mut self,
        what: &'static str,
        min_entry_bytes: usize,
    ) -> Result<usize, WireError> {
        let len = self.u32(what)? as usize;
        if len > MAX_WIRE_LEN {
            return Err(WireError::TooLarge { what, len, max: MAX_WIRE_LEN });
        }
        let floor = len.saturating_mul(min_entry_bytes.max(1));
        if floor > self.remaining() {
            return Err(WireError::Truncated {
                what,
                needed: floor - self.remaining(),
                available: self.remaining(),
            });
        }
        Ok(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self, what: &'static str) -> Result<&'a str, WireError> {
        let len = self.len(what, 1)?;
        let bytes = self.take(len, what)?;
        std::str::from_utf8(bytes).map_err(|_| WireError::BadUtf8 { what })
    }

    /// Reads exactly `n` raw bytes (for opaque embedded blobs whose
    /// length the caller already decoded).
    pub fn bytes(&mut self, what: &'static str, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n, what)
    }
}

/// Decodes a [`Value`].
pub fn get_value(r: &mut WireReader<'_>) -> Result<Value, WireError> {
    match r.u8("value tag")? {
        0 => Ok(Value::Null),
        1 => match r.u8("bool value")? {
            0 => Ok(Value::Bool(false)),
            1 => Ok(Value::Bool(true)),
            tag => Err(WireError::BadTag { what: "bool value", tag }),
        },
        2 => Ok(Value::Int(r.i64("int value")?)),
        3 => Ok(Value::Float(f64::from_bits(r.u64("float value")?))),
        4 => Ok(Value::Str(Arc::from(r.str("string value")?))),
        tag => Err(WireError::BadTag { what: "value", tag }),
    }
}

fn get_bound(r: &mut WireReader<'_>) -> Result<Bound, WireError> {
    match r.u8("bound tag")? {
        0 => Ok(Bound::Unbounded),
        1 => Ok(Bound::Inclusive(get_value(r)?)),
        2 => Ok(Bound::Exclusive(get_value(r)?)),
        tag => Err(WireError::BadTag { what: "bound", tag }),
    }
}

/// Decodes a [`Pattern`].
///
/// Enumeration lists are decoded verbatim — the encoder only ever emits
/// normalized (sorted, deduplicated) lists, so a round trip is
/// bit-exact without re-normalizing.
pub fn get_pattern(r: &mut WireReader<'_>) -> Result<Pattern, WireError> {
    match r.u8("pattern tag")? {
        0 => Ok(Pattern::Wildcard),
        1 => Ok(Pattern::Constant(get_value(r)?)),
        2 => {
            let lo = get_bound(r)?;
            let hi = get_bound(r)?;
            Ok(Pattern::Range { lo, hi })
        }
        3 => {
            let len = r.len("enumeration list", 1)?;
            let mut vs = Vec::with_capacity(len);
            for _ in 0..len {
                vs.push(get_value(r)?);
            }
            Ok(Pattern::In(vs))
        }
        4 => Ok(Pattern::Empty),
        tag => Err(WireError::BadTag { what: "pattern", tag }),
    }
}

/// Decodes a [`Tuple`].
pub fn get_tuple(r: &mut WireReader<'_>) -> Result<Tuple, WireError> {
    let width = r.len("tuple width", 1)?;
    let mut values = Vec::with_capacity(width);
    for _ in 0..width {
        values.push(get_value(r)?);
    }
    Ok(Tuple::new(values))
}

/// Decodes a [`Punctuation`].
pub fn get_punctuation(r: &mut WireReader<'_>) -> Result<Punctuation, WireError> {
    let width = r.len("punctuation width", 1)?;
    let mut patterns = Vec::with_capacity(width);
    for _ in 0..width {
        patterns.push(get_pattern(r)?);
    }
    Ok(Punctuation::new(patterns))
}

/// Decodes a [`StreamElement`].
pub fn get_element(r: &mut WireReader<'_>) -> Result<StreamElement, WireError> {
    match r.u8("element tag")? {
        0 => Ok(StreamElement::Tuple(get_tuple(r)?)),
        1 => Ok(StreamElement::Punctuation(get_punctuation(r)?)),
        tag => Err(WireError::BadTag { what: "element", tag }),
    }
}

/// Decodes a [`Timestamped<StreamElement>`].
pub fn get_timestamped(
    r: &mut WireReader<'_>,
) -> Result<Timestamped<StreamElement>, WireError> {
    let ts = Timestamp::from_micros(r.u64("timestamp")?);
    let item = get_element(r)?;
    Ok(Timestamped::new(ts, item))
}

/// Decodes a [`Schema`].
pub fn get_schema(r: &mut WireReader<'_>) -> Result<Schema, WireError> {
    let width = r.len("schema width", 5)?;
    let mut fields = Vec::with_capacity(width);
    for _ in 0..width {
        let name = r.str("field name")?.to_string();
        let ty = match r.u8("field type")? {
            0 => ValueType::Null,
            1 => ValueType::Bool,
            2 => ValueType::Int,
            3 => ValueType::Float,
            4 => ValueType::Str,
            tag => return Err(WireError::BadTag { what: "field type", tag }),
        };
        fields.push(Field::new(name, ty));
    }
    Ok(Schema::new(fields))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_element(e: &StreamElement) {
        let mut buf = Vec::new();
        put_element(&mut buf, e);
        let mut r = WireReader::new(&buf);
        let back = get_element(&mut r).expect("decode");
        r.finish().expect("fully consumed");
        assert_eq!(&back, e);
    }

    #[test]
    fn content_hash_tracks_punctuation_value() {
        let a = Punctuation::close_value(2, 0, 7);
        let b = Punctuation::close_value(2, 0, 7);
        let c = Punctuation::close_value(2, 0, 8);
        let d = Punctuation::close_value(2, 1, 7);
        assert_eq!(a.content_hash(), b.content_hash());
        assert_ne!(a.content_hash(), c.content_hash());
        assert_ne!(a.content_hash(), d.content_hash());
    }

    #[test]
    fn values_round_trip_bit_exactly() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::Int(0),
            Value::Float(-0.0),
            Value::Float(f64::NAN),
            Value::Float(f64::INFINITY),
            Value::Float(1.5),
            Value::str(""),
            Value::str("héllo, wörld"),
        ] {
            let mut buf = Vec::new();
            put_value(&mut buf, &v);
            let mut r = WireReader::new(&buf);
            let back = get_value(&mut r).expect("decode");
            r.finish().expect("consumed");
            // Eq on Value is total (NaN == NaN via total_cmp), and the
            // bits encoding preserves the exact payload.
            assert_eq!(back, v);
            if let (Value::Float(a), Value::Float(b)) = (&v, &back) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn all_pattern_kinds_round_trip() {
        let patterns = vec![
            Pattern::Wildcard,
            Pattern::Empty,
            Pattern::Constant(Value::str("k")),
            Pattern::Range { lo: Bound::Unbounded, hi: Bound::Exclusive(Value::Int(9)) },
            Pattern::Range {
                lo: Bound::Inclusive(Value::Float(0.5)),
                hi: Bound::Unbounded,
            },
            Pattern::In(vec![Value::Int(1), Value::Int(3), Value::str("z")]),
        ];
        for p in &patterns {
            let mut buf = Vec::new();
            put_pattern(&mut buf, p);
            let mut r = WireReader::new(&buf);
            assert_eq!(&get_pattern(&mut r).expect("decode"), p);
            r.finish().expect("consumed");
        }
        roundtrip_element(&StreamElement::Punctuation(Punctuation::new(patterns)));
    }

    #[test]
    fn tuples_and_timestamps_round_trip() {
        roundtrip_element(&StreamElement::Tuple(Tuple::of((1i64, "a", 2.5, true))));
        let e = Timestamped::new(
            Timestamp::from_micros(123_456),
            StreamElement::Tuple(Tuple::of((7i64,))),
        );
        let mut buf = Vec::new();
        put_timestamped(&mut buf, &e);
        let mut r = WireReader::new(&buf);
        assert_eq!(get_timestamped(&mut r).expect("decode"), e);
        r.finish().expect("consumed");
    }

    #[test]
    fn schemas_round_trip() {
        let s = Schema::of(&[
            ("item_id", ValueType::Int),
            ("name", ValueType::Str),
            ("price", ValueType::Float),
            ("live", ValueType::Bool),
        ]);
        let mut buf = Vec::new();
        put_schema(&mut buf, &s);
        let mut r = WireReader::new(&buf);
        assert_eq!(get_schema(&mut r).expect("decode"), s);
        r.finish().expect("consumed");
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut buf = Vec::new();
        put_element(&mut buf, &StreamElement::Tuple(Tuple::of((1i64, "abc"))));
        for cut in 0..buf.len() {
            let mut r = WireReader::new(&buf[..cut]);
            assert!(get_element(&mut r).is_err(), "prefix of {cut} bytes must fail");
        }
    }

    #[test]
    fn bogus_tags_are_errors() {
        let mut r = WireReader::new(&[9u8]);
        assert!(matches!(get_value(&mut r), Err(WireError::BadTag { tag: 9, .. })));
        let mut r = WireReader::new(&[7u8]);
        assert!(matches!(get_pattern(&mut r), Err(WireError::BadTag { tag: 7, .. })));
        let mut r = WireReader::new(&[3u8]);
        assert!(matches!(get_element(&mut r), Err(WireError::BadTag { tag: 3, .. })));
    }

    #[test]
    fn corrupt_length_cannot_request_huge_allocation() {
        // A tuple claiming 2^32-1 attributes with no bytes behind it.
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX);
        let mut r = WireReader::new(&buf);
        match get_tuple(&mut r) {
            Err(WireError::TooLarge { .. }) | Err(WireError::Truncated { .. }) => {}
            other => panic!("expected length rejection, got {other:?}"),
        }
        // A string claiming more bytes than remain.
        let mut buf = vec![4u8]; // Str tag
        put_u32(&mut buf, 1000);
        buf.extend_from_slice(b"short");
        let mut r = WireReader::new(&buf);
        assert!(matches!(get_value(&mut r), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn invalid_utf8_is_an_error() {
        let mut buf = vec![4u8]; // Str tag
        put_u32(&mut buf, 2);
        buf.extend_from_slice(&[0xff, 0xfe]);
        let mut r = WireReader::new(&buf);
        assert!(matches!(get_value(&mut r), Err(WireError::BadUtf8 { .. })));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut buf = Vec::new();
        put_value(&mut buf, &Value::Int(1));
        buf.push(0xAA);
        let mut r = WireReader::new(&buf);
        get_value(&mut r).expect("value decodes");
        assert_eq!(r.finish(), Err(WireError::TrailingBytes { count: 1 }));
    }
}
