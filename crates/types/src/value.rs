//! Dynamically-typed values used as tuple attributes and join keys.
//!
//! Stream operators hash and compare attribute values, so [`Value`]
//! implements `Eq`, `Ord` and `Hash` with a *total* order: values of
//! different types order by their [`ValueType`] tag first, and floats use a
//! total ordering (`f64::total_cmp`) so `NaN` is handled deterministically.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// The type tag of a [`Value`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ValueType {
    /// The null type (only inhabited by `Value::Null`).
    Null,
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float (totally ordered via `total_cmp`).
    Float,
    /// UTF-8 string (reference counted; cloning is cheap).
    Str,
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueType::Null => "null",
            ValueType::Bool => "bool",
            ValueType::Int => "int",
            ValueType::Float => "float",
            ValueType::Str => "str",
        };
        f.write_str(s)
    }
}

/// A dynamically-typed attribute value.
///
/// `Value` is the unit of comparison for equi-joins and pattern matching.
/// It is cheap to clone (strings are `Arc<str>`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// Absent / unknown value. Joins never match on `Null`.
    Null,
    /// Boolean value.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float. Ordered with `f64::total_cmp` so `Value` is `Ord`.
    Float(f64),
    /// UTF-8 string.
    Str(Arc<str>),
}

impl Value {
    /// Returns the type tag of this value.
    pub fn type_of(&self) -> ValueType {
        match self {
            Value::Null => ValueType::Null,
            Value::Bool(_) => ValueType::Bool,
            Value::Int(_) => ValueType::Int,
            Value::Float(_) => ValueType::Float,
            Value::Str(_) => ValueType::Str,
        }
    }

    /// True if this value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Constructs a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Returns the integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the float payload, if this is a `Float` (does not coerce ints).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// Returns the numeric payload as `f64`, coercing `Int` to `Float`.
    pub fn as_numeric(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// Returns the string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Compares two values for *join equality*.
    ///
    /// This is ordinary equality except that `Null` never equals anything
    /// (including `Null`), matching SQL join semantics. Equality across
    /// `Int`/`Float` coerces numerically so `Int(2)` join-equals
    /// `Float(2.0)`.
    pub fn join_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => false,
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => {
                (*a as f64) == *b
            }
            _ => self == other,
        }
    }

    /// Canonical hash key for [`join_eq`](Value::join_eq)-based lookup
    /// structures: values that join-equal each other map to the same key
    /// wherever an exact key exists.
    ///
    /// - `Null` returns `None` — it can never satisfy `join_eq`, so
    ///   callers skip indexing/probing it entirely.
    /// - `Float`s holding an exactly representable `i64` (including
    ///   `-0.0`) canonicalize to `Int`, so `Int(2)` and `Float(2.0)`
    ///   collide as `join_eq` requires. Other floats (fractional, huge,
    ///   `NaN`) key as themselves, matching `join_eq`'s fallback to
    ///   bitwise (`total_cmp`) equality for same-type floats.
    ///
    /// One caveat inherited from `join_eq` itself: an `Int` beyond 2^53
    /// can `join_eq` a `Float` through `as f64` rounding while their
    /// keys differ. Such pairs were never discoverable through the
    /// hash-partitioned store either, so keyed lookups do not regress
    /// them.
    pub fn join_key(&self) -> Option<Value> {
        match self {
            Value::Null => None,
            Value::Float(f)
                if f.trunc() == *f && *f >= i64::MIN as f64 && *f < i64::MAX as f64 =>
            {
                Some(Value::Int(*f as i64))
            }
            other => Some(other.clone()),
        }
    }

    /// The canonical join-key hash — the **single** hash every layer of
    /// the partitioned data path derives its placement from: the sharded
    /// router takes the high 32 bits for shard selection, the per-shard
    /// store takes `hash % buckets` for bucketing (decorrelated moduli).
    /// Computed once per tuple at the router and carried downstream so
    /// no layer re-hashes.
    ///
    /// `None` mirrors [`join_key`](Value::join_key): the value can never
    /// satisfy `join_eq`, and callers park it on shard/bucket 0.
    ///
    /// Hashing goes through one shared (zero-sized) `BuildHasher` whose
    /// `DefaultHasher` keys are fixed, so the result is bit-identical to
    /// the historical `DefaultHasher::new()` + `Hash` + `finish()`
    /// sequence the router and store each used to run independently —
    /// every existing shard and bucket assignment is preserved.
    pub fn join_hash(&self) -> Option<u64> {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{BuildHasher, BuildHasherDefault};
        let canonical = self.join_key()?;
        Some(BuildHasherDefault::<DefaultHasher>::default().hash_one(&canonical))
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b) == Ordering::Equal,
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            // Cross-type numeric comparison keeps Int(2) < Float(2.5) sensible
            // for range patterns over mixed numeric streams.
            (Value::Int(a), Value::Float(b)) => (*a as f64).total_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.total_cmp(&(*b as f64)),
            _ => self.type_of().cmp(&other.type_of()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Hash must agree with Eq: Int/Float that are numerically equal under
        // `join_eq` are distinct under `Eq`, so hashing the tag is fine.
        self.type_of().hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Float(x) => x.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            // Debug formatting keeps a decimal point (`-8.0`, not `-8`),
            // so the punctuation grammar round-trips floats as floats.
            Value::Float(x) => write!(f, "{x:?}"),
            Value::Str(s) => write!(f, "\"{s}\""),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn type_tags() {
        assert_eq!(Value::Null.type_of(), ValueType::Null);
        assert_eq!(Value::Bool(true).type_of(), ValueType::Bool);
        assert_eq!(Value::Int(1).type_of(), ValueType::Int);
        assert_eq!(Value::Float(1.0).type_of(), ValueType::Float);
        assert_eq!(Value::str("x").type_of(), ValueType::Str);
    }

    #[test]
    fn equality_within_types() {
        assert_eq!(Value::Int(7), Value::Int(7));
        assert_ne!(Value::Int(7), Value::Int(8));
        assert_eq!(Value::str("a"), Value::str("a"));
        assert_ne!(Value::str("a"), Value::str("b"));
        assert_eq!(Value::Float(1.5), Value::Float(1.5));
    }

    #[test]
    fn equality_across_types_is_false() {
        assert_ne!(Value::Int(1), Value::Float(1.0));
        assert_ne!(Value::Int(0), Value::Bool(false));
        assert_ne!(Value::str("1"), Value::Int(1));
    }

    #[test]
    fn join_eq_null_never_matches() {
        assert!(!Value::Null.join_eq(&Value::Null));
        assert!(!Value::Null.join_eq(&Value::Int(1)));
        assert!(!Value::Int(1).join_eq(&Value::Null));
    }

    #[test]
    fn join_eq_coerces_numerics() {
        assert!(Value::Int(2).join_eq(&Value::Float(2.0)));
        assert!(Value::Float(2.0).join_eq(&Value::Int(2)));
        assert!(!Value::Int(2).join_eq(&Value::Float(2.5)));
    }

    #[test]
    fn join_key_canonicalizes_join_equal_values() {
        // Values that join_eq each other share a key.
        assert_eq!(Value::Int(2).join_key(), Value::Float(2.0).join_key());
        assert_eq!(Value::Float(-0.0).join_key(), Some(Value::Int(0)));
        // Unjoinable values have no key.
        assert_eq!(Value::Null.join_key(), None);
        // Fractional and out-of-i64-range floats key as themselves.
        assert_eq!(Value::Float(2.5).join_key(), Some(Value::Float(2.5)));
        assert_eq!(Value::Float(1e20).join_key(), Some(Value::Float(1e20)));
        // NaN keys as itself: join_eq accepts same-bits NaN (total_cmp)
        // and the bitwise hash of Float preserves exactly that.
        assert_eq!(Value::Float(f64::NAN).join_key(), Some(Value::Float(f64::NAN)));
        // Non-numerics pass through.
        assert_eq!(Value::str("k").join_key(), Some(Value::str("k")));
        assert_eq!(Value::Bool(true).join_key(), Some(Value::Bool(true)));
    }

    #[test]
    fn nan_is_deterministic() {
        let a = Value::Float(f64::NAN);
        let b = Value::Float(f64::NAN);
        assert_eq!(a, b);
        assert_eq!(a.cmp(&b), Ordering::Equal);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn ordering_is_total_across_types() {
        let mut vs = [
            Value::str("z"),
            Value::Int(3),
            Value::Null,
            Value::Float(-1.0),
            Value::Bool(true),
        ];
        vs.sort();
        // Null < Bool < numerics < Str per ValueType ordering (numerics
        // compare cross-type numerically).
        assert_eq!(vs[0], Value::Null);
        assert_eq!(vs[1], Value::Bool(true));
        assert_eq!(vs[4], Value::str("z"));
    }

    #[test]
    fn mixed_numeric_ordering() {
        assert!(Value::Int(2) < Value::Float(2.5));
        assert!(Value::Float(1.5) < Value::Int(2));
    }

    #[test]
    fn hash_agrees_with_eq() {
        assert_eq!(hash_of(&Value::Int(42)), hash_of(&Value::Int(42)));
        assert_eq!(hash_of(&Value::str("abc")), hash_of(&Value::str("abc")));
        // Not required by the Hash contract but desirable: distinct values
        // usually hash differently.
        assert_ne!(hash_of(&Value::Int(1)), hash_of(&Value::Int(2)));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::Float(0.5).as_float(), Some(0.5));
        assert_eq!(Value::Int(5).as_numeric(), Some(5.0));
        assert_eq!(Value::str("hi").as_str(), Some("hi"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::str("hi").as_int(), None);
        assert!(Value::Null.is_null());
        assert!(!Value::Int(0).is_null());
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(3u32), Value::Int(3));
        assert_eq!(Value::from(0.25), Value::Float(0.25));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("s"), Value::str("s"));
        assert_eq!(Value::from("s".to_string()), Value::str("s"));
    }

    #[test]
    fn display_round_trips_visually() {
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::str("ab").to_string(), "\"ab\"");
        assert_eq!(Value::Bool(false).to_string(), "false");
    }
}
