//! The element model of punctuated streams: tuples and punctuations, with
//! arrival timestamps.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::punctuation::Punctuation;
use crate::tuple::Tuple;

/// A virtual-time instant, in microseconds since the start of a run.
///
/// All simulation components (`stream-sim`), generators and operators use
/// this unit, so the type lives here at the bottom of the crate graph.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The origin of virtual time.
    pub const ZERO: Timestamp = Timestamp(0);

    /// Constructs from whole milliseconds.
    pub fn from_millis(ms: u64) -> Timestamp {
        Timestamp(ms * 1_000)
    }

    /// Constructs from microseconds.
    pub fn from_micros(us: u64) -> Timestamp {
        Timestamp(us)
    }

    /// Microseconds since the origin.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since the origin (truncating).
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since the origin, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating addition of a duration in microseconds.
    pub fn advance(self, micros: u64) -> Timestamp {
        Timestamp(self.0.saturating_add(micros))
    }

    /// Saturating difference in microseconds.
    pub fn micros_since(self, earlier: Timestamp) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.0 as f64 / 1000.0)
    }
}

/// A payload on a punctuated stream: either a data tuple or a punctuation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamElement {
    /// A data tuple.
    Tuple(Tuple),
    /// A punctuation asserting no later tuple matches it.
    Punctuation(Punctuation),
}

impl StreamElement {
    /// True if this element is a tuple.
    pub fn is_tuple(&self) -> bool {
        matches!(self, StreamElement::Tuple(_))
    }

    /// True if this element is a punctuation.
    pub fn is_punctuation(&self) -> bool {
        matches!(self, StreamElement::Punctuation(_))
    }

    /// The tuple payload, if any.
    pub fn as_tuple(&self) -> Option<&Tuple> {
        match self {
            StreamElement::Tuple(t) => Some(t),
            StreamElement::Punctuation(_) => None,
        }
    }

    /// The punctuation payload, if any.
    pub fn as_punctuation(&self) -> Option<&Punctuation> {
        match self {
            StreamElement::Punctuation(p) => Some(p),
            StreamElement::Tuple(_) => None,
        }
    }
}

impl From<Tuple> for StreamElement {
    fn from(t: Tuple) -> Self {
        StreamElement::Tuple(t)
    }
}

impl From<Punctuation> for StreamElement {
    fn from(p: Punctuation) -> Self {
        StreamElement::Punctuation(p)
    }
}

impl fmt::Display for StreamElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamElement::Tuple(t) => write!(f, "{t}"),
            StreamElement::Punctuation(p) => write!(f, "{p}"),
        }
    }
}

/// A stream element paired with its arrival timestamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timestamped<T = StreamElement> {
    /// Arrival (virtual) time.
    pub ts: Timestamp,
    /// The payload.
    pub item: T,
}

impl<T> Timestamped<T> {
    /// Pairs an item with a timestamp.
    pub fn new(ts: Timestamp, item: T) -> Timestamped<T> {
        Timestamped { ts, item }
    }

    /// Maps the payload while keeping the timestamp.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Timestamped<U> {
        Timestamped { ts: self.ts, item: f(self.item) }
    }
}

impl<T: fmt::Display> fmt::Display for Timestamped<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{} {}", self.ts, self.item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_conversions() {
        let t = Timestamp::from_millis(3);
        assert_eq!(t.as_micros(), 3000);
        assert_eq!(t.as_millis(), 3);
        assert!((t.as_secs_f64() - 0.003).abs() < 1e-12);
        assert_eq!(Timestamp::from_micros(42).as_micros(), 42);
    }

    #[test]
    fn timestamp_advance_and_diff() {
        let t = Timestamp(100);
        assert_eq!(t.advance(50), Timestamp(150));
        assert_eq!(Timestamp(150).micros_since(t), 50);
        assert_eq!(t.micros_since(Timestamp(150)), 0); // saturating
        assert_eq!(Timestamp(u64::MAX).advance(1), Timestamp(u64::MAX));
    }

    #[test]
    fn timestamp_ordering() {
        assert!(Timestamp(1) < Timestamp(2));
        assert_eq!(Timestamp::ZERO, Timestamp(0));
    }

    #[test]
    fn element_accessors() {
        let t: StreamElement = Tuple::of((1i64,)).into();
        assert!(t.is_tuple());
        assert!(!t.is_punctuation());
        assert!(t.as_tuple().is_some());
        assert!(t.as_punctuation().is_none());

        let p: StreamElement = Punctuation::close_value(1, 0, 1i64).into();
        assert!(p.is_punctuation());
        assert!(p.as_punctuation().is_some());
        assert!(p.as_tuple().is_none());
    }

    #[test]
    fn timestamped_map() {
        let x = Timestamped::new(Timestamp(5), 10u32);
        let y = x.map(|v| v * 2);
        assert_eq!(y.ts, Timestamp(5));
        assert_eq!(y.item, 20);
    }

    #[test]
    fn display() {
        let e = Timestamped::new(Timestamp::from_millis(1), StreamElement::from(Tuple::of((2i64,))));
        assert_eq!(e.to_string(), "@1.000ms (2)");
    }
}
