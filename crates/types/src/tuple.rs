//! Immutable, cheaply-cloneable stream tuples.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::error::TypeError;
use crate::value::Value;

/// A row of attribute [`Value`]s.
///
/// Tuples are immutable and internally reference-counted, so cloning one —
/// which join operators do for every match produced — is a pointer bump.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Tuple {
    values: Arc<[Value]>,
}

impl Tuple {
    /// Creates a tuple from values.
    pub fn new(values: Vec<Value>) -> Tuple {
        Tuple { values: values.into() }
    }

    /// Creates a tuple from anything convertible to values.
    ///
    /// ```
    /// use punct_types::Tuple;
    /// let t = Tuple::of((1i64, "widget", 9.5));
    /// assert_eq!(t.width(), 3);
    /// ```
    pub fn of(row: impl IntoTuple) -> Tuple {
        row.into_tuple()
    }

    /// Number of attributes.
    pub fn width(&self) -> usize {
        self.values.len()
    }

    /// Whether this tuple has no attributes.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The values, in attribute order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value at `index`, if in range.
    pub fn get(&self, index: usize) -> Option<&Value> {
        self.values.get(index)
    }

    /// Value at `index`, with a typed error when out of range.
    pub fn try_get(&self, index: usize) -> Result<&Value, TypeError> {
        self.values
            .get(index)
            .ok_or(TypeError::IndexOutOfRange { index, width: self.values.len() })
    }

    /// Concatenates two tuples (join output construction).
    ///
    /// Collects straight into the `Arc<[Value]>` backing store: the
    /// chained slice iterators have a trusted length, so this is a
    /// single allocation and a single pass over the values — join
    /// operators call this once per emitted match, making it the
    /// hottest constructor in the output path (`Tuple::new` would pay
    /// an extra `Vec` allocation plus a second copy into the `Arc`).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        Tuple { values: self.values.iter().chain(other.values.iter()).cloned().collect() }
    }

    /// Projects the tuple onto the given attribute indices.
    pub fn project(&self, indices: &[usize]) -> Result<Tuple, TypeError> {
        let mut values = Vec::with_capacity(indices.len());
        for &i in indices {
            values.push(self.try_get(i)?.clone());
        }
        Ok(Tuple::new(values))
    }

    /// Approximate in-memory footprint in bytes, used by spill accounting.
    pub fn approx_bytes(&self) -> usize {
        let mut n = std::mem::size_of::<Tuple>();
        for v in self.values.iter() {
            n += std::mem::size_of::<Value>();
            if let Value::Str(s) = v {
                n += s.len();
            }
        }
        n
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str(")")
    }
}

/// Conversion of Rust tuples into stream [`Tuple`]s, for test and example
/// ergonomics.
pub trait IntoTuple {
    /// Performs the conversion.
    fn into_tuple(self) -> Tuple;
}

macro_rules! impl_into_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Into<Value>),+> IntoTuple for ($($name,)+) {
            fn into_tuple(self) -> Tuple {
                Tuple::new(vec![$(self.$idx.into()),+])
            }
        }
    };
}

impl_into_tuple!(A: 0);
impl_into_tuple!(A: 0, B: 1);
impl_into_tuple!(A: 0, B: 1, C: 2);
impl_into_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_into_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_into_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_into_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_into_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

impl IntoTuple for Vec<Value> {
    fn into_tuple(self) -> Tuple {
        Tuple::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tuple::of((7i64, "bolt", 1.25));
        assert_eq!(t.width(), 3);
        assert_eq!(t.get(0), Some(&Value::Int(7)));
        assert_eq!(t.get(1), Some(&Value::str("bolt")));
        assert_eq!(t.get(3), None);
        assert!(t.try_get(3).is_err());
        assert!(!t.is_empty());
    }

    #[test]
    fn concat_preserves_order() {
        let a = Tuple::of((1i64, 2i64));
        let b = Tuple::of(("x", "y"));
        let c = a.concat(&b);
        assert_eq!(c.width(), 4);
        assert_eq!(c.get(2), Some(&Value::str("x")));
    }

    #[test]
    fn project_selects_and_reorders() {
        let t = Tuple::of((10i64, 20i64, 30i64));
        let p = t.project(&[2, 0]).unwrap();
        assert_eq!(p.values(), &[Value::Int(30), Value::Int(10)]);
        assert!(t.project(&[5]).is_err());
    }

    #[test]
    fn clone_is_shallow() {
        let t = Tuple::of((1i64, "a"));
        let u = t.clone();
        assert_eq!(t, u);
        assert!(Arc::ptr_eq(&t.values, &u.values));
    }

    #[test]
    fn display_formats() {
        let t = Tuple::of((1i64, "a"));
        assert_eq!(t.to_string(), "(1, \"a\")");
    }

    #[test]
    fn approx_bytes_grows_with_strings() {
        let small = Tuple::of((1i64,));
        let big = Tuple::of(("a long string value that occupies real space",));
        assert!(big.approx_bytes() > small.approx_bytes());
    }

    #[test]
    fn eq_and_hash_by_value() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Tuple::of((1i64, "a")));
        assert!(set.contains(&Tuple::of((1i64, "a"))));
        assert!(!set.contains(&Tuple::of((2i64, "a"))));
    }
}
