//! Property tests of the query operators: grouped aggregation under
//! randomized punctuation placement must equal the batch aggregate, and
//! the union's punctuation conjunctions must never be violated.

use proptest::prelude::*;
use punct_types::{Punctuation, StreamElement, Timestamp, Timestamped, Tuple, Value};
use squery::{union_streams, Aggregate, GroupBy, UnaryOperator};
use std::collections::HashMap;

/// A stream script: tuples (key, value) with interleaved punctuations
/// closing keys in order — well-formed by construction.
#[derive(Debug, Clone)]
struct Script {
    steps: Vec<(u8, i16, bool)>,
}

fn arb_script() -> impl Strategy<Value = Script> {
    proptest::collection::vec((any::<u8>(), any::<i16>(), proptest::bool::weighted(0.25)), 0..80)
        .prop_map(|steps| Script { steps })
}

fn render(script: &Script, window: u64) -> Vec<StreamElement> {
    let mut low = 0u64;
    let mut out = Vec::new();
    for &(draw, value, punct) in &script.steps {
        let key = (low + (draw as u64) % window) as i64;
        out.push(StreamElement::Tuple(Tuple::new(vec![
            Value::Int(key),
            Value::Float(value as f64),
        ])));
        if punct {
            out.push(StreamElement::Punctuation(Punctuation::close_value(2, 0, low as i64)));
            low += 1;
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn group_by_equals_batch_aggregate(script in arb_script(), window in 1u64..6) {
        let input = render(&script, window);

        // Reference: batch sums per key.
        let mut expect: HashMap<i64, (f64, i64)> = HashMap::new();
        for e in &input {
            if let Some(t) = e.as_tuple() {
                let k = t.get(0).unwrap().as_int().unwrap();
                let v = t.get(1).unwrap().as_numeric().unwrap();
                let entry = expect.entry(k).or_insert((0.0, 0));
                entry.0 += v;
                entry.1 += 1;
            }
        }

        for agg in [Aggregate::Sum, Aggregate::Count] {
            let mut g = GroupBy::new(0, 1, agg);
            let mut out = Vec::new();
            for e in &input {
                g.on_element(e.clone(), &mut out);
            }
            g.on_end(&mut out);
            let mut got: HashMap<i64, Value> = HashMap::new();
            for e in &out {
                if let Some(t) = e.as_tuple() {
                    let k = t.get(0).unwrap().as_int().unwrap();
                    prop_assert!(
                        got.insert(k, t.get(1).unwrap().clone()).is_none(),
                        "group {k} emitted twice under {agg:?}"
                    );
                }
            }
            prop_assert_eq!(got.len(), expect.len());
            for (k, (sum, count)) in &expect {
                match agg {
                    Aggregate::Sum => {
                        let v = got[k].as_numeric().unwrap();
                        prop_assert!((v - sum).abs() < 1e-9);
                    }
                    Aggregate::Count => {
                        prop_assert_eq!(got[k].as_int().unwrap(), *count);
                    }
                    _ => unreachable!(),
                }
            }
        }
    }

    #[test]
    fn group_by_emissions_respect_punctuations(script in arb_script(), window in 1u64..6) {
        // Once a group's result is out, no later input tuple may belong
        // to it (the operator must only close punctuated groups).
        let input = render(&script, window);
        let mut g = GroupBy::new(0, 1, Aggregate::Sum);
        let mut closed: Vec<i64> = Vec::new();
        for e in &input {
            if let Some(t) = e.as_tuple() {
                let k = t.get(0).unwrap().as_int().unwrap();
                prop_assert!(!closed.contains(&k), "tuple for already-closed group {k}");
            }
            let mut out = Vec::new();
            g.on_element(e.clone(), &mut out);
            for o in &out {
                if let Some(t) = o.as_tuple() {
                    closed.push(t.get(0).unwrap().as_int().unwrap());
                }
            }
        }
    }

    #[test]
    fn union_output_is_well_formed(a in arb_script(), b in arb_script(), window in 1u64..6) {
        let ts_wrap = |elements: Vec<StreamElement>| {
            elements
                .into_iter()
                .enumerate()
                .map(|(i, e)| Timestamped::new(Timestamp(i as u64 * 2), e))
                .collect::<Vec<_>>()
        };
        let left = ts_wrap(render(&a, window));
        let right = ts_wrap(render(&b, window));
        let out = union_streams(&left, &right, 2);
        // All tuples preserved.
        let in_tuples =
            left.iter().chain(&right).filter(|e| e.item.is_tuple()).count();
        prop_assert_eq!(out.iter().filter(|e| e.item.is_tuple()).count(), in_tuples);
        // No union output tuple violates a union punctuation.
        let report = streamgen::validate_stream(&out, 0);
        prop_assert!(report.violations.is_empty(), "violations: {:?}", report.violations);
    }
}
