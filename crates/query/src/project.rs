//! Projection operator.

use punct_types::{Pattern, Punctuation, StreamElement};

use crate::operator::UnaryOperator;

/// Projects tuples onto a subset (or reordering) of attributes.
///
/// Punctuations are projected onto the same attributes. A punctuation is
/// only forwarded when every **dropped** attribute's pattern is a
/// wildcard: otherwise the projected punctuation would assert the end of
/// a *larger* value set than the original did, which is unsound.
pub struct Project {
    indices: Vec<usize>,
}

impl Project {
    /// Creates a projection onto `indices` (in output order).
    pub fn new(indices: Vec<usize>) -> Project {
        Project { indices }
    }
}

impl UnaryOperator for Project {
    fn on_element(&mut self, element: StreamElement, out: &mut Vec<StreamElement>) {
        match element {
            StreamElement::Tuple(t) => {
                if let Ok(p) = t.project(&self.indices) {
                    out.push(StreamElement::Tuple(p));
                }
            }
            StreamElement::Punctuation(p) => {
                let dropped_all_wildcard = p
                    .patterns()
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !self.indices.contains(i))
                    .all(|(_, pat)| *pat == Pattern::Wildcard);
                if !dropped_all_wildcard {
                    return;
                }
                let kept: Option<Vec<Pattern>> =
                    self.indices.iter().map(|&i| p.pattern(i).cloned()).collect();
                if let Some(patterns) = kept {
                    out.push(StreamElement::Punctuation(Punctuation::new(patterns)));
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "project"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use punct_types::{Tuple, Value};

    #[test]
    fn projects_tuples() {
        let mut p = Project::new(vec![2, 0]);
        let mut out = Vec::new();
        p.on_element(StreamElement::Tuple(Tuple::of((1i64, 2i64, 3i64))), &mut out);
        assert_eq!(
            out[0].as_tuple().unwrap().values(),
            &[Value::Int(3), Value::Int(1)]
        );
    }

    #[test]
    fn forwards_punctuation_when_dropped_attrs_are_wildcards() {
        let mut p = Project::new(vec![0]);
        let mut out = Vec::new();
        p.on_element(
            StreamElement::Punctuation(Punctuation::close_value(3, 0, 9i64)),
            &mut out,
        );
        assert_eq!(out.len(), 1);
        let punct = out[0].as_punctuation().unwrap();
        assert_eq!(punct.width(), 1);
        assert_eq!(punct.pattern(0), Some(&Pattern::Constant(Value::Int(9))));
    }

    #[test]
    fn drops_punctuation_when_informative_attr_is_dropped() {
        let mut p = Project::new(vec![1]);
        let mut out = Vec::new();
        // Pattern on attribute 0, which the projection drops: unsound to
        // forward.
        p.on_element(
            StreamElement::Punctuation(Punctuation::close_value(3, 0, 9i64)),
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn out_of_range_tuples_dropped() {
        let mut p = Project::new(vec![5]);
        let mut out = Vec::new();
        p.on_element(StreamElement::Tuple(Tuple::of((1i64,))), &mut out);
        assert!(out.is_empty());
    }
}
