//! Output sink: collects the final stream of a pipeline.

use punct_types::{StreamElement, Tuple};

/// Collects a pipeline's output, separating tuples and punctuations.
#[derive(Debug, Default, Clone)]
pub struct Sink {
    /// All elements in arrival order.
    pub elements: Vec<StreamElement>,
}

impl Sink {
    /// Creates an empty sink.
    pub fn new() -> Sink {
        Sink::default()
    }

    /// Appends an element.
    pub fn push(&mut self, element: StreamElement) {
        self.elements.push(element);
    }

    /// The collected data tuples, in order.
    pub fn tuples(&self) -> Vec<&Tuple> {
        self.elements.iter().filter_map(StreamElement::as_tuple).collect()
    }

    /// Number of tuples collected.
    pub fn tuple_count(&self) -> usize {
        self.elements.iter().filter(|e| e.is_tuple()).count()
    }

    /// Number of punctuations collected.
    pub fn punctuation_count(&self) -> usize {
        self.elements.iter().filter(|e| e.is_punctuation()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use punct_types::Punctuation;

    #[test]
    fn separates_kinds() {
        let mut s = Sink::new();
        s.push(StreamElement::Tuple(Tuple::of((1i64,))));
        s.push(StreamElement::Punctuation(Punctuation::close_value(1, 0, 1i64)));
        s.push(StreamElement::Tuple(Tuple::of((2i64,))));
        assert_eq!(s.tuple_count(), 2);
        assert_eq!(s.punctuation_count(), 1);
        assert_eq!(s.tuples().len(), 2);
        assert_eq!(s.elements.len(), 3);
    }
}
