//! Punctuation-aware stream union.
//!
//! Tuples of both inputs pass straight through. Punctuations must not: a
//! punctuation `p` of input A says nothing about input B, so the union
//! may only assert `p` once **both** inputs have asserted it. Formally,
//! the union's punctuation knowledge is the pairwise conjunction of the
//! inputs' punctuation sets ("the *and* of any two punctuations is also
//! a punctuation", §2.2): whenever `p_A ∧ p_B` is non-empty for a new
//! pair, that conjunction is safe to emit.

use std::collections::HashSet;

use punct_types::{Punctuation, StreamElement, Timestamped};
use stream_sim::Side;

/// The punctuation-aware union operator over two inputs of one schema.
///
/// ```
/// use squery::Union;
/// use punct_types::{Punctuation, StreamElement};
/// use stream_sim::Side;
/// let mut u = Union::new(2);
/// let mut out = Vec::new();
/// let p = Punctuation::close_value(2, 0, 7i64);
/// u.on_element(Side::Left, p.clone().into(), &mut out);
/// assert!(out.is_empty()); // the right input may still produce 7s
/// u.on_element(Side::Right, p.into(), &mut out);
/// assert_eq!(out.len(), 1); // both sides agree: emit the conjunction
/// ```
pub struct Union {
    width: usize,
    ps: [Vec<Punctuation>; 2],
    emitted: HashSet<Punctuation>,
}

impl Union {
    /// Creates a union of two streams with `width`-ary tuples.
    pub fn new(width: usize) -> Union {
        Union { width, ps: [Vec::new(), Vec::new()], emitted: HashSet::new() }
    }

    /// Punctuations retained per side (diagnostics).
    pub fn pending(&self) -> (usize, usize) {
        (self.ps[0].len(), self.ps[1].len())
    }

    /// Processes one element from `side`, pushing outputs in order.
    pub fn on_element(&mut self, side: Side, element: StreamElement, out: &mut Vec<StreamElement>) {
        match element {
            t @ StreamElement::Tuple(_) => out.push(t),
            StreamElement::Punctuation(p) => {
                if p.width() != self.width {
                    debug_assert!(false, "punctuation width mismatch in union");
                    return;
                }
                let (own, other) = match side {
                    Side::Left => (0, 1),
                    Side::Right => (1, 0),
                };
                // Conjoin with everything the other side has asserted;
                // `emitted` dedups across *and within* batches.
                let emitted = &mut self.emitted;
                for q in &self.ps[other] {
                    if let Ok(conj) = p.and(q) {
                        if !conj.is_empty() && emitted.insert(conj.clone()) {
                            out.push(StreamElement::Punctuation(conj));
                        }
                    }
                }
                self.ps[own].push(p);
            }
        }
    }
}

/// Unions two timestamp-ordered streams into one, applying the
/// punctuation conjunction rule. The output is timestamp-ordered.
pub fn union_streams(
    left: &[Timestamped<StreamElement>],
    right: &[Timestamped<StreamElement>],
    width: usize,
) -> Vec<Timestamped<StreamElement>> {
    let mut u = Union::new(width);
    let mut out = Vec::with_capacity(left.len() + right.len());
    let (mut li, mut ri) = (0usize, 0usize);
    let mut buf = Vec::new();
    loop {
        let pick_left = match (left.get(li), right.get(ri)) {
            (Some(l), Some(r)) => l.ts <= r.ts,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        let (side, e) = if pick_left {
            li += 1;
            (Side::Left, &left[li - 1])
        } else {
            ri += 1;
            (Side::Right, &right[ri - 1])
        };
        u.on_element(side, e.item.clone(), &mut buf);
        out.extend(buf.drain(..).map(|item| Timestamped::new(e.ts, item)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use punct_types::{Pattern, Timestamp, Tuple};

    fn tup(us: u64, k: i64) -> Timestamped<StreamElement> {
        Timestamped::new(Timestamp(us), StreamElement::Tuple(Tuple::of((k, 0i64))))
    }

    fn punct(us: u64, k: i64) -> Timestamped<StreamElement> {
        Timestamped::new(
            Timestamp(us),
            StreamElement::Punctuation(Punctuation::close_value(2, 0, k)),
        )
    }

    #[test]
    fn tuples_pass_through_in_order() {
        let left = vec![tup(1, 1), tup(5, 2)];
        let right = vec![tup(3, 3)];
        let out = union_streams(&left, &right, 2);
        let keys: Vec<i64> = out
            .iter()
            .filter_map(|e| e.item.as_tuple())
            .map(|t| t.get(0).unwrap().as_int().unwrap())
            .collect();
        assert_eq!(keys, vec![1, 3, 2]);
    }

    #[test]
    fn punctuation_requires_both_sides() {
        // Only the left closes key 7: the union must stay silent (the
        // right might still produce 7s).
        let left = vec![tup(1, 7), punct(2, 7)];
        let right = vec![tup(3, 7)];
        let out = union_streams(&left, &right, 2);
        assert_eq!(out.iter().filter(|e| e.item.is_punctuation()).count(), 0);

        // Both sides close it: the conjunction is emitted once.
        let right = vec![tup(3, 7), punct(4, 7)];
        let out = union_streams(&left, &right, 2);
        let puncts: Vec<_> =
            out.iter().filter_map(|e| e.item.as_punctuation()).collect();
        assert_eq!(puncts.len(), 1);
        assert!(puncts[0].matches(&Tuple::of((7i64, 123i64))));
    }

    #[test]
    fn output_is_well_formed() {
        let left = vec![tup(1, 1), punct(2, 1), tup(3, 2), punct(8, 2)];
        let right = vec![tup(4, 1), punct(5, 1), tup(6, 2), punct(9, 2)];
        let out = union_streams(&left, &right, 2);
        let report = streamgen::validate_stream(&out, 0);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(out.iter().filter(|e| e.item.is_punctuation()).count(), 2);
    }

    #[test]
    fn range_and_constant_conjoin() {
        // Left closes [0,10); right closes key 5: the union can assert 5.
        let left = vec![Timestamped::new(
            Timestamp(1),
            StreamElement::Punctuation(Punctuation::on_attr(2, 0, Pattern::int_range(0, 9))),
        )];
        let right = vec![punct(2, 5)];
        let out = union_streams(&left, &right, 2);
        let puncts: Vec<_> =
            out.iter().filter_map(|e| e.item.as_punctuation()).collect();
        assert_eq!(puncts.len(), 1);
        assert!(puncts[0].matches(&Tuple::of((5i64, 0i64))));
        assert!(!puncts[0].matches(&Tuple::of((6i64, 0i64))), "only the conjunction holds");
    }

    #[test]
    fn disjoint_punctuations_emit_nothing() {
        let left = vec![punct(1, 1)];
        let right = vec![punct(2, 2)];
        let out = union_streams(&left, &right, 2);
        assert_eq!(out.iter().filter(|e| e.item.is_punctuation()).count(), 0);
    }

    #[test]
    fn no_duplicate_emissions() {
        // The same conjunction reachable through two pairs is emitted once.
        let left = vec![punct(1, 5), punct(2, 5)];
        let right = vec![punct(3, 5)];
        let out = union_streams(&left, &right, 2);
        assert_eq!(out.iter().filter(|e| e.item.is_punctuation()).count(), 1);
    }

    #[test]
    fn pending_tracks_unmatched() {
        let mut u = Union::new(2);
        let mut out = Vec::new();
        u.on_element(
            Side::Left,
            StreamElement::Punctuation(Punctuation::close_value(2, 0, 1i64)),
            &mut out,
        );
        assert_eq!(u.pending(), (1, 0));
    }
}
