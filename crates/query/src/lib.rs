//! # squery
//!
//! A small push-based continuous-query engine, just large enough to run
//! the paper's motivating query (Fig. 1) end-to-end:
//!
//! ```text
//! Open ─┐
//!       ├─ PJoin(item_id) ── Out1 ── GroupBy(item_id, SUM(bid_increase))
//! Bid ──┘
//! ```
//!
//! The [`group_by::GroupBy`] operator is **blocking** over
//! unbounded streams — it can only emit a group's aggregate once it knows
//! the group is complete. Punctuations propagated by PJoin are exactly
//! that signal, which is why the paper's propagation machinery matters:
//! without it the group-by would never produce anything.
//!
//! Components:
//!
//! * [`operator::UnaryOperator`] — the push-based operator trait.
//! * [`select`], [`project`], [`group_by`], [`sink`] — the operators.
//! * [`plan`] — a pipeline of a binary join plus unary operators, with an
//!   executor that merges the two inputs by timestamp.

pub mod derive;
pub mod group_by;
pub mod operator;
pub mod plan;
pub mod project;
pub mod select;
pub mod sink;
pub mod union;

pub use derive::{DerivePunctuations, StaticConstraint};
pub use group_by::{Aggregate, GroupBy};
pub use operator::UnaryOperator;
pub use plan::{Pipeline, PipelineReport};
pub use project::Project;
pub use select::Select;
pub use sink::Sink;
pub use union::{union_streams, Union};
