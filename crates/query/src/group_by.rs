//! Punctuation-aware grouped aggregation — the downstream beneficiary of
//! PJoin's propagation in the paper's motivating query ("sum up
//! bid_increase values for each item").
//!
//! Grouped aggregation over an unbounded stream is *blocking*: a group's
//! aggregate is final only when no more tuples for the group can arrive.
//! An input punctuation covering a group's key is exactly that guarantee,
//! so the operator emits `(key, aggregate)` for every closed group and
//! forwards a punctuation for it.

use std::collections::HashMap;

use punct_types::{Pattern, Punctuation, StreamElement, Tuple, Value};

use crate::operator::UnaryOperator;

/// The supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// Number of tuples in the group.
    Count,
    /// Sum of the value attribute.
    Sum,
    /// Minimum of the value attribute.
    Min,
    /// Maximum of the value attribute.
    Max,
    /// Arithmetic mean of the value attribute.
    Avg,
}

#[derive(Debug, Clone, Copy, Default)]
struct Accumulator {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    fn update(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    fn finish(&self, agg: Aggregate) -> Value {
        match agg {
            Aggregate::Count => Value::Int(self.count as i64),
            Aggregate::Sum => Value::Float(self.sum),
            Aggregate::Min => Value::Float(self.min),
            Aggregate::Max => Value::Float(self.max),
            Aggregate::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum / self.count as f64)
                }
            }
        }
    }
}

/// Grouped aggregation keyed on one attribute, unblocked by punctuations.
///
/// Output tuples have the shape `(group_key, aggregate)`. For every
/// emitted group the operator also emits the punctuation
/// `<group_key, *>`, so further downstream operators benefit in turn.
///
/// ```
/// use squery::{Aggregate, GroupBy, UnaryOperator};
/// use punct_types::{Punctuation, StreamElement, Tuple, Value};
/// let mut g = GroupBy::new(0, 1, Aggregate::Sum);
/// let mut out = Vec::new();
/// g.on_element(Tuple::of((1i64, 2.5)).into(), &mut out);
/// g.on_element(Tuple::of((1i64, 1.5)).into(), &mut out);
/// assert!(out.is_empty()); // blocking until the group closes
/// g.on_element(Punctuation::close_value(2, 0, 1i64).into(), &mut out);
/// assert_eq!(out[0].as_tuple().unwrap().get(1), Some(&Value::Float(4.0)));
/// ```
pub struct GroupBy {
    group_attr: usize,
    value_attr: usize,
    aggregate: Aggregate,
    groups: HashMap<Value, Accumulator>,
    /// Keys in first-seen order, for deterministic emission.
    order: Vec<Value>,
}

impl GroupBy {
    /// Creates a grouped aggregation: groups on `group_attr`, aggregates
    /// `value_attr` with `aggregate`. (`value_attr` is ignored for
    /// [`Aggregate::Count`].)
    pub fn new(group_attr: usize, value_attr: usize, aggregate: Aggregate) -> GroupBy {
        GroupBy {
            group_attr,
            value_attr,
            aggregate,
            groups: HashMap::new(),
            order: Vec::new(),
        }
    }

    /// Number of currently open (unemitted) groups.
    pub fn open_groups(&self) -> usize {
        self.groups.len()
    }

    fn emit_closed(&mut self, pattern: &Pattern, out: &mut Vec<StreamElement>) {
        let mut emitted = Vec::new();
        self.order.retain(|key| {
            if pattern.matches(key) {
                if let Some(acc) = self.groups.remove(key) {
                    emitted.push((key.clone(), acc));
                }
                false
            } else {
                true
            }
        });
        for (key, acc) in emitted {
            out.push(StreamElement::Tuple(Tuple::new(vec![
                key.clone(),
                acc.finish(self.aggregate),
            ])));
            out.push(StreamElement::Punctuation(Punctuation::new(vec![
                Pattern::Constant(key),
                Pattern::Wildcard,
            ])));
        }
    }
}

impl UnaryOperator for GroupBy {
    fn on_element(&mut self, element: StreamElement, out: &mut Vec<StreamElement>) {
        match element {
            StreamElement::Tuple(t) => {
                let Some(key) = t.get(self.group_attr).cloned() else { return };
                let value = if self.aggregate == Aggregate::Count {
                    0.0
                } else {
                    match t.get(self.value_attr).and_then(Value::as_numeric) {
                        Some(v) => v,
                        None => return,
                    }
                };
                let acc = self.groups.entry(key.clone()).or_insert_with(|| {
                    self.order.push(key);
                    Accumulator::default()
                });
                acc.update(value);
            }
            StreamElement::Punctuation(p) => {
                // Only the group attribute's pattern closes groups; the
                // punctuation must not constrain other attributes we
                // cannot check (wildcards elsewhere are the sound case).
                let informative = p.pattern(self.group_attr).cloned();
                let others_wild = p
                    .patterns()
                    .iter()
                    .enumerate()
                    .all(|(i, pat)| i == self.group_attr || *pat == Pattern::Wildcard);
                if let (Some(pattern), true) = (informative, others_wild) {
                    self.emit_closed(&pattern, out);
                }
            }
        }
    }

    fn on_end(&mut self, out: &mut Vec<StreamElement>) {
        // Stream over: every remaining group is final.
        self.emit_closed(&Pattern::Wildcard, out);
    }

    fn name(&self) -> &'static str {
        "group-by"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tup(k: i64, v: f64) -> StreamElement {
        StreamElement::Tuple(Tuple::new(vec![Value::Int(k), Value::Float(v)]))
    }

    fn close(k: i64) -> StreamElement {
        StreamElement::Punctuation(Punctuation::close_value(2, 0, k))
    }

    #[test]
    fn blocks_until_punctuation() {
        let mut g = GroupBy::new(0, 1, Aggregate::Sum);
        let mut out = Vec::new();
        g.on_element(tup(1, 2.0), &mut out);
        g.on_element(tup(1, 3.0), &mut out);
        assert!(out.is_empty(), "group-by must block without punctuations");
        assert_eq!(g.open_groups(), 1);
        g.on_element(close(1), &mut out);
        assert_eq!(out.len(), 2); // result + punctuation
        let result = out[0].as_tuple().unwrap();
        assert_eq!(result.get(0), Some(&Value::Int(1)));
        assert_eq!(result.get(1), Some(&Value::Float(5.0)));
        assert!(out[1].is_punctuation());
        assert_eq!(g.open_groups(), 0);
    }

    #[test]
    fn punctuation_closes_only_matching_groups() {
        let mut g = GroupBy::new(0, 1, Aggregate::Count);
        let mut out = Vec::new();
        g.on_element(tup(1, 0.0), &mut out);
        g.on_element(tup(2, 0.0), &mut out);
        g.on_element(close(1), &mut out);
        assert_eq!(g.open_groups(), 1);
        assert_eq!(out[0].as_tuple().unwrap().get(1), Some(&Value::Int(1)));
    }

    #[test]
    fn range_punctuation_closes_span() {
        let mut g = GroupBy::new(0, 1, Aggregate::Max);
        let mut out = Vec::new();
        for k in 0..5 {
            g.on_element(tup(k, k as f64), &mut out);
        }
        g.on_element(
            StreamElement::Punctuation(Punctuation::on_attr(2, 0, Pattern::int_range(0, 2))),
            &mut out,
        );
        let results: Vec<_> = out.iter().filter(|e| e.is_tuple()).collect();
        assert_eq!(results.len(), 3);
        assert_eq!(g.open_groups(), 2);
    }

    #[test]
    fn end_flushes_remaining_groups() {
        let mut g = GroupBy::new(0, 1, Aggregate::Avg);
        let mut out = Vec::new();
        g.on_element(tup(7, 1.0), &mut out);
        g.on_element(tup(7, 3.0), &mut out);
        g.on_end(&mut out);
        let result = out[0].as_tuple().unwrap();
        assert_eq!(result.get(1), Some(&Value::Float(2.0)));
    }

    #[test]
    fn aggregates_compute_correctly() {
        for (agg, expect) in [
            (Aggregate::Count, Value::Int(3)),
            (Aggregate::Sum, Value::Float(6.0)),
            (Aggregate::Min, Value::Float(1.0)),
            (Aggregate::Max, Value::Float(3.0)),
            (Aggregate::Avg, Value::Float(2.0)),
        ] {
            let mut g = GroupBy::new(0, 1, agg);
            let mut out = Vec::new();
            for v in [1.0, 2.0, 3.0] {
                g.on_element(tup(1, v), &mut out);
            }
            g.on_element(close(1), &mut out);
            assert_eq!(out[0].as_tuple().unwrap().get(1), Some(&expect), "{agg:?}");
        }
    }

    #[test]
    fn ignores_punctuations_constraining_other_attrs() {
        let mut g = GroupBy::new(0, 1, Aggregate::Sum);
        let mut out = Vec::new();
        g.on_element(tup(1, 2.0), &mut out);
        // Constrains attribute 1 — not interpretable as a group closure.
        g.on_element(
            StreamElement::Punctuation(Punctuation::new(vec![
                Pattern::Constant(Value::Int(1)),
                Pattern::Constant(Value::Float(2.0)),
            ])),
            &mut out,
        );
        assert!(out.is_empty());
        assert_eq!(g.open_groups(), 1);
    }

    #[test]
    fn deterministic_emission_order() {
        let mut g = GroupBy::new(0, 1, Aggregate::Count);
        let mut out = Vec::new();
        g.on_element(tup(3, 0.0), &mut out);
        g.on_element(tup(1, 0.0), &mut out);
        g.on_element(tup(2, 0.0), &mut out);
        g.on_end(&mut out);
        let keys: Vec<i64> = out
            .iter()
            .filter_map(|e| e.as_tuple())
            .map(|t| t.get(0).unwrap().as_int().unwrap())
            .collect();
        assert_eq!(keys, vec![3, 1, 2], "first-seen order");
    }
}
