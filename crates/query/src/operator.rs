//! The push-based unary operator trait.

use punct_types::StreamElement;

/// A unary continuous-query operator: consumes one element at a time,
/// pushes any number of output elements.
///
/// Operators must respect punctuation semantics on their *output*: once
/// they emit a punctuation, no later output tuple may match it.
pub trait UnaryOperator {
    /// Processes one input element.
    fn on_element(&mut self, element: StreamElement, out: &mut Vec<StreamElement>);

    /// The input streams ended; flush any pending output.
    fn on_end(&mut self, _out: &mut Vec<StreamElement>) {}

    /// Operator name for plan display.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;
    use punct_types::Tuple;

    struct Echo;
    impl UnaryOperator for Echo {
        fn on_element(&mut self, element: StreamElement, out: &mut Vec<StreamElement>) {
            out.push(element);
        }
        fn name(&self) -> &'static str {
            "echo"
        }
    }

    #[test]
    fn trait_object_safety() {
        let mut op: Box<dyn UnaryOperator> = Box::new(Echo);
        let mut out = Vec::new();
        op.on_element(StreamElement::Tuple(Tuple::of((1i64,))), &mut out);
        op.on_end(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(op.name(), "echo");
    }
}
