//! Selection (filter) operator.

use punct_types::{StreamElement, Tuple};

use crate::operator::UnaryOperator;

/// Filters tuples by a predicate; punctuations pass through unchanged
/// (a punctuation that held for the full stream holds for any subset).
pub struct Select {
    predicate: Box<dyn FnMut(&Tuple) -> bool>,
}

impl Select {
    /// Creates a selection with the given predicate.
    pub fn new(predicate: impl FnMut(&Tuple) -> bool + 'static) -> Select {
        Select { predicate: Box::new(predicate) }
    }
}

impl UnaryOperator for Select {
    fn on_element(&mut self, element: StreamElement, out: &mut Vec<StreamElement>) {
        match element {
            StreamElement::Tuple(t) => {
                if (self.predicate)(&t) {
                    out.push(StreamElement::Tuple(t));
                }
            }
            p @ StreamElement::Punctuation(_) => out.push(p),
        }
    }

    fn name(&self) -> &'static str {
        "select"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use punct_types::{Punctuation, Value};

    #[test]
    fn filters_tuples() {
        let mut s = Select::new(|t| t.get(0).and_then(Value::as_int).is_some_and(|k| k > 5));
        let mut out = Vec::new();
        s.on_element(StreamElement::Tuple(Tuple::of((3i64,))), &mut out);
        s.on_element(StreamElement::Tuple(Tuple::of((7i64,))), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].as_tuple().unwrap().get(0), Some(&Value::Int(7)));
    }

    #[test]
    fn punctuations_pass_through() {
        let mut s = Select::new(|_| false);
        let mut out = Vec::new();
        s.on_element(StreamElement::Punctuation(Punctuation::close_value(1, 0, 1i64)), &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].is_punctuation());
    }
}
