//! Deriving punctuations from static constraints (paper §1.1):
//!
//! > "The query system itself can also derive punctuations based on the
//! > semantics of the application or certain static constraints,
//! > including the join between key and foreign key, clustered or
//! > ordered arrival of certain attribute values."
//!
//! [`DerivePunctuations`] wraps a stream whose declared
//! [`StaticConstraint`] licences punctuation insertion:
//!
//! * **Unique key** — every tuple's key value occurs once, so each tuple
//!   is immediately followed by a punctuation closing its value (the
//!   paper's Open-stream example).
//! * **Clustered arrival** — equal values arrive contiguously; when the
//!   value changes, the previous value is closed.
//! * **Ordered arrival** — values are non-decreasing; when the value
//!   increases, everything below it is closed with one range
//!   punctuation.
//!
//! The operator trusts the declared constraint. In debug builds a
//! violated constraint panics; in release it is silently tolerated
//! (emitting punctuations a malformed source then violates — exactly the
//! garbage-in case the validator in `streamgen::validate` exists for).

use punct_types::{Bound, Pattern, Punctuation, StreamElement, Value};

use crate::operator::UnaryOperator;

/// A static arrival constraint on one attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StaticConstraint {
    /// Every value of the attribute occurs in at most one tuple.
    UniqueKey,
    /// Equal values arrive contiguously (clustered).
    ClusteredArrival,
    /// Values arrive in non-decreasing order.
    OrderedArrival,
}

/// Inserts derived punctuations into a stream (see module docs).
///
/// ```
/// use squery::{DerivePunctuations, StaticConstraint, UnaryOperator};
/// use punct_types::Tuple;
/// let mut d = DerivePunctuations::new(StaticConstraint::UniqueKey, 0, 2);
/// let mut out = Vec::new();
/// d.on_element(Tuple::of((42i64, 0i64)).into(), &mut out);
/// assert_eq!(out.len(), 2); // the tuple, then <42, *>
/// assert!(out[1].is_punctuation());
/// ```
pub struct DerivePunctuations {
    constraint: StaticConstraint,
    attr: usize,
    width: usize,
    /// Last value seen (clustered: current cluster; ordered: current max).
    last: Option<Value>,
    /// Punctuations inserted so far.
    emitted: u64,
}

impl DerivePunctuations {
    /// Derives punctuations on attribute `attr` of `width`-ary tuples
    /// under `constraint`.
    pub fn new(constraint: StaticConstraint, attr: usize, width: usize) -> DerivePunctuations {
        DerivePunctuations { constraint, attr, width, last: None, emitted: 0 }
    }

    /// Number of punctuations derived so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    fn close_value(&mut self, v: Value, out: &mut Vec<StreamElement>) {
        self.emitted += 1;
        out.push(StreamElement::Punctuation(Punctuation::on_attr(
            self.width,
            self.attr,
            Pattern::Constant(v),
        )));
    }

    fn close_below(&mut self, v: Value, out: &mut Vec<StreamElement>) {
        self.emitted += 1;
        out.push(StreamElement::Punctuation(Punctuation::on_attr(
            self.width,
            self.attr,
            Pattern::Range { lo: Bound::Unbounded, hi: Bound::Exclusive(v) },
        )));
    }
}

impl UnaryOperator for DerivePunctuations {
    fn on_element(&mut self, element: StreamElement, out: &mut Vec<StreamElement>) {
        let StreamElement::Tuple(t) = &element else {
            // Punctuations already present pass through untouched.
            out.push(element);
            return;
        };
        let Some(v) = t.get(self.attr).cloned() else {
            out.push(element);
            return;
        };
        match self.constraint {
            StaticConstraint::UniqueKey => {
                out.push(element);
                self.close_value(v, out);
            }
            StaticConstraint::ClusteredArrival => {
                if let Some(prev) = self.last.take() {
                    if prev != v {
                        debug_assert!(
                            !v.is_null(),
                            "clustered stream should not interleave nulls"
                        );
                        self.close_value(prev.clone(), out);
                        self.last = Some(v);
                    } else {
                        self.last = Some(prev);
                    }
                } else {
                    self.last = Some(v);
                }
                out.push(element);
            }
            StaticConstraint::OrderedArrival => {
                debug_assert!(
                    self.last.as_ref().is_none_or(|prev| *prev <= v),
                    "ordered-arrival constraint violated"
                );
                if self.last.as_ref().is_some_and(|prev| *prev < v) {
                    self.close_below(v.clone(), out);
                }
                if self.last.as_ref().is_none_or(|prev| *prev < v) {
                    self.last = Some(v);
                }
                out.push(element);
            }
        }
    }

    fn on_end(&mut self, out: &mut Vec<StreamElement>) {
        // The stream is over: close whatever remained open.
        match self.constraint {
            StaticConstraint::UniqueKey => {}
            StaticConstraint::ClusteredArrival => {
                if let Some(prev) = self.last.take() {
                    self.close_value(prev, out);
                }
            }
            StaticConstraint::OrderedArrival => {
                if self.last.take().is_some() {
                    self.emitted += 1;
                    out.push(StreamElement::Punctuation(Punctuation::on_attr(
                        self.width,
                        self.attr,
                        Pattern::Wildcard,
                    )));
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "derive-punctuations"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use punct_types::Tuple;

    fn tup(k: i64) -> StreamElement {
        StreamElement::Tuple(Tuple::of((k, 0i64)))
    }

    fn run(
        mut op: DerivePunctuations,
        input: Vec<StreamElement>,
    ) -> Vec<StreamElement> {
        let mut out = Vec::new();
        for e in input {
            op.on_element(e, &mut out);
        }
        op.on_end(&mut out);
        out
    }

    /// The derived stream must be well-formed: no tuple may follow a
    /// punctuation it matches.
    fn assert_well_formed(elements: &[StreamElement]) {
        let mut seen: Vec<Punctuation> = Vec::new();
        for e in elements {
            match e {
                StreamElement::Tuple(t) => {
                    assert!(
                        !seen.iter().any(|p| p.matches(t)),
                        "tuple {t} violates an earlier derived punctuation"
                    );
                }
                StreamElement::Punctuation(p) => seen.push(p.clone()),
            }
        }
    }

    #[test]
    fn unique_key_punctuates_every_tuple() {
        let op = DerivePunctuations::new(StaticConstraint::UniqueKey, 0, 2);
        let out = run(op, vec![tup(3), tup(1), tup(7)]);
        assert_eq!(out.len(), 6);
        assert!(out[1].is_punctuation());
        assert!(out[1].as_punctuation().unwrap().matches(&Tuple::of((3i64, 99i64))));
        assert_well_formed(&out);
    }

    #[test]
    fn clustered_closes_previous_cluster() {
        let op = DerivePunctuations::new(StaticConstraint::ClusteredArrival, 0, 2);
        let out = run(op, vec![tup(1), tup(1), tup(2), tup(2), tup(5)]);
        let puncts: Vec<_> = out.iter().filter(|e| e.is_punctuation()).collect();
        // Clusters 1 and 2 closed at transitions, 5 closed at end.
        assert_eq!(puncts.len(), 3);
        assert_well_formed(&out);
        // Punctuation for cluster 1 arrives before the first 2-tuple.
        let first_punct = out.iter().position(|e| e.is_punctuation()).unwrap();
        assert!(out[first_punct].as_punctuation().unwrap().matches(&Tuple::of((1i64, 0i64))));
    }

    #[test]
    fn ordered_closes_ranges_below() {
        let op = DerivePunctuations::new(StaticConstraint::OrderedArrival, 0, 2);
        let out = run(op, vec![tup(1), tup(1), tup(4), tup(9)]);
        assert_well_formed(&out);
        let puncts: Vec<_> = out
            .iter()
            .filter_map(StreamElement::as_punctuation)
            .collect();
        // Increase to 4 closes (..,4); to 9 closes (..,9); end closes all.
        assert_eq!(puncts.len(), 3);
        assert!(puncts[0].matches(&Tuple::of((3i64, 0i64))));
        assert!(!puncts[0].matches(&Tuple::of((4i64, 0i64))));
        assert!(puncts[1].matches(&Tuple::of((4i64, 0i64))));
    }

    #[test]
    fn end_flush_closes_open_state() {
        let op = DerivePunctuations::new(StaticConstraint::ClusteredArrival, 0, 2);
        let out = run(op, vec![tup(1)]);
        assert_eq!(out.iter().filter(|e| e.is_punctuation()).count(), 1);
        // Empty stream: nothing to close.
        let op = DerivePunctuations::new(StaticConstraint::OrderedArrival, 0, 2);
        let out = run(op, vec![]);
        assert!(out.is_empty());
    }

    #[test]
    fn existing_punctuations_pass_through() {
        let mut op = DerivePunctuations::new(StaticConstraint::UniqueKey, 0, 2);
        let mut out = Vec::new();
        op.on_element(
            StreamElement::Punctuation(Punctuation::close_value(2, 0, 42i64)),
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(op.emitted(), 0);
    }

    #[test]
    fn emitted_counter() {
        let op = DerivePunctuations::new(StaticConstraint::UniqueKey, 0, 2);
        let mut op2 = op;
        let mut out = Vec::new();
        for k in 0..5 {
            op2.on_element(tup(k), &mut out);
        }
        assert_eq!(op2.emitted(), 5);
    }
}
