//! Query pipelines: a binary PJoin followed by a chain of unary
//! operators, executed over two timestamped input streams.

use pjoin::PJoin;
use punct_types::{StreamElement, Timestamped};
use stream_sim::{BinaryStreamOp, OpOutput, Side, Work};

use crate::operator::UnaryOperator;
use crate::sink::Sink;

/// Execution report of a pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Final output.
    pub sink: Sink,
    /// Elements the join emitted (before the unary chain).
    pub join_output_tuples: u64,
    /// Punctuations the join propagated.
    pub join_output_puncts: u64,
    /// Total operator work (cost-model units).
    pub work: Work,
}

/// A pipeline: PJoin at the base, then a chain of unary operators.
pub struct Pipeline {
    join: PJoin,
    ops: Vec<Box<dyn UnaryOperator>>,
}

impl Pipeline {
    /// Creates a pipeline over the given join.
    pub fn new(join: PJoin) -> Pipeline {
        Pipeline { join, ops: Vec::new() }
    }

    /// Appends a unary operator.
    pub fn then(mut self, op: impl UnaryOperator + 'static) -> Pipeline {
        self.ops.push(Box::new(op));
        self
    }

    /// Human-readable plan, join first.
    pub fn describe(&self) -> String {
        let mut parts = vec!["pjoin".to_string()];
        parts.extend(self.ops.iter().map(|o| o.name().to_string()));
        parts.join(" -> ")
    }

    /// Executes the pipeline over two timestamp-ordered input streams,
    /// merging them by arrival time.
    pub fn execute(
        mut self,
        left: &[Timestamped<StreamElement>],
        right: &[Timestamped<StreamElement>],
    ) -> PipelineReport {
        let mut sink = Sink::new();
        let mut join_out = OpOutput::new();
        let mut join_output_tuples = 0u64;
        let mut join_output_puncts = 0u64;
        let mut work = Work::ZERO;

        let (mut li, mut ri) = (0usize, 0usize);
        loop {
            let next = match (left.get(li), right.get(ri)) {
                (Some(l), Some(r)) => {
                    if l.ts <= r.ts {
                        li += 1;
                        Some((Side::Left, l))
                    } else {
                        ri += 1;
                        Some((Side::Right, r))
                    }
                }
                (Some(l), None) => {
                    li += 1;
                    Some((Side::Left, l))
                }
                (None, Some(r)) => {
                    ri += 1;
                    Some((Side::Right, r))
                }
                (None, None) => break,
            };
            let (side, e) = next.expect("loop breaks on None");
            self.join.on_element(side, e.item.clone(), e.ts, &mut join_out);
            work += self.join.take_work();
            Self::forward(
                &mut join_out,
                &mut self.ops,
                &mut sink,
                &mut join_output_tuples,
                &mut join_output_puncts,
            );
        }

        // Stream end: drain the join, then flush the unary chain.
        let end_ts = left
            .last()
            .map(|e| e.ts)
            .into_iter()
            .chain(right.last().map(|e| e.ts))
            .max()
            .unwrap_or_default();
        while self.join.on_end(end_ts, &mut join_out) {
            work += self.join.take_work();
            Self::forward(
                &mut join_out,
                &mut self.ops,
                &mut sink,
                &mut join_output_tuples,
                &mut join_output_puncts,
            );
        }
        for i in 0..self.ops.len() {
            let mut flushed = Vec::new();
            self.ops[i].on_end(&mut flushed);
            Self::forward_from(flushed, &mut self.ops[i + 1..], &mut sink);
        }

        PipelineReport { sink, join_output_tuples, join_output_puncts, work }
    }

    fn forward(
        join_out: &mut OpOutput,
        ops: &mut [Box<dyn UnaryOperator>],
        sink: &mut Sink,
        tuples: &mut u64,
        puncts: &mut u64,
    ) {
        let elements: Vec<StreamElement> = join_out.drain().collect();
        for e in &elements {
            match e {
                StreamElement::Tuple(_) => *tuples += 1,
                StreamElement::Punctuation(_) => *puncts += 1,
            }
        }
        Self::forward_from(elements, ops, sink);
    }

    fn forward_from(
        elements: Vec<StreamElement>,
        ops: &mut [Box<dyn UnaryOperator>],
        sink: &mut Sink,
    ) {
        match ops.split_first_mut() {
            None => {
                for e in elements {
                    sink.push(e);
                }
            }
            Some((first, rest)) => {
                let mut out = Vec::new();
                for e in elements {
                    first.on_element(e, &mut out);
                }
                Self::forward_from(out, rest, sink);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group_by::{Aggregate, GroupBy};
    use crate::select::Select;
    use pjoin::PJoinBuilder;
    use punct_types::{Punctuation, Timestamp, Tuple, Value};

    fn tup(ts: u64, k: i64, v: i64) -> Timestamped<StreamElement> {
        Timestamped::new(Timestamp(ts), StreamElement::Tuple(Tuple::of((k, v))))
    }

    fn punct(ts: u64, k: i64) -> Timestamped<StreamElement> {
        Timestamped::new(
            Timestamp(ts),
            StreamElement::Punctuation(Punctuation::close_value(2, 0, k)),
        )
    }

    fn join() -> PJoin {
        PJoinBuilder::new(2, 2)
            .eager_purge()
            .eager_index_build()
            .propagate_every(1)
            .build()
    }

    #[test]
    fn join_only_pipeline() {
        let left = vec![tup(1, 7, 10), punct(5, 7)];
        let right = vec![tup(2, 7, 20), punct(6, 7)];
        let report = Pipeline::new(join()).execute(&left, &right);
        assert_eq!(report.sink.tuple_count(), 1);
        assert!(report.sink.punctuation_count() >= 1);
        assert_eq!(report.join_output_tuples, 1);
    }

    #[test]
    fn join_then_select() {
        let left = vec![tup(1, 1, 10), tup(2, 2, 10)];
        let right = vec![tup(3, 1, 5), tup(4, 2, 50)];
        let pipeline = Pipeline::new(join())
            .then(Select::new(|t| t.get(3).and_then(Value::as_int).is_some_and(|v| v >= 10)));
        assert_eq!(pipeline.describe(), "pjoin -> select");
        let report = pipeline.execute(&left, &right);
        assert_eq!(report.sink.tuple_count(), 1);
        assert_eq!(report.join_output_tuples, 2);
    }

    #[test]
    fn join_then_group_by_unblocks_via_propagation() {
        // Keys 1 and 2; both closed on both inputs -> group-by emits both
        // groups *before* stream end thanks to propagated punctuations.
        let left = vec![tup(1, 1, 0), tup(2, 2, 0), punct(10, 1), punct(11, 2)];
        let right = vec![
            tup(3, 1, 100),
            tup(4, 1, 200),
            tup(5, 2, 300),
            punct(12, 1),
            punct(13, 2),
        ];
        // Group on the A-side key (attr 0), sum the B-side value (attr 3).
        let pipeline = Pipeline::new(join()).then(GroupBy::new(0, 3, Aggregate::Sum));
        let report = pipeline.execute(&left, &right);
        let tuples = report.sink.tuples().into_iter().cloned().collect::<Vec<_>>();
        assert_eq!(tuples.len(), 2);
        let mut sums: Vec<(i64, f64)> = tuples
            .iter()
            .map(|t| {
                (
                    t.get(0).unwrap().as_int().unwrap(),
                    t.get(1).unwrap().as_numeric().unwrap(),
                )
            })
            .collect();
        sums.sort_by_key(|&(k, _)| k);
        assert_eq!(sums, vec![(1, 300.0), (2, 300.0)]);
    }

    #[test]
    fn group_by_blocks_without_propagation() {
        let no_prop = PJoinBuilder::new(2, 2).eager_purge().no_propagation().build();
        let left = vec![tup(1, 1, 0), punct(10, 1)];
        let right = vec![tup(3, 1, 100), punct(12, 1)];
        let report = Pipeline::new(no_prop).then(GroupBy::new(0, 3, Aggregate::Sum)).execute(
            &left,
            &right,
        );
        // Only the group-by's end-of-stream flush produces the result —
        // punctuation never reached it.
        assert_eq!(report.join_output_puncts, 0);
        assert_eq!(report.sink.tuple_count(), 1);
    }
}
