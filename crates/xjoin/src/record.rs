//! XJoin's stored-tuple record: a tuple plus its memory-residency
//! interval `[ATS, DTS)`.
//!
//! ATS/DTS are **logical instants** — a counter the operator bumps for
//! every processed element and every reactive disk-join run — rather than
//! virtual-time stamps. Wall/virtual clocks can tie (several events at
//! one instant), and a tie between "probed the state" and "was relocated"
//! makes interval overlap ambiguous, producing duplicate or lost results;
//! a per-event logical clock makes every interval comparison strict.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use punct_types::Tuple;
use spillstore::{codec, CodecError, Record};

/// A logical instant of the operator's event clock.
pub type Instant = u64;

/// Departure instant meaning "still memory-resident".
pub const DTS_RESIDENT: Instant = Instant::MAX;

/// A stored tuple with XJoin residency instants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XRecord {
    /// The data tuple.
    pub tuple: Tuple,
    /// Arrival instant.
    pub ats: Instant,
    /// Departure instant: set when the tuple's bucket is relocated to
    /// disk; [`DTS_RESIDENT`] while it is still in memory.
    pub dts: Instant,
}

impl XRecord {
    /// A freshly-arrived, memory-resident record.
    pub fn arriving(tuple: Tuple, ats: Instant) -> XRecord {
        XRecord { tuple, ats, dts: DTS_RESIDENT }
    }

    /// True while the record has not been relocated.
    pub fn is_resident(&self) -> bool {
        self.dts == DTS_RESIDENT
    }

    /// True if the memory-residency intervals of `self` and `other`
    /// overlapped — i.e. stage 1 already joined this pair.
    pub fn residency_overlaps(&self, other: &XRecord) -> bool {
        self.ats < other.dts && other.ats < self.dts
    }
}

impl Record for XRecord {
    fn tuple(&self) -> &Tuple {
        &self.tuple
    }

    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.ats);
        buf.put_u64_le(self.dts);
        codec::encode_tuple(&self.tuple, buf);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        if buf.remaining() < 16 {
            return Err(CodecError::UnexpectedEof);
        }
        let ats = buf.get_u64_le();
        let dts = buf.get_u64_le();
        let tuple = codec::decode_tuple(buf)?;
        Ok(XRecord { tuple, ats, dts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arriving_is_resident() {
        let r = XRecord::arriving(Tuple::of((1i64,)), 10);
        assert!(r.is_resident());
        assert_eq!(r.ats, 10);
    }

    #[test]
    fn overlap_detection() {
        // a resident [10, ∞), b resident [5, 20): overlap (both in memory
        // during [10, 20)).
        let a = XRecord::arriving(Tuple::of((1i64,)), 10);
        let mut b = XRecord::arriving(Tuple::of((1i64,)), 5);
        b.dts = 20;
        assert!(a.residency_overlaps(&b));
        assert!(b.residency_overlaps(&a));

        // b left memory at 20; c arrived at 25: no overlap.
        let c = XRecord::arriving(Tuple::of((1i64,)), 25);
        assert!(!b.residency_overlaps(&c));
        assert!(!c.residency_overlaps(&b));

        // Boundary: c arrived exactly when b departed — no overlap
        // (intervals are half-open).
        let d = XRecord::arriving(Tuple::of((1i64,)), 20);
        assert!(!b.residency_overlaps(&d));
    }

    #[test]
    fn codec_round_trip() {
        let mut r = XRecord::arriving(Tuple::of((7i64, "x", 2.5)), 123);
        r.dts = 456;
        let mut buf = BytesMut::new();
        r.encode(&mut buf);
        let back = XRecord::decode(&mut buf.freeze()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn resident_dts_round_trips() {
        let r = XRecord::arriving(Tuple::of((1i64,)), 1);
        let mut buf = BytesMut::new();
        r.encode(&mut buf);
        let back = XRecord::decode(&mut buf.freeze()).unwrap();
        assert!(back.is_resident());
    }
}
