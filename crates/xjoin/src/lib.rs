//! # xjoin
//!
//! The **XJoin** baseline (Urhan & Franklin): a symmetric hash equi-join
//! for streams with a memory-overflow resolution but *no*
//! constraint-exploiting mechanism — the operator the paper compares
//! PJoin against in §4.1 and §4.3.
//!
//! The implementation follows the original three-stage design:
//!
//! 1. **Memory-to-memory** (per arriving tuple): probe the memory-resident
//!    portion of the opposite state's matching bucket, emit results,
//!    insert the tuple into its own state. When memory exceeds the
//!    threshold, *state relocation* spills the largest bucket to disk.
//! 2. **Reactive disk-to-memory** (while inputs are blocked): read a
//!    spilled bucket back and probe the opposite memory portion. An
//!    *activation threshold* (minimum disk pages) gates how aggressively
//!    this stage runs.
//! 3. **Cleanup** (end of streams): complete every remaining match.
//!
//! Duplicate results are prevented exactly as in the original: every
//! tuple carries an arrival timestamp (ATS) and a departure timestamp
//! (DTS, set when its bucket is relocated); stage 2/3 only emit pairs
//! whose memory-residency intervals did **not** overlap, and each stage-2
//! run logs a `(DTS_last, ProbeTS)` history entry so later stages skip
//! already-probed combinations.
//!
//! Punctuations are consumed and discarded — XJoin has no use for them,
//! which is precisely the contrast the experiments measure.

pub mod history;
pub mod operator;
pub mod record;

pub use history::ProbeHistory;
pub use operator::{XJoin, XJoinConfig};
pub use record::XRecord;
