//! The XJoin operator.

use punct_types::{StreamElement, Timestamp, Tuple};
use spillstore::{PartitionedStore, SimDisk, SpillPolicy, StoreConfig};
use stream_sim::{BinaryStreamOp, OpOutput, Side, Work};

use crate::history::ProbeHistory;
use crate::record::{Instant, XRecord};

/// XJoin configuration.
#[derive(Debug, Clone)]
pub struct XJoinConfig {
    /// Number of hash buckets per input state.
    pub buckets: usize,
    /// Join attribute index in stream A tuples.
    pub join_attr_a: usize,
    /// Join attribute index in stream B tuples.
    pub join_attr_b: usize,
    /// Records per disk page.
    pub page_tuples: usize,
    /// Combined in-memory tuple budget across both states; exceeding it
    /// triggers state relocation. `0` disables spilling (unbounded memory,
    /// the configuration used when the paper's testbed never overflowed).
    pub memory_max_tuples: usize,
    /// Minimum disk pages in a bucket before the reactive stage 2
    /// considers it — XJoin's *activation threshold*.
    pub activation_pages: u64,
}

impl Default for XJoinConfig {
    fn default() -> XJoinConfig {
        XJoinConfig {
            buckets: 64,
            join_attr_a: 0,
            join_attr_b: 0,
            page_tuples: 64,
            memory_max_tuples: 0,
            activation_pages: 1,
        }
    }
}

/// Bookkeeping of the most recent stage-2 run over a bucket, used to skip
/// runs that cannot produce anything new.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LastRun {
    disk_len: usize,
    newest_opposite_ats: Instant,
}

/// The XJoin operator (see crate docs).
pub struct XJoin {
    config: XJoinConfig,
    store_a: PartitionedStore<XRecord>,
    store_b: PartitionedStore<XRecord>,
    history_a: ProbeHistory,
    history_b: ProbeHistory,
    last_run_a: Vec<Option<LastRun>>,
    last_run_b: Vec<Option<LastRun>>,
    /// The logical event clock: bumped once per processed element and per
    /// reactive disk-join run. ATS/DTS and probe instants come from here,
    /// so residency-interval comparisons are never ambiguous even when
    /// several events share a virtual timestamp.
    instant: Instant,
    /// Newest arrival instant per side (eligibility checks for stage 2).
    newest_ats_a: Instant,
    newest_ats_b: Instant,
    work: Work,
    cleanup_cursor: usize,
    cleanup_started: bool,
}

impl XJoin {
    /// Creates an XJoin over in-memory simulated disks.
    pub fn new(config: XJoinConfig) -> XJoin {
        XJoin::with_backends(config, Box::new(SimDisk::new()), Box::new(SimDisk::new()))
    }

    /// Creates an XJoin whose spill states live on explicit disk backends
    /// (e.g. real [`spillstore::FileDisk`]s).
    pub fn with_backends(
        config: XJoinConfig,
        backend_a: Box<dyn spillstore::DiskBackend>,
        backend_b: Box<dyn spillstore::DiskBackend>,
    ) -> XJoin {
        let store = |attr: usize, backend: Box<dyn spillstore::DiskBackend>| {
            PartitionedStore::new(
                StoreConfig {
                    buckets: config.buckets,
                    join_attr: attr,
                    page_tuples: config.page_tuples,
                    spill_policy: SpillPolicy::LargestMemory,
                },
                backend,
            )
        };
        XJoin {
            store_a: store(config.join_attr_a, backend_a),
            store_b: store(config.join_attr_b, backend_b),
            history_a: ProbeHistory::new(config.buckets),
            history_b: ProbeHistory::new(config.buckets),
            last_run_a: vec![None; config.buckets],
            last_run_b: vec![None; config.buckets],
            instant: 0,
            newest_ats_a: 0,
            newest_ats_b: 0,
            work: Work::ZERO,
            cleanup_cursor: 0,
            cleanup_started: false,
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &XJoinConfig {
        &self.config
    }

    fn join_attr(&self, side: Side) -> usize {
        match side {
            Side::Left => self.config.join_attr_a,
            Side::Right => self.config.join_attr_b,
        }
    }

    fn emit(out: &mut OpOutput, side: Side, arriving: &Tuple, stored: &Tuple) {
        // Result schema is always A ⧺ B.
        let result = match side {
            Side::Left => arriving.concat(stored),
            Side::Right => stored.concat(arriving),
        };
        out.push(result);
    }

    /// Stage 1: memory-to-memory probe + insert.
    fn memory_join(&mut self, side: Side, tuple: Tuple, out: &mut OpOutput) {
        let now = self.instant;
        let attr = self.join_attr(side);
        let Some(key) = tuple.get(attr).cloned() else { return };
        self.work.hashes += 1;

        {
            let opposite = match side {
                Side::Left => &self.store_b,
                Side::Right => &self.store_a,
            };
            let opp_attr = self.join_attr(side.opposite());
            for rec in opposite.probe_memory(&key) {
                self.work.probe_cmps += 1;
                if rec.tuple.get(opp_attr).is_some_and(|v| v.join_eq(&key)) {
                    self.work.outputs += 1;
                    Self::emit(out, side, &tuple, &rec.tuple);
                }
            }
        }

        let own = match side {
            Side::Left => {
                self.newest_ats_a = now;
                &mut self.store_a
            }
            Side::Right => {
                self.newest_ats_b = now;
                &mut self.store_b
            }
        };
        own.insert(XRecord::arriving(tuple, now));
        self.work.inserts += 1;

        self.enforce_memory_threshold(now);
    }

    /// State relocation: spill largest buckets until under the threshold.
    /// Departure instants are `now + 1`: relocated records were still
    /// probe-able at instant `now`.
    fn enforce_memory_threshold(&mut self, now: Instant) {
        if self.config.memory_max_tuples == 0 {
            return;
        }
        while self.store_a.memory_tuples() + self.store_b.memory_tuples()
            > self.config.memory_max_tuples
        {
            let store = if self.store_a.memory_tuples() >= self.store_b.memory_tuples() {
                &mut self.store_a
            } else {
                &mut self.store_b
            };
            let Some(victim) = store.peek_spill_victim() else { break };
            // Stamp departure instants, then relocate.
            store.for_each_memory_bucket_mut(victim, |r| r.dts = now + 1);
            let report = store.spill_bucket(victim);
            self.work.pages_written += report.pages_written;
            if report.tuples_moved == 0 {
                break;
            }
        }
    }

    /// Picks the stage-2 candidate: the eligible bucket with the most disk
    /// pages across both sides.
    fn stage2_candidate(&self) -> Option<(Side, usize)> {
        let mut best: Option<(Side, usize, usize)> = None;
        for (side, store, last_run, newest_opp) in [
            (Side::Left, &self.store_a, &self.last_run_a, self.newest_ats_b),
            (Side::Right, &self.store_b, &self.last_run_b, self.newest_ats_a),
        ] {
            for idx in store.buckets_with_disk() {
                let bucket = store.bucket(idx);
                let pages = bucket.disk_pages().len() as u64;
                if pages < self.config.activation_pages {
                    continue;
                }
                // Skip runs that cannot produce anything new: the disk
                // portion is unchanged and no opposite tuple arrived since.
                if let Some(run) = last_run[idx] {
                    if run.disk_len == bucket.disk_len()
                        && newest_opp <= run.newest_opposite_ats
                    {
                        continue;
                    }
                }
                if best.is_none_or(|(_, _, p)| pages as usize > p) {
                    best = Some((side, idx, pages as usize));
                }
            }
        }
        best.map(|(s, i, _)| (s, i))
    }

    /// Stage 2: read one spilled bucket, probe the opposite memory.
    fn disk_join(&mut self, side: Side, idx: usize, now: Instant, out: &mut OpOutput) {
        let (store, opposite, history, last_run, opp_attr, newest_opp) = match side {
            Side::Left => (
                &mut self.store_a,
                &self.store_b,
                &mut self.history_a,
                &mut self.last_run_a,
                self.config.join_attr_b,
                self.newest_ats_b,
            ),
            Side::Right => (
                &mut self.store_b,
                &self.store_a,
                &mut self.history_b,
                &mut self.last_run_b,
                self.config.join_attr_a,
                self.newest_ats_a,
            ),
        };
        let attr = store.config().join_attr;
        let (disk_records, pages_read) = store.read_disk(idx);
        self.work.pages_read += pages_read;
        if disk_records.is_empty() {
            return;
        }
        let mut dts_last = 0;
        for a in &disk_records {
            dts_last = dts_last.max(a.dts);
            let Some(key) = a.tuple.get(attr) else { continue };
            for b in opposite.bucket(idx).iter() {
                self.work.probe_cmps += 1;
                if !b.tuple.get(opp_attr).is_some_and(|v| v.join_eq(key)) {
                    continue;
                }
                if a.residency_overlaps(b) {
                    continue; // already produced by stage 1
                }
                if history.covers(idx, a, b) {
                    continue; // already produced by an earlier stage-2 run
                }
                self.work.outputs += 1;
                match side {
                    Side::Left => out.push(a.tuple.concat(&b.tuple)),
                    Side::Right => out.push(b.tuple.concat(&a.tuple)),
                }
            }
        }
        history.log(idx, dts_last, now);
        last_run[idx] = Some(LastRun {
            disk_len: disk_records.len(),
            newest_opposite_ats: newest_opp,
        });
    }

    /// Stage 3: cleanup of one bucket index (all remaining A×B combos).
    /// A bucket neither of whose sides ever spilled needs no cleanup:
    /// all of its pairs met in stage 1.
    fn cleanup_bucket(&mut self, idx: usize, out: &mut OpOutput) {
        if !self.store_a.bucket(idx).has_disk_portion()
            && !self.store_b.bucket(idx).has_disk_portion()
        {
            return;
        }
        let gather = |store: &mut PartitionedStore<XRecord>,
                      work: &mut Work|
         -> Vec<XRecord> {
            let mut all: Vec<XRecord> = store.bucket(idx).iter().cloned().collect();
            if store.bucket(idx).has_disk_portion() {
                let (disk, pages) = store.read_disk(idx);
                work.pages_read += pages;
                all.extend(disk);
            }
            all
        };
        let a_all = gather(&mut self.store_a, &mut self.work);
        if a_all.is_empty() {
            return;
        }
        let b_all = gather(&mut self.store_b, &mut self.work);
        if b_all.is_empty() {
            return;
        }
        let (attr_a, attr_b) = (self.config.join_attr_a, self.config.join_attr_b);
        for a in &a_all {
            let Some(key) = a.tuple.get(attr_a) else { continue };
            for b in &b_all {
                self.work.probe_cmps += 1;
                if !b.tuple.get(attr_b).is_some_and(|v| v.join_eq(key)) {
                    continue;
                }
                if a.residency_overlaps(b) {
                    continue; // stage 1
                }
                if self.history_a.covers(idx, a, b) || self.history_b.covers(idx, b, a) {
                    continue; // stage 2
                }
                self.work.outputs += 1;
                out.push(a.tuple.concat(&b.tuple));
            }
        }
    }

    /// Immutable view of the A state (tests, metrics).
    pub fn store_a(&self) -> &PartitionedStore<XRecord> {
        &self.store_a
    }

    /// Immutable view of the B state (tests, metrics).
    pub fn store_b(&self) -> &PartitionedStore<XRecord> {
        &self.store_b
    }
}

impl BinaryStreamOp for XJoin {
    fn on_element(
        &mut self,
        side: Side,
        element: StreamElement,
        ts: Timestamp,
        out: &mut OpOutput,
    ) {
        let _ = ts; // virtual arrival time is irrelevant to join logic
        match element {
            StreamElement::Tuple(t) => self.memory_join(side, t, out),
            StreamElement::Punctuation(_) => {
                // XJoin has no constraint-exploiting mechanism: ingesting a
                // punctuation costs its bookkeeping overhead and nothing else.
                self.work.puncts_processed += 1;
            }
        }
        self.instant += 1;
    }

    fn on_idle(&mut self, _now: Timestamp, out: &mut OpOutput) -> bool {
        match self.stage2_candidate() {
            Some((side, idx)) => {
                let probe_instant = self.instant;
                self.instant += 1;
                self.disk_join(side, idx, probe_instant, out);
                true
            }
            None => false,
        }
    }

    fn on_end(&mut self, _now: Timestamp, out: &mut OpOutput) -> bool {
        if !self.cleanup_started {
            self.cleanup_started = true;
            self.cleanup_cursor = 0;
        }
        if self.cleanup_cursor >= self.config.buckets {
            return false;
        }
        let idx = self.cleanup_cursor;
        self.cleanup_cursor += 1;
        self.cleanup_bucket(idx, out);
        true
    }

    fn take_work(&mut self) -> Work {
        std::mem::take(&mut self.work)
    }

    fn state_tuples(&self) -> usize {
        self.store_a.total_tuples() + self.store_b.total_tuples()
    }

    fn state_memory_tuples(&self) -> usize {
        self.store_a.memory_tuples() + self.store_b.memory_tuples()
    }

    fn state_tuples_per_side(&self) -> (usize, usize) {
        (self.store_a.total_tuples(), self.store_b.total_tuples())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use punct_types::{Timestamped, Value};
    use stream_sim::{CostModel, Driver, DriverConfig};

    fn tup_at(us: u64, k: i64, payload: i64) -> Timestamped<StreamElement> {
        Timestamped::new(Timestamp(us), StreamElement::Tuple(Tuple::of((k, payload))))
    }

    fn run(
        config: XJoinConfig,
        left: &[Timestamped<StreamElement>],
        right: &[Timestamped<StreamElement>],
    ) -> (Vec<Tuple>, XJoin) {
        let mut op = XJoin::new(config);
        let driver = Driver::new(DriverConfig {
            cost: CostModel::free(),
            sample_every_micros: 1_000_000,
            collect_outputs: true,
            ..DriverConfig::default()
        });
        let stats = driver.run(&mut op, left, right);
        let mut outs: Vec<Tuple> = stats
            .outputs
            .into_iter()
            .filter_map(|o| match o.item {
                StreamElement::Tuple(t) => Some(t),
                StreamElement::Punctuation(_) => None,
            })
            .collect();
        outs.sort();
        (outs, op)
    }

    /// Reference: nested-loop join of all tuple pairs.
    fn reference_join(
        left: &[Timestamped<StreamElement>],
        right: &[Timestamped<StreamElement>],
        attr_a: usize,
        attr_b: usize,
    ) -> Vec<Tuple> {
        let mut out = Vec::new();
        for l in left.iter().filter_map(|e| e.item.as_tuple()) {
            for r in right.iter().filter_map(|e| e.item.as_tuple()) {
                if l.get(attr_a)
                    .zip(r.get(attr_b))
                    .is_some_and(|(a, b)| a.join_eq(b))
                {
                    out.push(l.concat(r));
                }
            }
        }
        out.sort();
        out
    }

    #[test]
    fn joins_matching_keys_in_memory() {
        let left = vec![tup_at(1, 10, 100), tup_at(3, 20, 101)];
        let right = vec![tup_at(2, 10, 200), tup_at(4, 30, 201)];
        let (outs, _) = run(XJoinConfig::default(), &left, &right);
        assert_eq!(outs, vec![Tuple::of((10i64, 100i64, 10i64, 200i64))]);
    }

    #[test]
    fn many_to_many_multiplicity() {
        let left: Vec<_> = (0..3).map(|i| tup_at(i * 2 + 1, 7, i as i64)).collect();
        let right: Vec<_> = (0..4).map(|i| tup_at(i * 2 + 2, 7, 100 + i as i64)).collect();
        let (outs, _) = run(XJoinConfig::default(), &left, &right);
        assert_eq!(outs.len(), 12);
        assert_eq!(outs, reference_join(&left, &right, 0, 0));
    }

    #[test]
    fn matches_reference_without_spilling() {
        let left: Vec<_> = (0..60).map(|i| tup_at(i * 3 + 1, (i % 7) as i64, i as i64)).collect();
        let right: Vec<_> =
            (0..60).map(|i| tup_at(i * 3 + 2, (i % 5) as i64, 1000 + i as i64)).collect();
        let (outs, op) = run(XJoinConfig::default(), &left, &right);
        assert_eq!(outs, reference_join(&left, &right, 0, 0));
        assert_eq!(op.state_tuples(), 120);
        assert_eq!(op.state_memory_tuples(), 120); // nothing spilled
    }

    #[test]
    fn matches_reference_with_heavy_spilling() {
        // Tiny memory budget: nearly everything relocates to disk; stage 2
        // and 3 must complete the join without duplicates or losses.
        let cfg = XJoinConfig {
            buckets: 4,
            page_tuples: 4,
            memory_max_tuples: 8,
            ..XJoinConfig::default()
        };
        let left: Vec<_> =
            (0..80).map(|i| tup_at(i * 5 + 1, (i % 9) as i64, i as i64)).collect();
        let right: Vec<_> =
            (0..80).map(|i| tup_at(i * 5 + 3, (i % 6) as i64, 1000 + i as i64)).collect();
        let (outs, op) = run(cfg, &left, &right);
        assert_eq!(outs, reference_join(&left, &right, 0, 0));
        assert!(op.store_a().io_stats().pages_written > 0, "spilling must have happened");
    }

    #[test]
    fn stage2_runs_during_idle_gaps() {
        // Arrivals with large gaps so the driver offers idle slots, small
        // memory so buckets spill early.
        let cfg = XJoinConfig {
            buckets: 2,
            page_tuples: 2,
            memory_max_tuples: 4,
            activation_pages: 1,
            ..XJoinConfig::default()
        };
        let left: Vec<_> = (0..30).map(|i| tup_at(i * 10_000 + 1, (i % 3) as i64, i as i64)).collect();
        let right: Vec<_> =
            (0..30).map(|i| tup_at(i * 10_000 + 5_000, (i % 3) as i64, 50 + i as i64)).collect();
        let (outs, op) = run(cfg, &left, &right);
        assert_eq!(outs, reference_join(&left, &right, 0, 0));
        assert!(op.store_a().io_stats().pages_read > 0, "stage 2/3 must have read pages");
    }

    #[test]
    fn duplicate_free_under_repeated_spill_and_probe() {
        // Same key everywhere: maximal overlap between stages.
        let cfg = XJoinConfig {
            buckets: 1,
            page_tuples: 2,
            memory_max_tuples: 3,
            activation_pages: 1,
            ..XJoinConfig::default()
        };
        let left: Vec<_> = (0..20).map(|i| tup_at(i * 7_000 + 1, 1, i as i64)).collect();
        let right: Vec<_> = (0..20).map(|i| tup_at(i * 7_000 + 3_500, 1, 100 + i as i64)).collect();
        let (outs, _) = run(cfg, &left, &right);
        // 20 x 20 cross product on the single key.
        assert_eq!(outs.len(), 400);
        assert_eq!(outs, reference_join(&left, &right, 0, 0));
    }

    #[test]
    fn punctuations_are_ignored() {
        let punct = Timestamped::new(
            Timestamp(2),
            StreamElement::Punctuation(punct_types::Punctuation::close_value(2, 0, 10i64)),
        );
        let left = vec![tup_at(1, 10, 0), punct, tup_at(5, 11, 0)];
        let right = vec![tup_at(3, 10, 1)];
        let (outs, op) = run(XJoinConfig::default(), &left, &right);
        assert_eq!(outs.len(), 1);
        // State never shrinks on punctuations.
        assert_eq!(op.state_tuples(), 3);
    }

    #[test]
    fn state_grows_monotonically() {
        let cfg = XJoinConfig::default();
        let left: Vec<_> = (0..50).map(|i| tup_at(i * 2 + 1, i as i64, 0)).collect();
        let right: Vec<_> = (0..50).map(|i| tup_at(i * 2 + 2, i as i64, 1)).collect();
        let mut op = XJoin::new(cfg);
        let driver = Driver::new(DriverConfig {
            cost: CostModel::free(),
            sample_every_micros: 10,
            collect_outputs: false,
            ..DriverConfig::default()
        });
        let stats = driver.run(&mut op, &left, &right);
        for w in stats.samples.windows(2) {
            assert!(w[0].state_total <= w[1].state_total);
        }
        assert_eq!(op.state_tuples(), 100);
    }

    #[test]
    fn null_join_keys_never_match() {
        let left = vec![Timestamped::new(
            Timestamp(1),
            StreamElement::Tuple(Tuple::new(vec![Value::Null, Value::Int(1)])),
        )];
        let right = vec![Timestamped::new(
            Timestamp(2),
            StreamElement::Tuple(Tuple::new(vec![Value::Null, Value::Int(2)])),
        )];
        let (outs, _) = run(XJoinConfig::default(), &left, &right);
        assert!(outs.is_empty());
    }

    #[test]
    fn different_join_attrs_per_side() {
        let cfg = XJoinConfig { join_attr_a: 1, join_attr_b: 0, ..XJoinConfig::default() };
        let left = vec![tup_at(1, 99, 5)]; // joins on attr 1 = 5
        let right = vec![tup_at(2, 5, 42)]; // joins on attr 0 = 5
        let (outs, _) = run(cfg, &left, &right);
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0], Tuple::of((99i64, 5i64, 5i64, 42i64)));
    }

    #[test]
    fn work_counters_accumulate() {
        let mut op = XJoin::new(XJoinConfig::default());
        let mut out = OpOutput::new();
        op.on_element(Side::Left, StreamElement::Tuple(Tuple::of((1i64, 0i64))), Timestamp(1), &mut out);
        op.on_element(Side::Right, StreamElement::Tuple(Tuple::of((1i64, 1i64))), Timestamp(2), &mut out);
        let w = op.take_work();
        assert_eq!(w.inserts, 2);
        assert_eq!(w.outputs, 1);
        assert!(w.probe_cmps >= 1);
        assert!(op.take_work().is_zero());
    }
}
