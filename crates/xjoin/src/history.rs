//! Stage-2 probe history for duplicate prevention.
//!
//! Every reactive disk-to-memory run over a bucket is logged as
//! `(DTS_last, ProbeTS)`: *all disk-resident tuples with `dts ≤ DTS_last`
//! were probed against the opposite memory portion at logical instant
//! `ProbeTS`*. Later stage-2 runs and the final cleanup consult the log
//! to skip pairs that were already produced.

use crate::record::{Instant, XRecord};

/// One logged stage-2 run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeEntry {
    /// All disk tuples with `dts <= dts_last` participated.
    pub dts_last: Instant,
    /// The logical instant of the probe.
    pub probe_ts: Instant,
}

/// Probe history for the buckets of one input side.
#[derive(Debug, Clone)]
pub struct ProbeHistory {
    entries: Vec<Vec<ProbeEntry>>,
}

impl ProbeHistory {
    /// Creates an empty history for `buckets` buckets.
    pub fn new(buckets: usize) -> ProbeHistory {
        ProbeHistory { entries: vec![Vec::new(); buckets] }
    }

    /// Logs a stage-2 run over `bucket`.
    pub fn log(&mut self, bucket: usize, dts_last: Instant, probe_ts: Instant) {
        self.entries[bucket].push(ProbeEntry { dts_last, probe_ts });
    }

    /// Entries for a bucket.
    pub fn entries(&self, bucket: usize) -> &[ProbeEntry] {
        &self.entries[bucket]
    }

    /// True if the pair (disk-resident `a` from this side's `bucket`,
    /// opposite tuple `b`) was already produced by a logged stage-2 run:
    /// `a` was on disk by the run (`a.dts <= dts_last`) and `b` was
    /// memory-resident at the run (`b.ats <= probe_ts < b.dts`).
    pub fn covers(&self, bucket: usize, a: &XRecord, b: &XRecord) -> bool {
        self.entries[bucket]
            .iter()
            .any(|e| a.dts <= e.dts_last && b.ats <= e.probe_ts && b.dts > e.probe_ts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use punct_types::Tuple;

    fn rec(ats: u64, dts: u64) -> XRecord {
        let mut r = XRecord::arriving(Tuple::of((1i64,)), ats);
        r.dts = dts;
        r
    }

    #[test]
    fn empty_history_covers_nothing() {
        let h = ProbeHistory::new(4);
        assert!(!h.covers(0, &rec(0, 10), &rec(5, u64::MAX)));
        assert!(h.entries(0).is_empty());
    }

    #[test]
    fn covers_probed_pair() {
        let mut h = ProbeHistory::new(2);
        // Run at instant 100 over bucket 1, covering disk tuples with
        // dts <= 50.
        h.log(1, 50, 100);
        let a = rec(0, 40); // on disk by the run
        let b = rec(60, u64::MAX); // in memory at instant 100
        assert!(h.covers(1, &a, &b));
        // Different bucket: not covered.
        assert!(!h.covers(0, &a, &b));
    }

    #[test]
    fn does_not_cover_late_disk_tuple() {
        let mut h = ProbeHistory::new(1);
        h.log(0, 50, 100);
        let a = rec(0, 70); // spilled after the run's dts_last
        let b = rec(60, u64::MAX);
        assert!(!h.covers(0, &a, &b));
    }

    #[test]
    fn does_not_cover_tuple_arriving_after_probe() {
        let mut h = ProbeHistory::new(1);
        h.log(0, 50, 100);
        let a = rec(0, 40);
        let b = rec(150, u64::MAX); // arrived after the probe
        assert!(!h.covers(0, &a, &b));
    }

    #[test]
    fn does_not_cover_tuple_already_spilled_at_probe() {
        let mut h = ProbeHistory::new(1);
        h.log(0, 50, 100);
        let a = rec(0, 40);
        let b = rec(10, 90); // left memory before the probe
        assert!(!h.covers(0, &a, &b));
    }

    #[test]
    fn multiple_entries_accumulate_coverage() {
        let mut h = ProbeHistory::new(1);
        h.log(0, 50, 100);
        h.log(0, 80, 200);
        let a = rec(0, 70); // covered only by the second run
        let b = rec(60, u64::MAX);
        assert!(h.covers(0, &a, &b));
    }
}
