//! Property-based correctness of the XJoin baseline: over randomized
//! arrival interleavings and randomized spill pressure, the output must
//! equal the reference nested-loop join — exactly once per pair — no
//! matter how tuples migrate between memory and disk across the three
//! stages.

use proptest::prelude::*;
use punct_types::{StreamElement, Timestamp, Timestamped, Tuple};
use stream_sim::{BinaryStreamOp, CostModel, Driver, DriverConfig};
use xjoin::{XJoin, XJoinConfig};

#[derive(Debug, Clone)]
struct Stream {
    /// (gap, key, payload) steps.
    steps: Vec<(u8, u8, u8)>,
}

fn arb_stream(max_len: usize) -> impl Strategy<Value = Stream> {
    proptest::collection::vec((0u8..30, 0u8..8, any::<u8>()), 0..max_len)
        .prop_map(|steps| Stream { steps })
}

fn render(s: &Stream, payload_base: i64) -> Vec<Timestamped<StreamElement>> {
    let mut ts = 0u64;
    s.steps
        .iter()
        .map(|&(gap, key, payload)| {
            ts += 1 + gap as u64;
            Timestamped::new(
                Timestamp(ts),
                StreamElement::Tuple(Tuple::of((key as i64, payload_base + payload as i64))),
            )
        })
        .collect()
}

fn reference(
    left: &[Timestamped<StreamElement>],
    right: &[Timestamped<StreamElement>],
) -> Vec<Tuple> {
    let mut out = Vec::new();
    for l in left.iter().filter_map(|e| e.item.as_tuple()) {
        for r in right.iter().filter_map(|e| e.item.as_tuple()) {
            if l.get(0).zip(r.get(0)).is_some_and(|(a, b)| a.join_eq(b)) {
                out.push(l.concat(r));
            }
        }
    }
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn xjoin_equals_reference_under_spill_pressure(
        sa in arb_stream(50),
        sb in arb_stream(50),
        buckets in 1usize..6,
        page_tuples in 1usize..8,
        // 0 = never spill; small values force constant relocation.
        memory_max in prop_oneof![Just(0usize), 2usize..24],
        activation in 1u64..4,
    ) {
        let left = render(&sa, 0);
        let right = render(&sb, 1000);
        let mut op = XJoin::new(XJoinConfig {
            buckets,
            page_tuples,
            memory_max_tuples: memory_max,
            activation_pages: activation,
            ..XJoinConfig::default()
        });
        let driver = Driver::new(DriverConfig {
            cost: CostModel::free(),
            sample_every_micros: 1_000_000,
            collect_outputs: true,
            ..DriverConfig::default()
        });
        let stats = driver.run(&mut op, &left, &right);
        let mut got: Vec<Tuple> =
            stats.outputs.iter().filter_map(|o| o.item.as_tuple().cloned()).collect();
        got.sort();
        prop_assert_eq!(got, reference(&left, &right));
    }

    #[test]
    fn xjoin_work_accounting_is_consistent(
        sa in arb_stream(30),
        sb in arb_stream(30),
    ) {
        let left = render(&sa, 0);
        let right = render(&sb, 1000);
        let mut op = XJoin::new(XJoinConfig::default());
        let driver = Driver::new(DriverConfig {
            cost: CostModel::free(),
            sample_every_micros: 1_000_000,
            collect_outputs: true,
            ..DriverConfig::default()
        });
        let stats = driver.run(&mut op, &left, &right);
        // Every input tuple was inserted exactly once, and outputs were
        // counted exactly as emitted.
        prop_assert_eq!(stats.total_work.inserts as usize, left.len() + right.len());
        prop_assert_eq!(stats.total_work.outputs, stats.total_out_tuples);
        prop_assert_eq!(op.state_tuples(), left.len() + right.len());
    }
}
