//! The cluster coordinator: owner of the shard map, router of the data
//! plane, and conductor of punctuation-coordinated repartitioning.
//!
//! One [`Cluster`] value is the whole control surface: it accepts worker
//! handshakes, routes every pushed element to the worker owning its
//! shard (through per-worker fault-tolerant [`StreamSender`]s, optionally
//! behind a [`FaultProxy`]), merges worker sinks into one output stream,
//! and aligns punctuation propagations across workers so the merged
//! stream carries each ingested punctuation **exactly once** — the
//! cluster is indistinguishable from one single-threaded PJoin to a
//! downstream consumer, modulo output order.
//!
//! ## The migration state machine
//!
//! [`Cluster::repartition`] runs one synchronous epoch change:
//!
//! 1. **Arm**: `MigrateBegin { epoch, nonce }` to every worker on the
//!    control plane.
//! 2. **Barrier**: an Empty-pattern punctuation down *both* data streams
//!    of *every* worker, then flush — the barrier is ordered behind all
//!    earlier elements and delivered exactly once even through a faulty
//!    link, because it is an ordinary sequenced element.
//! 3. **Drain**: each worker publishes its sink marker, reports
//!    `BarrierReached`, and exports its state; the coordinator consumes
//!    each sink up to the marker so every pre-barrier output (and
//!    propagation observation) lands before the new epoch exists.
//! 4. **Rehash + install**: exported records are re-partitioned under
//!    the new map and shipped to their new owners, followed by
//!    `MigrateCommit`; workers echo the commit.
//! 5. **Re-inject**: punctuations ingested before the barrier but not
//!    yet fully propagated are re-sent through the new topology, with
//!    fresh aligner expectations — never-dropped, never-duplicated.
//!
//! Pushes are rejected while a migration is in flight (single migration
//! at a time is a cluster-v1 constraint, enforced by construction: this
//! method is synchronous).

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener};
use std::time::{Duration, Instant};

use pjoin::components::propagation::translate_punctuation;
use pjoin::PJoinConfig;
use punct_exec::{route_punctuation, AlignOutcome, Aligner, Route};
use punct_trace::{wall_now_ns, TelemetryMsg};
use punct_net::{
    ClientOptions, FaultConfig, FaultProxy, Frame, ProxyStats, SinkSubscriber, StreamSender,
    WIRE_VERSION,
};
use punct_types::{
    partition, PunctSeq, Punctuation, ShardMap, StreamElement, Timestamp, Timestamped, Tuple,
    Value,
};
use stream_sim::Side;

use crate::error::ClusterError;
use crate::protocol::{
    barrier_punct, encode_config, is_barrier, CtrlConn, JoinSpec, TelemetrySettings,
    CTRL_TIMEOUT, MIGRATE_CHUNK,
};
use crate::telemetry::ClusterTelemetry;

/// Clock probes per worker during assembly; the minimum-RTT sample wins,
/// so a short burst over a hot loopback connection bounds the offset
/// error to a few tens of microseconds.
const CLOCK_PROBES: u32 = 5;

/// How a cluster is assembled and driven.
#[derive(Debug, Clone)]
pub struct ClusterOptions {
    /// The join every shard runs.
    pub spec: JoinSpec,
    /// Worker processes expected to join.
    pub workers: usize,
    /// Initial number of global shards.
    pub shards: usize,
    /// Data-plane client options (per-worker stream senders).
    pub client: ClientOptions,
    /// When set, a [`FaultProxy`] with this configuration is spawned in
    /// front of **each worker's ingest server**, so every data-plane
    /// link misbehaves independently.
    pub fault: Option<FaultConfig>,
    /// Deadline for any single control-plane exchange.
    pub ctrl_timeout: Duration,
    /// How the telemetry plane runs (shipped to workers in the config
    /// blob). Default: enabled, 1 s report interval, tracing on.
    pub telemetry: TelemetrySettings,
}

impl ClusterOptions {
    /// A cluster of `workers` workers serving `shards` shards of the
    /// `spec` join, with default transport options and clean links.
    pub fn new(spec: JoinSpec, workers: usize, shards: usize) -> ClusterOptions {
        ClusterOptions {
            spec,
            workers,
            shards,
            client: ClientOptions::default(),
            fault: None,
            ctrl_timeout: CTRL_TIMEOUT,
            telemetry: TelemetrySettings::default(),
        }
    }
}

/// One repartition's accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationStats {
    /// The epoch the migration activated.
    pub epoch: u64,
    /// Global shard count after the migration.
    pub shards: usize,
    /// Records moved (sum over shards and sides).
    pub records_moved: u64,
    /// Punctuations re-injected through the new topology.
    pub puncts_reinjected: u64,
    /// Wall-clock duration of the whole migration (the data-plane pause).
    pub pause: Duration,
    /// Pause share spent reaching the barrier and draining sinks to
    /// their markers (phases 1–3b).
    pub drain: Duration,
    /// Pause share spent collecting exported state (phase 3c).
    pub export: Duration,
    /// Pause share spent rehashing, shipping, and committing the new
    /// epoch (phase 4).
    pub install: Duration,
    /// Pause share spent re-injecting pending punctuations (phase 5).
    pub reinject: Duration,
}

/// Final accounting for one cluster run.
#[derive(Debug)]
pub struct ClusterReport {
    /// The merged output stream (tuples + punctuations, arrival order).
    pub outputs: Vec<Timestamped<StreamElement>>,
    /// Elements pushed into the cluster (tuples + punctuations, not
    /// counting barriers or re-injections).
    pub pushed: u64,
    /// Every completed migration, in order.
    pub migrations: Vec<MigrationStats>,
    /// Data-plane reconnects summed over senders (fault recovery).
    pub sender_reconnects: u32,
    /// Per-worker fault-proxy stats, when proxies were configured.
    pub proxy_stats: Vec<ProxyStats>,
    /// The merged cluster telemetry (final worker flushes folded in).
    pub telemetry: ClusterTelemetry,
}

struct WorkerLink {
    ctrl: CtrlConn,
    proxy: Option<FaultProxy>,
    left: StreamSender,
    right: StreamSender,
    sink: SinkSubscriber,
    sink_done: bool,
}

impl WorkerLink {
    fn sender(&mut self, side: Side) -> &mut StreamSender {
        match side {
            Side::Left => &mut self.left,
            Side::Right => &mut self.right,
        }
    }
}

/// A running cluster, from the driving process's point of view.
pub struct Cluster {
    opts: ClusterOptions,
    cfg: PJoinConfig,
    listener: TcpListener,
    ctrl_addr: SocketAddr,
    map: ShardMap,
    links: Vec<WorkerLink>,
    aligner: Aligner,
    next_seq: u64,
    /// Input punctuations not yet emitted downstream, by aligner
    /// sequence — the re-injection log.
    pending_log: HashMap<u64, (Side, Punctuation)>,
    /// Outputs drained from worker sinks, ready for the caller.
    ready: Vec<Timestamped<StreamElement>>,
    clock: Timestamp,
    pushed: u64,
    migrations: Vec<MigrationStats>,
    telem: ClusterTelemetry,
}

impl Cluster {
    /// Binds the control endpoint. Workers can be launched against
    /// [`ctrl_addr`](Cluster::ctrl_addr) as soon as this returns;
    /// [`accept_workers`](Cluster::accept_workers) completes the
    /// assembly.
    pub fn bind(opts: ClusterOptions) -> Result<Cluster, ClusterError> {
        assert!(opts.workers > 0, "a cluster needs at least one worker");
        assert!(opts.workers <= 64, "the punctuation aligner masks at most 64 workers");
        assert!(opts.shards >= opts.workers, "fewer shards than workers leaves workers idle");
        assert!(opts.shards <= 64, "shard routing masks at most 64 global shards");
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let ctrl_addr = listener.local_addr()?;
        let cfg = opts.spec.pjoin_config();
        Ok(Cluster {
            cfg,
            listener,
            ctrl_addr,
            map: ShardMap { epoch: 0, assignment: Vec::new() },
            links: Vec::new(),
            aligner: Aligner::new(),
            next_seq: 0,
            pending_log: HashMap::new(),
            ready: Vec::new(),
            clock: Timestamp(0),
            pushed: 0,
            migrations: Vec::new(),
            telem: ClusterTelemetry::new(opts.workers, opts.telemetry),
            opts,
        })
    }

    /// The control-plane address workers join through.
    pub fn ctrl_addr(&self) -> SocketAddr {
        self.ctrl_addr
    }

    /// The active shard map.
    pub fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    /// Accepts the configured number of worker handshakes, wires the
    /// data plane (senders + sink subscriptions, with fault proxies when
    /// configured), and activates the initial shard-map epoch on every
    /// worker. Returns once all workers acknowledged the epoch.
    pub fn accept_workers(&mut self) -> Result<(), ClusterError> {
        let deadline = Instant::now() + self.opts.ctrl_timeout;
        let mut joined: Vec<Option<WorkerLink>> = Vec::new();
        joined.resize_with(self.opts.workers, || None);
        self.listener.set_nonblocking(true)?;
        while joined.iter().any(Option::is_none) {
            if Instant::now() >= deadline {
                return Err(ClusterError::Timeout("worker handshakes".into()));
            }
            let sock = match self.listener.accept() {
                Ok((sock, _)) => sock,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    std::thread::sleep(Duration::from_millis(5));
                    continue;
                }
                Err(e) => return Err(ClusterError::Io(e)),
            };
            let mut ctrl = CtrlConn::from_stream(sock)?;
            let frame = ctrl.recv_deadline(deadline, "JoinCluster")?;
            let Frame::JoinCluster { wire_version, worker, ingest_addr, sink_addr } = frame
            else {
                return Err(ClusterError::Protocol(format!(
                    "expected JoinCluster, got {frame:?}"
                )));
            };
            if wire_version != WIRE_VERSION {
                ctrl.send(&Frame::Error {
                    code: punct_net::error_code::VERSION_MISMATCH,
                    message: format!(
                        "coordinator speaks wire v{WIRE_VERSION}, worker spoke v{wire_version}"
                    ),
                })?;
                return Err(ClusterError::Protocol(format!(
                    "worker {worker} speaks wire v{wire_version}, expected v{WIRE_VERSION}"
                )));
            }
            let idx = worker as usize;
            if idx >= joined.len() || joined[idx].is_some() {
                return Err(ClusterError::Protocol(format!(
                    "unexpected or duplicate worker index {worker}"
                )));
            }
            let ingest: SocketAddr = ingest_addr
                .parse()
                .map_err(|_| ClusterError::Protocol(format!("bad ingest addr {ingest_addr}")))?;
            let sink: SocketAddr = sink_addr
                .parse()
                .map_err(|_| ClusterError::Protocol(format!("bad sink addr {sink_addr}")))?;
            let proxy = match &self.opts.fault {
                Some(cfg) => {
                    // Give each link an independent fault schedule.
                    let mut cfg = *cfg;
                    cfg.seed = cfg.seed.wrapping_add(0x9E37_79B9 * (idx as u64 + 1));
                    Some(FaultProxy::spawn(ingest, cfg)?)
                }
                None => None,
            };
            let data_addr = proxy.as_ref().map_or(ingest, FaultProxy::addr);
            let left = StreamSender::new(
                data_addr,
                0,
                Side::Left,
                self.opts.spec.side_schema(Side::Left),
                self.opts.client.clone(),
            );
            let right = StreamSender::new(
                data_addr,
                1,
                Side::Right,
                self.opts.spec.side_schema(Side::Right),
                self.opts.client.clone(),
            );
            joined[idx] = Some(WorkerLink {
                ctrl,
                proxy,
                left,
                right,
                sink: SinkSubscriber::new(sink),
                sink_done: false,
            });
        }
        self.links = joined.into_iter().map(|l| l.expect("all slots filled")).collect();

        // Activate epoch 1 through the unified staged-install path:
        // ShardMapUpdate stages, MigrateCommit activates and is echoed.
        self.map = ShardMap::round_robin(1, self.opts.shards, self.opts.workers);
        let blob = encode_config(&self.opts.spec, &self.opts.telemetry);
        for (idx, link) in self.links.iter_mut().enumerate() {
            link.ctrl.send(&Frame::ShardMapUpdate {
                worker: idx as u32,
                map: self.map.clone(),
                config: blob.clone(),
            })?;
            link.ctrl.send(&Frame::MigrateCommit { epoch: 1 })?;
        }
        self.await_commits(1)?;
        self.sync_clocks()?;
        Ok(())
    }

    /// Estimates each worker's clock offset with a burst of
    /// request-response probes over the control plane (min-RTT sample
    /// wins). Runs after the workers enter their serve loops, so acks
    /// return within one poll interval.
    fn sync_clocks(&mut self) -> Result<(), ClusterError> {
        if !self.opts.telemetry.enabled {
            return Ok(());
        }
        let deadline = Instant::now() + self.opts.ctrl_timeout;
        for w in 0..self.links.len() {
            for probe in 0..CLOCK_PROBES {
                let payload =
                    TelemetryMsg::ClockProbe { probe, t0_ns: wall_now_ns() }.encode();
                self.links[w].ctrl.send(&Frame::Telemetry { payload })?;
                let want = self.telem.clock(w).samples() + 1;
                while self.telem.clock(w).samples() < want {
                    match self.links[w].ctrl.recv_deadline(deadline, "clock ack")? {
                        Frame::Telemetry { payload } => self.ingest_telemetry(w, &payload)?,
                        other => {
                            return Err(ClusterError::Protocol(format!(
                                "expected a clock ack from worker {w}, got {other:?}"
                            )))
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Routes one element to the worker(s) owning it under the active
    /// map. Tuples go to exactly one worker; punctuations go to every
    /// worker owning a shard they can close, with an aligner expectation
    /// so the merged output carries them exactly once.
    pub fn push(
        &mut self,
        side: Side,
        element: Timestamped<StreamElement>,
    ) -> Result<(), ClusterError> {
        self.clock = self.clock.max(element.ts);
        self.pushed += 1;
        match element.item {
            StreamElement::Tuple(ref t) => {
                let hash = t.get(self.opts.spec.join_attr(side)).and_then(Value::join_hash);
                let worker = self.map.worker_of(partition(hash, self.map.shards())) as usize;
                self.links[worker].sender(side).push(element)?;
                Ok(())
            }
            StreamElement::Punctuation(ref p) => {
                if p.width() != self.opts.spec.side_width(side) {
                    // Mirror the single-threaded operator: ignore.
                    return Ok(());
                }
                if is_barrier(p, self.opts.spec.join_attr(side)) {
                    return Err(ClusterError::Protocol(
                        "Empty-pattern punctuations on the join attribute are reserved \
                         for cluster barriers"
                            .into(),
                    ));
                }
                let p = p.clone();
                let seq = self.next_seq;
                self.next_seq += 1;
                self.route_punct(side, &p, seq, element.ts)?;
                self.pending_log.insert(seq, (side, p));
                Ok(())
            }
        }
    }

    /// Convenience: push a tuple arriving at `ts` on `side`.
    pub fn push_tuple(&mut self, side: Side, ts: u64, tuple: Tuple) -> Result<(), ClusterError> {
        self.push(side, Timestamped::new(Timestamp(ts), StreamElement::Tuple(tuple)))
    }

    /// Convenience: push a punctuation arriving at `ts` on `side`.
    pub fn push_punct(
        &mut self,
        side: Side,
        ts: u64,
        punct: Punctuation,
    ) -> Result<(), ClusterError> {
        self.push(side, Timestamped::new(Timestamp(ts), StreamElement::Punctuation(punct)))
    }

    /// Registers the aligner expectation for punctuation `p` (sequence
    /// `seq`) under the active map and sends it to every target worker.
    fn route_punct(
        &mut self,
        side: Side,
        p: &Punctuation,
        seq: u64,
        ts: Timestamp,
    ) -> Result<(), ClusterError> {
        let route = route_punctuation(p, side, &self.cfg, self.map.shards());
        let workers = self.target_workers(&route);
        debug_assert!(!workers.is_empty(), "every shard has an owner");
        if self.opts.telemetry.enabled {
            let side_idx = if side == Side::Left { 0u8 } else { 1u8 };
            self.telem.note_route(seq, side_idx, p.content_hash(), wall_now_ns(), &workers);
        }
        let mask = workers.iter().fold(0u64, |m, &w| m | (1 << w));
        let translated = translate_punctuation(
            p,
            self.opts.spec.side_offset(side),
            self.opts.spec.output_width(),
        );
        self.aligner.expect(translated, PunctSeq(seq), mask);
        for w in workers {
            self.links[w]
                .sender(side)
                .push(Timestamped::new(ts, StreamElement::Punctuation(p.clone())))?;
        }
        Ok(())
    }

    /// The distinct workers owning any shard of `route`, ascending.
    fn target_workers(&self, route: &Route) -> Vec<usize> {
        let shard_mask = route.mask(self.map.shards());
        let mut workers: Vec<usize> = (0..self.map.shards())
            .filter(|s| shard_mask & (1 << s) != 0)
            .map(|s| self.map.worker_of(s) as usize)
            .collect();
        workers.sort_unstable();
        workers.dedup();
        workers
    }

    /// Drains whatever the worker sinks have published so far, in
    /// arrival order per worker. Tuples pass through; punctuation
    /// propagations are merged by the aligner (exactly one copy emitted
    /// once every target worker propagated). Call this periodically
    /// while pushing to keep sink buffers small.
    pub fn poll_outputs(&mut self) -> Result<Vec<Timestamped<StreamElement>>, ClusterError> {
        self.drain_telemetry()?;
        for w in 0..self.links.len() {
            loop {
                if self.links[w].sink_done {
                    break;
                }
                match self.links[w].sink.next(Duration::from_millis(1))? {
                    Some(element) => {
                        self.absorb(w, element, false)?;
                    }
                    None => break,
                }
            }
        }
        Ok(std::mem::take(&mut self.ready))
    }

    /// Folds one sink element into the merged output. `marker_ok` admits
    /// the migration sink marker (only the repartition drain sets it).
    /// Returns whether the element was that marker.
    fn absorb(
        &mut self,
        worker: usize,
        element: Timestamped<StreamElement>,
        marker_ok: bool,
    ) -> Result<bool, ClusterError> {
        match element.item {
            StreamElement::Tuple(_) => {
                self.ready.push(element);
                Ok(false)
            }
            StreamElement::Punctuation(ref p) => {
                if is_barrier(p, self.opts.spec.join_attr_a) {
                    if marker_ok {
                        return Ok(true);
                    }
                    return Err(ClusterError::Protocol(format!(
                        "worker {worker} published a sink marker outside a migration"
                    )));
                }
                let (outcome, seq) = self.aligner.observe_seq(worker, p);
                if self.opts.telemetry.enabled {
                    if let Some(s) = seq {
                        self.telem.note_observe(worker, s.0, wall_now_ns());
                    }
                }
                match outcome {
                    AlignOutcome::Emit => {
                        let s = seq.expect("emit resolves an instance").0;
                        self.pending_log.remove(&s);
                        if self.opts.telemetry.enabled {
                            self.telem.note_merge(s, wall_now_ns());
                        }
                        self.ready.push(element);
                        Ok(false)
                    }
                    AlignOutcome::Pending => Ok(false),
                    AlignOutcome::Unexpected => Err(ClusterError::Protocol(format!(
                        "worker {worker} propagated an unregistered punctuation {p}"
                    ))),
                }
            }
        }
    }

    /// Receives the next **non-telemetry** control frame from `worker`,
    /// folding any interleaved telemetry pushes into the aggregator —
    /// periodic reports are asynchronous to the migration protocol, so
    /// every blocking control-plane wait must tolerate them.
    fn recv_ctrl(
        &mut self,
        worker: usize,
        deadline: Instant,
        what: &str,
    ) -> Result<Frame, ClusterError> {
        loop {
            let frame = self.links[worker].ctrl.recv_deadline(deadline, what)?;
            match frame {
                Frame::Telemetry { payload } => self.ingest_telemetry(worker, &payload)?,
                other => return Ok(other),
            }
        }
    }

    /// Non-blocking drain of pending telemetry pushes on every control
    /// link. Outside a migration, telemetry is the only frame workers
    /// originate, so anything else is a protocol error.
    fn drain_telemetry(&mut self) -> Result<(), ClusterError> {
        if !self.opts.telemetry.enabled {
            return Ok(());
        }
        for w in 0..self.links.len() {
            while let Some(frame) = self.links[w].ctrl.poll_recv()? {
                match frame {
                    Frame::Telemetry { payload } => self.ingest_telemetry(w, &payload)?,
                    other => {
                        return Err(ClusterError::Protocol(format!(
                            "unexpected control frame from worker {w}: {other:?}"
                        )))
                    }
                }
            }
        }
        Ok(())
    }

    /// Folds one telemetry payload from `worker` into the aggregator.
    fn ingest_telemetry(&mut self, worker: usize, payload: &[u8]) -> Result<(), ClusterError> {
        let t1 = wall_now_ns();
        let msg = TelemetryMsg::decode(payload).map_err(|e| {
            ClusterError::Protocol(format!("worker {worker} sent a bad telemetry payload: {e}"))
        })?;
        match msg {
            TelemetryMsg::ClockAck { t0_ns, worker_ns, .. } => {
                self.telem.observe_clock(worker, t0_ns, worker_ns, t1);
            }
            TelemetryMsg::Report(report) => {
                if report.worker as usize != worker {
                    return Err(ClusterError::Protocol(format!(
                        "worker {worker} sent a report claiming worker {}",
                        report.worker
                    )));
                }
                self.telem.ingest_report(worker, *report);
            }
            TelemetryMsg::ClockProbe { .. } => {
                return Err(ClusterError::Protocol(format!(
                    "worker {worker} sent a clock probe; only the coordinator probes"
                )))
            }
        }
        Ok(())
    }

    /// Elastically repartitions the cluster to `new_shards` global
    /// shards: barrier, drain, migrate, commit, re-inject. Synchronous —
    /// when this returns the new epoch is active everywhere and pushes
    /// may resume. No join output is lost or duplicated across the
    /// resize, and no punctuation is propagated twice.
    pub fn repartition(&mut self, new_shards: usize) -> Result<MigrationStats, ClusterError> {
        assert!(new_shards >= self.opts.workers, "fewer shards than workers");
        assert!(new_shards <= 64, "shard routing masks at most 64 global shards");
        let t0 = Instant::now();
        let epoch = self.map.epoch + 1;
        let nonce = epoch;
        let deadline = Instant::now() + self.opts.ctrl_timeout;

        // 1. Arm every worker.
        for link in &mut self.links {
            link.ctrl.send(&Frame::MigrateBegin { epoch, nonce })?;
        }
        // 2. Barrier both streams of every worker, then flush: once
        // flushed, the barrier (and everything before it) is in each
        // worker's ingest channel exactly once.
        let ts = self.clock;
        for link in &mut self.links {
            for side in [Side::Left, Side::Right] {
                let b = barrier_punct(&self.opts.spec, side);
                link.sender(side).push(Timestamped::new(ts, StreamElement::Punctuation(b)))?;
            }
            link.left.flush()?;
            link.right.flush()?;
        }
        // 3a. Workers confirm the barrier crossed both their streams.
        for w in 0..self.links.len() {
            let frame = self.recv_ctrl(w, deadline, "BarrierReached")?;
            match frame {
                Frame::BarrierReached { nonce: got } if got == nonce => {}
                other => {
                    return Err(ClusterError::Protocol(format!(
                        "expected BarrierReached({nonce}) from worker {w}, got {other:?}"
                    )))
                }
            }
        }
        // 3b. Drain each sink to its marker: every pre-barrier output
        // and propagation observation lands before the new epoch.
        for w in 0..self.links.len() {
            loop {
                match self.links[w].sink.next(Duration::from_millis(200))? {
                    Some(element) => {
                        if self.absorb(w, element, true)? {
                            break;
                        }
                    }
                    None => {
                        if Instant::now() >= deadline {
                            return Err(ClusterError::Timeout(format!(
                                "sink marker from worker {w}"
                            )));
                        }
                    }
                }
            }
        }
        let t_drained = Instant::now();
        // 3c. Collect every worker's exported state.
        let mut moved: Vec<(Side, u64, Tuple)> = Vec::new();
        for w in 0..self.links.len() {
            let mut announced: Option<u64> = None;
            let mut got: u64 = 0;
            while announced != Some(got) {
                let frame = self.recv_ctrl(w, deadline, "migration state")?;
                match frame {
                    Frame::MigrateState { side, records, .. } => {
                        let side = if side == 0 { Side::Left } else { Side::Right };
                        got += records.len() as u64;
                        moved.extend(
                            records.into_iter().map(|(us, t)| (side, us, t)),
                        );
                    }
                    Frame::MigrateStateDone { records } => {
                        if records < got {
                            return Err(ClusterError::Protocol(format!(
                                "worker {w} announced {records} records after sending {got}"
                            )));
                        }
                        announced = Some(records);
                        if records == got {
                            break;
                        }
                    }
                    other => {
                        return Err(ClusterError::Protocol(format!(
                            "expected migration state from worker {w}, got {other:?}"
                        )))
                    }
                }
            }
        }
        let records_moved = moved.len() as u64;
        let t_exported = Instant::now();

        // 4. Rehash under the new map and install.
        let new_map = ShardMap::round_robin(epoch, new_shards, self.opts.workers);
        // Keyed by (new global shard, side index).
        type ShardRecords = HashMap<(u32, u8), Vec<(u64, Tuple)>>;
        let mut per_worker: Vec<ShardRecords> = vec![HashMap::new(); self.links.len()];
        for (side, arrival_us, tuple) in moved {
            let hash = tuple.get(self.opts.spec.join_attr(side)).and_then(Value::join_hash);
            let shard = partition(hash, new_shards);
            let worker = new_map.worker_of(shard) as usize;
            let side_idx = if side == Side::Left { 0u8 } else { 1u8 };
            per_worker[worker]
                .entry((shard as u32, side_idx))
                .or_default()
                .push((arrival_us, tuple));
        }
        let blob = encode_config(&self.opts.spec, &self.opts.telemetry);
        for (w, groups) in per_worker.into_iter().enumerate() {
            let link = &mut self.links[w];
            link.ctrl.send(&Frame::ShardMapUpdate {
                worker: w as u32,
                map: new_map.clone(),
                config: blob.clone(),
            })?;
            let mut installed: u64 = 0;
            for ((shard, side), records) in groups {
                installed += records.len() as u64;
                for chunk in records.chunks(MIGRATE_CHUNK) {
                    link.ctrl.send(&Frame::MigrateState {
                        shard,
                        side,
                        records: chunk.to_vec(),
                    })?;
                }
            }
            link.ctrl.send(&Frame::MigrateStateDone { records: installed })?;
            link.ctrl.send(&Frame::MigrateCommit { epoch })?;
        }
        self.await_commits(epoch)?;
        self.map = new_map;
        let t_installed = Instant::now();

        // 5. Re-inject not-yet-emitted punctuations through the new
        // topology, oldest first. Their partial pre-barrier propagation
        // observations were dropped with the old expectations, so each
        // still emits exactly once.
        let pending = self.aligner.drain_pending();
        let puncts_reinjected = pending.len() as u64;
        for (_, seq) in pending {
            let (side, p) = self.pending_log.get(&seq.0).cloned().ok_or_else(|| {
                ClusterError::Protocol(format!("pending punctuation {} not in log", seq.0))
            })?;
            self.route_punct(side, &p, seq.0, ts)?;
        }

        let stats = MigrationStats {
            epoch,
            shards: new_shards,
            records_moved,
            puncts_reinjected,
            pause: t0.elapsed(),
            drain: t_drained.duration_since(t0),
            export: t_exported.duration_since(t_drained),
            install: t_installed.duration_since(t_exported),
            reinject: t_installed.elapsed(),
        };
        self.migrations.push(stats);
        self.telem.migrations.push(stats);
        Ok(stats)
    }

    /// Waits for every worker to echo `MigrateCommit { epoch }`.
    fn await_commits(&mut self, epoch: u64) -> Result<(), ClusterError> {
        let deadline = Instant::now() + self.opts.ctrl_timeout;
        for w in 0..self.links.len() {
            let frame = self.recv_ctrl(w, deadline, "MigrateCommit echo")?;
            match frame {
                Frame::MigrateCommit { epoch: got } if got == epoch => {}
                other => {
                    return Err(ClusterError::Protocol(format!(
                        "expected MigrateCommit({epoch}) echo from worker {w}, got {other:?}"
                    )))
                }
            }
        }
        Ok(())
    }

    /// Finishes both streams of every worker, drains every sink to
    /// completion, and returns the merged output with full accounting.
    /// Every ingested punctuation has been emitted exactly once when
    /// this returns.
    pub fn finish(mut self) -> Result<ClusterReport, ClusterError> {
        let mut sender_reconnects = 0;
        let deadline = Instant::now() + self.opts.ctrl_timeout;
        for link in &mut self.links {
            // `StreamSender::finish` consumes the sender; swap in husks.
            let left = std::mem::replace(
                &mut link.left,
                StreamSender::new(
                    "127.0.0.1:1".parse().expect("literal addr"),
                    0,
                    Side::Left,
                    self.opts.spec.side_schema(Side::Left),
                    ClientOptions::default(),
                ),
            );
            let right = std::mem::replace(
                &mut link.right,
                StreamSender::new(
                    "127.0.0.1:1".parse().expect("literal addr"),
                    1,
                    Side::Right,
                    self.opts.spec.side_schema(Side::Right),
                    ClientOptions::default(),
                ),
            );
            sender_reconnects += left.reconnects() + right.reconnects();
            left.finish()?;
            right.finish()?;
        }
        loop {
            let mut all_done = true;
            for w in 0..self.links.len() {
                if self.links[w].sink_done {
                    continue;
                }
                while let Some(element) = self.links[w].sink.next(Duration::from_millis(20))? {
                    self.absorb(w, element, false)?;
                }
                if self.links[w].sink.finished() {
                    self.links[w].sink_done = true;
                } else {
                    all_done = false;
                }
            }
            if all_done {
                break;
            }
            if Instant::now() >= deadline {
                return Err(ClusterError::Timeout("worker sinks to finish".into()));
            }
        }
        if self.aligner.pending_len() != 0 || !self.pending_log.is_empty() {
            return Err(ClusterError::Protocol(format!(
                "{} punctuations never fully propagated",
                self.aligner.pending_len().max(self.pending_log.len())
            )));
        }
        // Every worker flushes a final cumulative report after its
        // streams end and before its sink closes; wait for the stragglers
        // so the merged telemetry covers the whole run.
        if self.opts.telemetry.enabled {
            loop {
                let pending = self.telem.finals_pending();
                if pending.is_empty() {
                    break;
                }
                if Instant::now() >= deadline {
                    return Err(ClusterError::Timeout(format!(
                        "final telemetry flush from workers {pending:?}"
                    )));
                }
                for w in pending {
                    while let Some(frame) = self.links[w].ctrl.poll_recv()? {
                        match frame {
                            Frame::Telemetry { payload } => self.ingest_telemetry(w, &payload)?,
                            other => {
                                return Err(ClusterError::Protocol(format!(
                                    "unexpected control frame from worker {w}: {other:?}"
                                )))
                            }
                        }
                    }
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        let proxy_stats = self
            .links
            .iter()
            .filter_map(|l| l.proxy.as_ref().map(FaultProxy::stats))
            .collect();
        let telemetry = std::mem::replace(
            &mut self.telem,
            ClusterTelemetry::new(0, TelemetrySettings::disabled()),
        );
        Ok(ClusterReport {
            outputs: std::mem::take(&mut self.ready),
            pushed: self.pushed,
            migrations: std::mem::take(&mut self.migrations),
            sender_reconnects,
            proxy_stats,
            telemetry,
        })
    }

    /// The live merged telemetry view (grows as reports arrive; complete
    /// once [`finish`](Cluster::finish) returns it in the report).
    pub fn telemetry(&self) -> &ClusterTelemetry {
        &self.telem
    }

    /// Prometheus text exposition of the current merged cluster state.
    pub fn metrics_text(&self) -> String {
        self.telem.metrics_text()
    }

    /// The live ASCII cluster dashboard at `width` columns.
    pub fn dashboard_text(&self, width: usize) -> String {
        self.telem.dashboard_text(width)
    }
}
