//! The cluster coordinator: owner of the shard map, router of the data
//! plane, and conductor of punctuation-coordinated repartitioning.
//!
//! One [`Cluster`] value is the whole control surface: it accepts worker
//! handshakes, routes every pushed element to the worker owning its
//! shard (through per-worker fault-tolerant [`StreamSender`]s, optionally
//! behind a [`FaultProxy`]), merges worker sinks into one output stream,
//! and aligns punctuation propagations across workers so the merged
//! stream carries each ingested punctuation **exactly once** — the
//! cluster is indistinguishable from one single-threaded PJoin to a
//! downstream consumer, modulo output order.
//!
//! ## The migration state machine
//!
//! [`Cluster::repartition`] runs one synchronous epoch change:
//!
//! 1. **Arm**: `MigrateBegin { epoch, nonce }` to every worker on the
//!    control plane.
//! 2. **Barrier**: an Empty-pattern punctuation down *both* data streams
//!    of *every* worker, then flush — the barrier is ordered behind all
//!    earlier elements and delivered exactly once even through a faulty
//!    link, because it is an ordinary sequenced element.
//! 3. **Drain**: each worker publishes its sink marker, reports
//!    `BarrierReached`, and exports its state; the coordinator consumes
//!    each sink up to the marker so every pre-barrier output (and
//!    propagation observation) lands before the new epoch exists.
//! 4. **Rehash + install**: exported records are re-partitioned under
//!    the new map and shipped to their new owners, followed by
//!    `MigrateCommit`; workers echo the commit.
//! 5. **Re-inject**: punctuations ingested before the barrier but not
//!    yet fully propagated are re-sent through the new topology, with
//!    fresh aligner expectations — never-dropped, never-duplicated.
//!
//! Pushes are rejected while a migration is in flight (single migration
//! at a time is a cluster-v1 constraint, enforced by construction: this
//! method is synchronous).

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pjoin::components::propagation::translate_punctuation;
use pjoin::PJoinConfig;
use punct_durable::{CheckpointStore, PendingPunct, ShardRecords, Snapshot, SnapshotMeta};
use punct_exec::{route_punctuation, AlignOutcome, Aligner, Route};
use punct_trace::{wall_now_ns, TelemetryMsg};
use punct_net::{
    ClientOptions, FaultConfig, FaultProxy, Frame, ProxyStats, SinkSubscriber, StreamSender,
    WIRE_VERSION,
};
use punct_types::{
    partition, PunctSeq, Punctuation, ShardMap, StreamElement, Timestamp, Timestamped, Tuple,
    Value,
};
use stream_sim::Side;

use crate::error::ClusterError;
use crate::protocol::{
    barrier_punct, encode_config, is_barrier, CtrlConn, HeartbeatSettings, JoinSpec,
    TelemetrySettings, CTRL_TIMEOUT, MIGRATE_CHUNK,
};
use crate::telemetry::ClusterTelemetry;

/// Clock probes per worker during assembly; the minimum-RTT sample wins,
/// so a short burst over a hot loopback connection bounds the offset
/// error to a few tens of microseconds.
const CLOCK_PROBES: u32 = 5;

/// Nonce namespaces keep checkpoint and rollback barriers unmistakable
/// for migration barriers in worker logs and protocol errors.
const CHECKPOINT_NONCE: u64 = 0x4B00_0000_0000_0000;
const ROLLBACK_NONCE: u64 = 0x4C00_0000_0000_0000;

/// Relaunches the worker with the given index against the coordinator's
/// control address. Crash recovery calls this to replace a dead worker;
/// the closure decides *how* a worker runs (thread, forked process,
/// container) — the coordinator only awaits the new `JoinCluster`
/// handshake.
pub type RespawnFn = Arc<dyn Fn(usize, SocketAddr) -> std::io::Result<()> + Send + Sync>;

/// How (and whether) the cluster checkpoints itself to disk and recovers
/// dead workers. Disabled by default: no checkpoint frames on the wire,
/// no input buffering, and zero disk writes.
#[derive(Clone, Default)]
pub struct DurabilityOptions {
    /// Checkpoint directory. `None` disables durability entirely.
    pub dir: Option<PathBuf>,
    /// Cut a checkpoint automatically whenever this much time has passed
    /// since the last one (checked in [`Cluster::poll_outputs`]). `None`
    /// means only explicit [`Cluster::checkpoint`] calls cut epochs.
    pub interval: Option<Duration>,
    /// Complete epochs kept on disk (minimum 1).
    pub retain: usize,
    /// Worker heartbeat policy, shipped to workers in the config blob.
    pub heartbeat: HeartbeatSettings,
    /// How to relaunch a dead worker. Without it, a lost worker is a
    /// fatal error even with checkpointing on.
    pub respawn: Option<RespawnFn>,
}

impl std::fmt::Debug for DurabilityOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurabilityOptions")
            .field("dir", &self.dir)
            .field("interval", &self.interval)
            .field("retain", &self.retain)
            .field("heartbeat", &self.heartbeat)
            .field("respawn", &self.respawn.as_ref().map(|_| "<fn>"))
            .finish()
    }
}

impl DurabilityOptions {
    /// Checkpoints to `dir` with the default interval (explicit cuts
    /// only), retention of 2 epochs, and heartbeats every 100 ms with a
    /// 10-interval miss limit.
    pub fn at(dir: impl Into<PathBuf>) -> DurabilityOptions {
        DurabilityOptions {
            dir: Some(dir.into()),
            interval: None,
            retain: 2,
            heartbeat: HeartbeatSettings { interval_ms: 100, miss_limit: 10 },
            respawn: None,
        }
    }

    /// Whether durability is on.
    pub fn enabled(&self) -> bool {
        self.dir.is_some()
    }
}

/// The coordinator's live durability state (present only when
/// [`DurabilityOptions::enabled`]).
struct DurableState {
    store: CheckpointStore,
    interval: Option<Duration>,
    heartbeat: HeartbeatSettings,
    respawn: Option<RespawnFn>,
    /// Next checkpoint epoch to cut (strictly increasing).
    next_epoch: u64,
    /// Every input pushed since the last committed cut, in push order —
    /// replayed through the routing path after a rollback.
    input_log: Vec<(Side, Timestamped<StreamElement>)>,
    /// Inputs fully covered by the last committed epoch.
    input_cursor: u64,
    /// Outputs absorbed since the last committed cut, withheld from the
    /// caller until a checkpoint (or finish) commits them — a crash
    /// discards them and the replay regenerates them, so the caller
    /// never sees an output twice.
    uncommitted: Vec<Timestamped<StreamElement>>,
    last_cut: Instant,
    /// Per-worker liveness stamps (any control frame refreshes).
    last_heard: Vec<Instant>,
    checkpoints: u64,
    recoveries: u64,
}

/// How a cluster is assembled and driven.
#[derive(Debug, Clone)]
pub struct ClusterOptions {
    /// The join every shard runs.
    pub spec: JoinSpec,
    /// Worker processes expected to join.
    pub workers: usize,
    /// Initial number of global shards.
    pub shards: usize,
    /// Data-plane client options (per-worker stream senders).
    pub client: ClientOptions,
    /// When set, a [`FaultProxy`] with this configuration is spawned in
    /// front of **each worker's ingest server**, so every data-plane
    /// link misbehaves independently.
    pub fault: Option<FaultConfig>,
    /// Deadline for any single control-plane exchange.
    pub ctrl_timeout: Duration,
    /// How the telemetry plane runs (shipped to workers in the config
    /// blob). Default: enabled, 1 s report interval, tracing on.
    pub telemetry: TelemetrySettings,
    /// Durable checkpoint/recovery policy. Default: disabled.
    pub durability: DurabilityOptions,
}

impl ClusterOptions {
    /// A cluster of `workers` workers serving `shards` shards of the
    /// `spec` join, with default transport options and clean links.
    pub fn new(spec: JoinSpec, workers: usize, shards: usize) -> ClusterOptions {
        ClusterOptions {
            spec,
            workers,
            shards,
            client: ClientOptions::default(),
            fault: None,
            ctrl_timeout: CTRL_TIMEOUT,
            telemetry: TelemetrySettings::default(),
            durability: DurabilityOptions::default(),
        }
    }
}

/// One repartition's accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationStats {
    /// The epoch the migration activated.
    pub epoch: u64,
    /// Global shard count after the migration.
    pub shards: usize,
    /// Records moved (sum over shards and sides).
    pub records_moved: u64,
    /// Punctuations re-injected through the new topology.
    pub puncts_reinjected: u64,
    /// Wall-clock duration of the whole migration (the data-plane pause).
    pub pause: Duration,
    /// Pause share spent reaching the barrier and draining sinks to
    /// their markers (phases 1–3b).
    pub drain: Duration,
    /// Pause share spent collecting exported state (phase 3c).
    pub export: Duration,
    /// Pause share spent rehashing, shipping, and committing the new
    /// epoch (phase 4).
    pub install: Duration,
    /// Pause share spent re-injecting pending punctuations (phase 5).
    pub reinject: Duration,
}

/// Final accounting for one cluster run.
#[derive(Debug)]
pub struct ClusterReport {
    /// The merged output stream (tuples + punctuations, arrival order).
    pub outputs: Vec<Timestamped<StreamElement>>,
    /// Elements pushed into the cluster (tuples + punctuations, not
    /// counting barriers or re-injections).
    pub pushed: u64,
    /// Every completed migration, in order.
    pub migrations: Vec<MigrationStats>,
    /// Data-plane reconnects summed over senders (fault recovery).
    pub sender_reconnects: u32,
    /// Per-worker fault-proxy stats, when proxies were configured.
    pub proxy_stats: Vec<ProxyStats>,
    /// The merged cluster telemetry (final worker flushes folded in).
    pub telemetry: ClusterTelemetry,
    /// Checkpoint epochs committed during the run (0 when disabled).
    pub checkpoints: u64,
    /// Worker crash recoveries performed during the run.
    pub recoveries: u64,
}

struct WorkerLink {
    ctrl: CtrlConn,
    proxy: Option<FaultProxy>,
    left: StreamSender,
    right: StreamSender,
    sink: SinkSubscriber,
    sink_done: bool,
}

impl WorkerLink {
    fn sender(&mut self, side: Side) -> &mut StreamSender {
        match side {
            Side::Left => &mut self.left,
            Side::Right => &mut self.right,
        }
    }
}

/// A running cluster, from the driving process's point of view.
pub struct Cluster {
    opts: ClusterOptions,
    cfg: PJoinConfig,
    listener: TcpListener,
    ctrl_addr: SocketAddr,
    map: ShardMap,
    links: Vec<WorkerLink>,
    aligner: Aligner,
    next_seq: u64,
    /// Input punctuations not yet emitted downstream, by aligner
    /// sequence — the re-injection log.
    pending_log: HashMap<u64, (Side, Punctuation)>,
    /// Outputs drained from worker sinks, ready for the caller.
    ready: Vec<Timestamped<StreamElement>>,
    clock: Timestamp,
    pushed: u64,
    migrations: Vec<MigrationStats>,
    telem: ClusterTelemetry,
    durable: Option<DurableState>,
}

impl Cluster {
    /// Binds the control endpoint. Workers can be launched against
    /// [`ctrl_addr`](Cluster::ctrl_addr) as soon as this returns;
    /// [`accept_workers`](Cluster::accept_workers) completes the
    /// assembly.
    pub fn bind(opts: ClusterOptions) -> Result<Cluster, ClusterError> {
        assert!(opts.workers > 0, "a cluster needs at least one worker");
        assert!(opts.workers <= 64, "the punctuation aligner masks at most 64 workers");
        assert!(opts.shards >= opts.workers, "fewer shards than workers leaves workers idle");
        assert!(opts.shards <= 64, "shard routing masks at most 64 global shards");
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let ctrl_addr = listener.local_addr()?;
        let cfg = opts.spec.pjoin_config();
        let durable = match &opts.durability.dir {
            Some(dir) => {
                let store = CheckpointStore::open(dir, opts.durability.retain.max(1))?;
                let next_epoch = store.latest()?.map_or(1, |e| e + 1);
                Some(DurableState {
                    store,
                    interval: opts.durability.interval,
                    heartbeat: opts.durability.heartbeat,
                    respawn: opts.durability.respawn.clone(),
                    next_epoch,
                    input_log: Vec::new(),
                    input_cursor: 0,
                    uncommitted: Vec::new(),
                    last_cut: Instant::now(),
                    last_heard: vec![Instant::now(); opts.workers],
                    checkpoints: 0,
                    recoveries: 0,
                })
            }
            None => None,
        };
        Ok(Cluster {
            cfg,
            listener,
            ctrl_addr,
            map: ShardMap { epoch: 0, assignment: Vec::new() },
            links: Vec::new(),
            aligner: Aligner::new(),
            next_seq: 0,
            pending_log: HashMap::new(),
            ready: Vec::new(),
            clock: Timestamp(0),
            pushed: 0,
            migrations: Vec::new(),
            telem: ClusterTelemetry::new(opts.workers, opts.telemetry),
            durable,
            opts,
        })
    }

    /// The control-plane address workers join through.
    pub fn ctrl_addr(&self) -> SocketAddr {
        self.ctrl_addr
    }

    /// The `ShardMapUpdate` config blob under the current options.
    fn config_blob(&self) -> Vec<u8> {
        encode_config(&self.opts.spec, &self.opts.telemetry, &self.opts.durability.heartbeat)
    }

    /// The active shard map.
    pub fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    /// Accepts the configured number of worker handshakes, wires the
    /// data plane (senders + sink subscriptions, with fault proxies when
    /// configured), and activates the initial shard-map epoch on every
    /// worker. Returns once all workers acknowledged the epoch.
    pub fn accept_workers(&mut self) -> Result<(), ClusterError> {
        let deadline = Instant::now() + self.opts.ctrl_timeout;
        let mut joined: Vec<Option<WorkerLink>> = Vec::new();
        joined.resize_with(self.opts.workers, || None);
        self.listener.set_nonblocking(true)?;
        while joined.iter().any(Option::is_none) {
            if Instant::now() >= deadline {
                return Err(ClusterError::Timeout("worker handshakes".into()));
            }
            let sock = match self.listener.accept() {
                Ok((sock, _)) => sock,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    std::thread::sleep(Duration::from_millis(5));
                    continue;
                }
                Err(e) => return Err(ClusterError::Io(e)),
            };
            let mut ctrl = CtrlConn::from_stream(sock)?;
            let frame = ctrl.recv_deadline(deadline, "JoinCluster")?;
            let Frame::JoinCluster { wire_version, worker, ingest_addr, sink_addr } = frame
            else {
                return Err(ClusterError::Protocol(format!(
                    "expected JoinCluster, got {frame:?}"
                )));
            };
            if wire_version != WIRE_VERSION {
                ctrl.send(&Frame::Error {
                    code: punct_net::error_code::VERSION_MISMATCH,
                    message: format!(
                        "coordinator speaks wire v{WIRE_VERSION}, worker spoke v{wire_version}"
                    ),
                })?;
                return Err(ClusterError::Protocol(format!(
                    "worker {worker} speaks wire v{wire_version}, expected v{WIRE_VERSION}"
                )));
            }
            let idx = worker as usize;
            if idx >= joined.len() || joined[idx].is_some() {
                return Err(ClusterError::Protocol(format!(
                    "unexpected or duplicate worker index {worker}"
                )));
            }
            let ingest: SocketAddr = ingest_addr
                .parse()
                .map_err(|_| ClusterError::Protocol(format!("bad ingest addr {ingest_addr}")))?;
            let sink: SocketAddr = sink_addr
                .parse()
                .map_err(|_| ClusterError::Protocol(format!("bad sink addr {sink_addr}")))?;
            let proxy = match &self.opts.fault {
                Some(cfg) => {
                    // Give each link an independent fault schedule.
                    let mut cfg = *cfg;
                    cfg.seed = cfg.seed.wrapping_add(0x9E37_79B9 * (idx as u64 + 1));
                    Some(FaultProxy::spawn(ingest, cfg)?)
                }
                None => None,
            };
            let data_addr = proxy.as_ref().map_or(ingest, FaultProxy::addr);
            let left = StreamSender::new(
                data_addr,
                0,
                Side::Left,
                self.opts.spec.side_schema(Side::Left),
                self.opts.client.clone(),
            );
            let right = StreamSender::new(
                data_addr,
                1,
                Side::Right,
                self.opts.spec.side_schema(Side::Right),
                self.opts.client.clone(),
            );
            joined[idx] = Some(WorkerLink {
                ctrl,
                proxy,
                left,
                right,
                sink: SinkSubscriber::new(sink),
                sink_done: false,
            });
        }
        self.links = joined.into_iter().map(|l| l.expect("all slots filled")).collect();

        // Activate epoch 1 through the unified staged-install path:
        // ShardMapUpdate stages, MigrateCommit activates and is echoed.
        self.map = ShardMap::round_robin(1, self.opts.shards, self.opts.workers);
        let blob = self.config_blob();
        for (idx, link) in self.links.iter_mut().enumerate() {
            link.ctrl.send(&Frame::ShardMapUpdate {
                worker: idx as u32,
                map: self.map.clone(),
                config: blob.clone(),
            })?;
            link.ctrl.send(&Frame::MigrateCommit { epoch: 1 })?;
        }
        self.await_commits(1)?;
        self.sync_clocks()?;
        Ok(())
    }

    /// Estimates each worker's clock offset with a burst of
    /// request-response probes over the control plane (min-RTT sample
    /// wins). Runs after the workers enter their serve loops, so acks
    /// return within one poll interval.
    fn sync_clocks(&mut self) -> Result<(), ClusterError> {
        if !self.opts.telemetry.enabled {
            return Ok(());
        }
        let deadline = Instant::now() + self.opts.ctrl_timeout;
        for w in 0..self.links.len() {
            for probe in 0..CLOCK_PROBES {
                let payload =
                    TelemetryMsg::ClockProbe { probe, t0_ns: wall_now_ns() }.encode();
                self.links[w].ctrl.send(&Frame::Telemetry { payload })?;
                let want = self.telem.clock(w).samples() + 1;
                while self.telem.clock(w).samples() < want {
                    match self.links[w].ctrl.recv_deadline(deadline, "clock ack")? {
                        Frame::Telemetry { payload } => self.ingest_telemetry(w, &payload)?,
                        Frame::Heartbeat { .. } => self.note_heard(w),
                        other => {
                            return Err(ClusterError::Protocol(format!(
                                "expected a clock ack from worker {w}, got {other:?}"
                            )))
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Routes one element to the worker(s) owning it under the active
    /// map. Tuples go to exactly one worker; punctuations go to every
    /// worker owning a shard they can close, with an aligner expectation
    /// so the merged output carries them exactly once.
    ///
    /// With durability enabled, the element is appended to the input
    /// replay log *before* routing, and a worker lost mid-route triggers
    /// recovery in place: the rolled-back cluster replays the log —
    /// including this element — so the push still succeeds.
    pub fn push(
        &mut self,
        side: Side,
        element: Timestamped<StreamElement>,
    ) -> Result<(), ClusterError> {
        if let Some(d) = &mut self.durable {
            d.input_log.push((side, element.clone()));
        }
        self.pushed += 1;
        match self.route_element(side, element) {
            Err(ClusterError::WorkerLost(w)) => self.recover(w),
            other => other,
        }
    }

    /// The routing body shared by [`push`](Cluster::push) and
    /// post-recovery replay (which must not re-log or re-count).
    fn route_element(
        &mut self,
        side: Side,
        element: Timestamped<StreamElement>,
    ) -> Result<(), ClusterError> {
        self.clock = self.clock.max(element.ts);
        match element.item {
            StreamElement::Tuple(ref t) => {
                let hash = t.get(self.opts.spec.join_attr(side)).and_then(Value::join_hash);
                let worker = self.map.worker_of(partition(hash, self.map.shards())) as usize;
                self.links[worker]
                    .sender(side)
                    .push(element)
                    .map_err(|e| self.lost(worker, e.into()))?;
                Ok(())
            }
            StreamElement::Punctuation(ref p) => {
                if p.width() != self.opts.spec.side_width(side) {
                    // Mirror the single-threaded operator: ignore.
                    return Ok(());
                }
                if is_barrier(p, self.opts.spec.join_attr(side)) {
                    return Err(ClusterError::Protocol(
                        "Empty-pattern punctuations on the join attribute are reserved \
                         for cluster barriers"
                            .into(),
                    ));
                }
                let p = p.clone();
                let seq = self.next_seq;
                self.next_seq += 1;
                self.route_punct(side, &p, seq, element.ts)?;
                self.pending_log.insert(seq, (side, p));
                Ok(())
            }
        }
    }

    /// Classifies a per-worker transport error: recoverable clusters
    /// report [`ClusterError::WorkerLost`] (the caller recovers in
    /// place), everyone else sees the underlying error.
    fn lost(&self, worker: usize, e: ClusterError) -> ClusterError {
        let recoverable = self.durable.as_ref().is_some_and(|d| d.respawn.is_some());
        if recoverable {
            ClusterError::WorkerLost(worker)
        } else {
            e
        }
    }

    /// Convenience: push a tuple arriving at `ts` on `side`.
    pub fn push_tuple(&mut self, side: Side, ts: u64, tuple: Tuple) -> Result<(), ClusterError> {
        self.push(side, Timestamped::new(Timestamp(ts), StreamElement::Tuple(tuple)))
    }

    /// Convenience: push a punctuation arriving at `ts` on `side`.
    pub fn push_punct(
        &mut self,
        side: Side,
        ts: u64,
        punct: Punctuation,
    ) -> Result<(), ClusterError> {
        self.push(side, Timestamped::new(Timestamp(ts), StreamElement::Punctuation(punct)))
    }

    /// Registers the aligner expectation for punctuation `p` (sequence
    /// `seq`) under the active map and sends it to every target worker.
    fn route_punct(
        &mut self,
        side: Side,
        p: &Punctuation,
        seq: u64,
        ts: Timestamp,
    ) -> Result<(), ClusterError> {
        let route = route_punctuation(p, side, &self.cfg, self.map.shards());
        let workers = self.target_workers(&route);
        debug_assert!(!workers.is_empty(), "every shard has an owner");
        if self.opts.telemetry.enabled {
            let side_idx = if side == Side::Left { 0u8 } else { 1u8 };
            self.telem.note_route(seq, side_idx, p.content_hash(), wall_now_ns(), &workers);
        }
        let mask = workers.iter().fold(0u64, |m, &w| m | (1 << w));
        let translated = translate_punctuation(
            p,
            self.opts.spec.side_offset(side),
            self.opts.spec.output_width(),
        );
        self.aligner.expect(translated, PunctSeq(seq), mask);
        for w in workers {
            self.links[w]
                .sender(side)
                .push(Timestamped::new(ts, StreamElement::Punctuation(p.clone())))?;
        }
        Ok(())
    }

    /// The distinct workers owning any shard of `route`, ascending.
    fn target_workers(&self, route: &Route) -> Vec<usize> {
        let shard_mask = route.mask(self.map.shards());
        let mut workers: Vec<usize> = (0..self.map.shards())
            .filter(|s| shard_mask & (1 << s) != 0)
            .map(|s| self.map.worker_of(s) as usize)
            .collect();
        workers.sort_unstable();
        workers.dedup();
        workers
    }

    /// Drains whatever the worker sinks have published so far, in
    /// arrival order per worker. Tuples pass through; punctuation
    /// propagations are merged by the aligner (exactly one copy emitted
    /// once every target worker propagated). Call this periodically
    /// while pushing to keep sink buffers small.
    ///
    /// With durability enabled this is also the supervision tick: missed
    /// heartbeats and dead control links trigger crash recovery here,
    /// and an elapsed checkpoint interval cuts the next epoch. Only
    /// **committed** outputs are returned — outputs produced since the
    /// last cut stay withheld until the next checkpoint (or finish)
    /// commits them.
    pub fn poll_outputs(&mut self) -> Result<Vec<Timestamped<StreamElement>>, ClusterError> {
        // A recovery can itself trip over another dead worker's link at
        // most once per worker; anything beyond that is a real failure.
        for _ in 0..=self.opts.workers {
            if let Some(dead) = self.liveness_expired() {
                self.recover(dead)?;
            }
            match self.poll_once() {
                Ok(()) => {
                    self.maybe_checkpoint()?;
                    return Ok(std::mem::take(&mut self.ready));
                }
                Err(ClusterError::WorkerLost(w)) => self.recover(w)?,
                Err(e) => return Err(e),
            }
        }
        Err(ClusterError::Protocol("workers kept dying faster than recovery".into()))
    }

    /// One non-blocking drain pass over control links and sinks.
    fn poll_once(&mut self) -> Result<(), ClusterError> {
        self.drain_ctrl()?;
        for w in 0..self.links.len() {
            loop {
                if self.links[w].sink_done {
                    break;
                }
                match self.links[w].sink.next(Duration::from_millis(1)) {
                    Ok(Some(element)) => {
                        self.absorb(w, element, false)?;
                    }
                    Ok(None) => break,
                    Err(e) => return Err(self.lost(w, e.into())),
                }
            }
        }
        Ok(())
    }

    /// The worker whose heartbeat deadline has expired, if any.
    fn liveness_expired(&self) -> Option<usize> {
        let d = self.durable.as_ref()?;
        d.respawn.as_ref()?;
        let deadline = d.heartbeat.deadline()?;
        let now = Instant::now();
        d.last_heard.iter().position(|&heard| now.duration_since(heard) > deadline)
    }

    /// Refreshes `worker`'s liveness stamp.
    fn note_heard(&mut self, worker: usize) {
        if let Some(d) = &mut self.durable {
            d.last_heard[worker] = Instant::now();
        }
    }

    /// Hands one merged output to the caller — directly when durability
    /// is off, via the uncommitted buffer (released at the next
    /// checkpoint commit) when it is on.
    fn emit(&mut self, element: Timestamped<StreamElement>) {
        match &mut self.durable {
            Some(d) => d.uncommitted.push(element),
            None => self.ready.push(element),
        }
    }

    /// Folds one sink element into the merged output. `marker_ok` admits
    /// the migration sink marker (only the repartition drain sets it).
    /// Returns whether the element was that marker.
    fn absorb(
        &mut self,
        worker: usize,
        element: Timestamped<StreamElement>,
        marker_ok: bool,
    ) -> Result<bool, ClusterError> {
        match element.item {
            StreamElement::Tuple(_) => {
                self.emit(element);
                Ok(false)
            }
            StreamElement::Punctuation(ref p) => {
                if is_barrier(p, self.opts.spec.join_attr_a) {
                    if marker_ok {
                        return Ok(true);
                    }
                    return Err(ClusterError::Protocol(format!(
                        "worker {worker} published a sink marker outside a migration"
                    )));
                }
                let (outcome, seq) = self.aligner.observe_seq(worker, p);
                if self.opts.telemetry.enabled {
                    if let Some(s) = seq {
                        self.telem.note_observe(worker, s.0, wall_now_ns());
                    }
                }
                match outcome {
                    AlignOutcome::Emit => {
                        let s = seq.expect("emit resolves an instance").0;
                        self.pending_log.remove(&s);
                        if self.opts.telemetry.enabled {
                            self.telem.note_merge(s, wall_now_ns());
                        }
                        self.emit(element);
                        Ok(false)
                    }
                    AlignOutcome::Pending => Ok(false),
                    AlignOutcome::Unexpected => Err(ClusterError::Protocol(format!(
                        "worker {worker} propagated an unregistered punctuation {p}"
                    ))),
                }
            }
        }
    }

    /// Receives the next **non-telemetry** control frame from `worker`,
    /// folding any interleaved telemetry pushes into the aggregator —
    /// periodic reports are asynchronous to the migration protocol, so
    /// every blocking control-plane wait must tolerate them.
    fn recv_ctrl(
        &mut self,
        worker: usize,
        deadline: Instant,
        what: &str,
    ) -> Result<Frame, ClusterError> {
        loop {
            let frame = self.links[worker].ctrl.recv_deadline(deadline, what)?;
            match frame {
                Frame::Telemetry { payload } => {
                    self.note_heard(worker);
                    self.ingest_telemetry(worker, &payload)?;
                }
                Frame::Heartbeat { .. } => self.note_heard(worker),
                other => return Ok(other),
            }
        }
    }

    /// Non-blocking drain of pending asynchronous frames (telemetry
    /// pushes and heartbeats) on every control link. Outside a
    /// migration those are the only frames workers originate, so
    /// anything else is a protocol error. Every frame — whatever its
    /// payload — refreshes the sender's liveness stamp.
    fn drain_ctrl(&mut self) -> Result<(), ClusterError> {
        let heartbeats = self.durable.as_ref().is_some_and(|d| d.heartbeat.enabled());
        if !self.opts.telemetry.enabled && !heartbeats {
            return Ok(());
        }
        for w in 0..self.links.len() {
            loop {
                match self.links[w].ctrl.poll_recv() {
                    Ok(Some(Frame::Telemetry { payload })) => {
                        self.note_heard(w);
                        self.ingest_telemetry(w, &payload)?;
                    }
                    Ok(Some(Frame::Heartbeat { .. })) => self.note_heard(w),
                    Ok(Some(other)) => {
                        return Err(ClusterError::Protocol(format!(
                            "unexpected control frame from worker {w}: {other:?}"
                        )))
                    }
                    Ok(None) => break,
                    Err(e) => return Err(self.lost(w, e)),
                }
            }
        }
        Ok(())
    }

    /// Folds one telemetry payload from `worker` into the aggregator.
    fn ingest_telemetry(&mut self, worker: usize, payload: &[u8]) -> Result<(), ClusterError> {
        let t1 = wall_now_ns();
        let msg = TelemetryMsg::decode(payload).map_err(|e| {
            ClusterError::Protocol(format!("worker {worker} sent a bad telemetry payload: {e}"))
        })?;
        match msg {
            TelemetryMsg::ClockAck { t0_ns, worker_ns, .. } => {
                self.telem.observe_clock(worker, t0_ns, worker_ns, t1);
            }
            TelemetryMsg::Report(report) => {
                if report.worker as usize != worker {
                    return Err(ClusterError::Protocol(format!(
                        "worker {worker} sent a report claiming worker {}",
                        report.worker
                    )));
                }
                self.telem.ingest_report(worker, *report);
            }
            TelemetryMsg::ClockProbe { .. } => {
                return Err(ClusterError::Protocol(format!(
                    "worker {worker} sent a clock probe; only the coordinator probes"
                )))
            }
        }
        Ok(())
    }

    /// Elastically repartitions the cluster to `new_shards` global
    /// shards: barrier, drain, migrate, commit, re-inject. Synchronous —
    /// when this returns the new epoch is active everywhere and pushes
    /// may resume. No join output is lost or duplicated across the
    /// resize, and no punctuation is propagated twice.
    pub fn repartition(&mut self, new_shards: usize) -> Result<MigrationStats, ClusterError> {
        assert!(new_shards >= self.opts.workers, "fewer shards than workers");
        assert!(new_shards <= 64, "shard routing masks at most 64 global shards");
        let t0 = Instant::now();
        let epoch = self.map.epoch + 1;
        let nonce = epoch;
        let deadline = Instant::now() + self.opts.ctrl_timeout;

        // 1. Arm every worker.
        for link in &mut self.links {
            link.ctrl.send(&Frame::MigrateBegin { epoch, nonce })?;
        }
        // 2. Barrier both streams of every worker, then flush: once
        // flushed, the barrier (and everything before it) is in each
        // worker's ingest channel exactly once. The barrier's timestamp
        // carries the nonce: the arm frame (ctrl plane) and the barrier
        // (data plane) race on separate connections, and the tag lets
        // the worker pair each crossing with the right protocol step no
        // matter the arrival order.
        let ts = Timestamp(nonce);
        for link in &mut self.links {
            for side in [Side::Left, Side::Right] {
                let b = barrier_punct(&self.opts.spec, side);
                link.sender(side).push(Timestamped::new(ts, StreamElement::Punctuation(b)))?;
            }
            link.left.flush()?;
            link.right.flush()?;
        }
        // 3a. Workers confirm the barrier crossed both their streams.
        for w in 0..self.links.len() {
            let frame = self.recv_ctrl(w, deadline, "BarrierReached")?;
            match frame {
                Frame::BarrierReached { nonce: got } if got == nonce => {}
                other => {
                    return Err(ClusterError::Protocol(format!(
                        "expected BarrierReached({nonce}) from worker {w}, got {other:?}"
                    )))
                }
            }
        }
        // 3b. Drain each sink to its marker: every pre-barrier output
        // and propagation observation lands before the new epoch.
        for w in 0..self.links.len() {
            loop {
                match self.links[w].sink.next(Duration::from_millis(200))? {
                    Some(element) => {
                        if self.absorb(w, element, true)? {
                            break;
                        }
                    }
                    None => {
                        if Instant::now() >= deadline {
                            return Err(ClusterError::Timeout(format!(
                                "sink marker from worker {w}"
                            )));
                        }
                    }
                }
            }
        }
        let t_drained = Instant::now();
        // 3c. Collect every worker's exported state.
        let mut moved: Vec<(Side, u64, Tuple)> = Vec::new();
        for w in 0..self.links.len() {
            let mut announced: Option<u64> = None;
            let mut got: u64 = 0;
            while announced != Some(got) {
                let frame = self.recv_ctrl(w, deadline, "migration state")?;
                match frame {
                    Frame::MigrateState { side, records, .. } => {
                        let side = if side == 0 { Side::Left } else { Side::Right };
                        got += records.len() as u64;
                        moved.extend(
                            records.into_iter().map(|(us, t)| (side, us, t)),
                        );
                    }
                    Frame::MigrateStateDone { records } => {
                        if records < got {
                            return Err(ClusterError::Protocol(format!(
                                "worker {w} announced {records} records after sending {got}"
                            )));
                        }
                        announced = Some(records);
                        if records == got {
                            break;
                        }
                    }
                    other => {
                        return Err(ClusterError::Protocol(format!(
                            "expected migration state from worker {w}, got {other:?}"
                        )))
                    }
                }
            }
        }
        let records_moved = moved.len() as u64;
        let t_exported = Instant::now();

        // 4. Rehash under the new map and install.
        let new_map = ShardMap::round_robin(epoch, new_shards, self.opts.workers);
        // Keyed by (new global shard, side index).
        type ShardRecords = HashMap<(u32, u8), Vec<(u64, Tuple)>>;
        let mut per_worker: Vec<ShardRecords> = vec![HashMap::new(); self.links.len()];
        for (side, arrival_us, tuple) in moved {
            let hash = tuple.get(self.opts.spec.join_attr(side)).and_then(Value::join_hash);
            let shard = partition(hash, new_shards);
            let worker = new_map.worker_of(shard) as usize;
            let side_idx = if side == Side::Left { 0u8 } else { 1u8 };
            per_worker[worker]
                .entry((shard as u32, side_idx))
                .or_default()
                .push((arrival_us, tuple));
        }
        let blob = self.config_blob();
        for (w, groups) in per_worker.into_iter().enumerate() {
            let link = &mut self.links[w];
            link.ctrl.send(&Frame::ShardMapUpdate {
                worker: w as u32,
                map: new_map.clone(),
                config: blob.clone(),
            })?;
            let mut installed: u64 = 0;
            for ((shard, side), records) in groups {
                installed += records.len() as u64;
                for chunk in records.chunks(MIGRATE_CHUNK) {
                    link.ctrl.send(&Frame::MigrateState {
                        shard,
                        side,
                        records: chunk.to_vec(),
                    })?;
                }
            }
            link.ctrl.send(&Frame::MigrateStateDone { records: installed })?;
            link.ctrl.send(&Frame::MigrateCommit { epoch })?;
        }
        self.await_commits(epoch)?;
        self.map = new_map;
        let t_installed = Instant::now();

        // 5. Re-inject not-yet-emitted punctuations through the new
        // topology, oldest first. Their partial pre-barrier propagation
        // observations were dropped with the old expectations, so each
        // still emits exactly once.
        let pending = self.aligner.drain_pending();
        let puncts_reinjected = pending.len() as u64;
        for (_, seq) in pending {
            let (side, p) = self.pending_log.get(&seq.0).cloned().ok_or_else(|| {
                ClusterError::Protocol(format!("pending punctuation {} not in log", seq.0))
            })?;
            self.route_punct(side, &p, seq.0, ts)?;
        }

        let stats = MigrationStats {
            epoch,
            shards: new_shards,
            records_moved,
            puncts_reinjected,
            pause: t0.elapsed(),
            drain: t_drained.duration_since(t0),
            export: t_exported.duration_since(t_drained),
            install: t_installed.duration_since(t_exported),
            reinject: t_installed.elapsed(),
        };
        self.migrations.push(stats);
        self.telem.migrations.push(stats);
        Ok(stats)
    }

    /// Cuts one durable checkpoint epoch, synchronously. The cut is a
    /// barrier punctuation down both streams of every worker — the same
    /// exactly-once mechanism migration uses — so the snapshot is a
    /// consistent prefix of the run:
    ///
    /// 1. **Arm**: `Checkpoint { epoch, nonce }` to every worker.
    /// 2. **Barrier + drain**: barrier both streams, flush, await
    ///    `BarrierReached`, and drain each sink to its marker so every
    ///    pre-cut output is absorbed (into the uncommitted buffer).
    /// 3. **Export**: workers export their post-purge records exactly as
    ///    migration does, then resume immediately — no install wait, so
    ///    the pause is export-bound, not round-trip-bound.
    /// 4. **Commit**: records + pending punctuations + input cursor are
    ///    written as one epoch (delta-encoded, CRC-guarded, atomically
    ///    published). Only then are withheld outputs released, the input
    ///    replay log truncated, and `CheckpointDone` (with each worker's
    ///    sink watermark, for history truncation) sent.
    ///
    /// Returns the committed epoch.
    ///
    /// A worker dying mid-cut aborts the epoch, triggers crash recovery
    /// (with a respawn hook configured), and the cut is retried against
    /// the recovered cluster.
    pub fn checkpoint(&mut self) -> Result<u64, ClusterError> {
        for _ in 0..=self.opts.workers {
            match self.try_checkpoint() {
                Err(ClusterError::WorkerLost(w)) => self.recover(w)?,
                r => return r,
            }
        }
        Err(ClusterError::Protocol("workers kept dying faster than recovery".into()))
    }

    fn try_checkpoint(&mut self) -> Result<u64, ClusterError> {
        let Some(d) = self.durable.as_ref() else {
            return Err(ClusterError::Protocol(
                "checkpoint() requires durability to be enabled".into(),
            ));
        };
        let epoch = d.next_epoch;
        let nonce = CHECKPOINT_NONCE | epoch;
        let deadline = Instant::now() + self.opts.ctrl_timeout;
        // 1. Arm.
        for w in 0..self.links.len() {
            let r = self.links[w].ctrl.send(&Frame::Checkpoint { epoch, nonce });
            r.map_err(|e| self.lost(w, e))?;
        }
        // 2. Barrier both streams of every worker, flush, confirm. The
        // barrier's timestamp carries the nonce (see `repartition`).
        let ts = Timestamp(nonce);
        for w in 0..self.links.len() {
            for side in [Side::Left, Side::Right] {
                let b = barrier_punct(&self.opts.spec, side);
                let r = self.links[w]
                    .sender(side)
                    .push(Timestamped::new(ts, StreamElement::Punctuation(b)));
                r.map_err(|e| self.lost(w, e.into()))?;
            }
            let r = self.links[w].left.flush();
            r.map_err(|e| self.lost(w, e.into()))?;
            let r = self.links[w].right.flush();
            r.map_err(|e| self.lost(w, e.into()))?;
        }
        for w in 0..self.links.len() {
            let frame = match self.recv_ctrl(w, deadline, "checkpoint BarrierReached") {
                Ok(frame) => frame,
                Err(e) => return Err(self.lost(w, e)),
            };
            match frame {
                Frame::BarrierReached { nonce: got } if got == nonce => {}
                other => {
                    return Err(ClusterError::Protocol(format!(
                        "expected BarrierReached({nonce}) from worker {w}, got {other:?}"
                    )))
                }
            }
        }
        // 2b. Drain each sink to its marker.
        for w in 0..self.links.len() {
            loop {
                match self.links[w].sink.next(Duration::from_millis(200)) {
                    Ok(Some(element)) => {
                        if self.absorb(w, element, true)? {
                            break;
                        }
                    }
                    Ok(None) => {
                        if Instant::now() >= deadline {
                            return Err(ClusterError::Timeout(format!(
                                "checkpoint sink marker from worker {w}"
                            )));
                        }
                    }
                    Err(e) => return Err(self.lost(w, e.into())),
                }
            }
        }
        // 3. Collect exports, keyed by the worker-reported global shard.
        let mut groups: HashMap<(u32, u8), Vec<(u64, Tuple)>> = HashMap::new();
        for w in 0..self.links.len() {
            let mut announced: Option<u64> = None;
            let mut got: u64 = 0;
            while announced != Some(got) {
                let frame = match self.recv_ctrl(w, deadline, "checkpoint state") {
                    Ok(frame) => frame,
                    Err(e) => return Err(self.lost(w, e)),
                };
                match frame {
                    Frame::MigrateState { shard, side, records } => {
                        got += records.len() as u64;
                        groups.entry((shard, side)).or_default().extend(records);
                    }
                    Frame::MigrateStateDone { records } => {
                        if records < got {
                            return Err(ClusterError::Protocol(format!(
                                "worker {w} announced {records} records after sending {got}"
                            )));
                        }
                        announced = Some(records);
                        if records == got {
                            break;
                        }
                    }
                    other => {
                        return Err(ClusterError::Protocol(format!(
                            "expected checkpoint state from worker {w}, got {other:?}"
                        )))
                    }
                }
            }
        }
        // 4. Write the epoch, then commit its side effects.
        let records: Vec<ShardRecords> = groups
            .into_iter()
            .map(|((shard, side), records)| ShardRecords { shard, side, records })
            .collect();
        let mut pending: Vec<PendingPunct> = self
            .pending_log
            .iter()
            .map(|(&seq, (side, punct))| PendingPunct {
                seq,
                side: if *side == Side::Left { 0 } else { 1 },
                punct: punct.clone(),
            })
            .collect();
        pending.sort_by_key(|p| p.seq);
        let meta = SnapshotMeta {
            config_blob: self.config_blob(),
            workers: self.opts.workers as u32,
            shards: self.map.shards() as u32,
            input_cursor: self.pushed,
            pushed: self.pushed,
        };
        let mut snap = Snapshot::of_records(epoch, meta, records);
        snap.pending = pending;
        let d = self.durable.as_mut().expect("checked on entry");
        d.store.commit(&snap)?;
        d.next_epoch = epoch + 1;
        d.input_log.clear();
        d.input_cursor = self.pushed;
        d.checkpoints += 1;
        d.last_cut = Instant::now();
        let released: Vec<Timestamped<StreamElement>> = d.uncommitted.drain(..).collect();
        self.ready.extend(released);
        for w in 0..self.links.len() {
            let sink_watermark = self.links[w].sink.received();
            let r = self.links[w].ctrl.send(&Frame::CheckpointDone { epoch, sink_watermark });
            r.map_err(|e| self.lost(w, e))?;
        }
        Ok(epoch)
    }

    /// Cuts a checkpoint if the configured interval has elapsed. A
    /// worker lost mid-cut is recovered and the cut retried inside
    /// [`checkpoint`](Cluster::checkpoint).
    fn maybe_checkpoint(&mut self) -> Result<(), ClusterError> {
        let due = self
            .durable
            .as_ref()
            .is_some_and(|d| d.interval.is_some_and(|iv| d.last_cut.elapsed() >= iv));
        if due {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Recovers the cluster after losing `dead`: every surviving worker
    /// is rolled back to the latest complete checkpoint (or to empty
    /// state if none exists), a replacement worker is spawned and
    /// adopted under the dead worker's index, and every input since the
    /// checkpoint is replayed through the normal routing path. Withheld
    /// (uncommitted) outputs are discarded first, so the replay cannot
    /// duplicate anything the caller saw.
    fn recover(&mut self, dead: usize) -> Result<(), ClusterError> {
        let Some(d) = self.durable.as_mut() else {
            return Err(ClusterError::WorkerLost(dead));
        };
        let Some(respawn) = d.respawn.clone() else {
            return Err(ClusterError::WorkerLost(dead));
        };
        d.recoveries += 1;
        let nonce = ROLLBACK_NONCE | d.recoveries;
        d.uncommitted.clear();
        let snap = d.store.latest_complete()?;
        let deadline = Instant::now() + self.opts.ctrl_timeout;
        let epoch = self.map.epoch + 1;

        // 1. Roll back the survivors: arm, barrier, and discard
        // everything still in flight — outputs, propagations, and any
        // stale traffic from a checkpoint the crash aborted. A second
        // worker dying during recovery is fatal (cluster v1).
        for w in 0..self.links.len() {
            if w == dead {
                continue;
            }
            self.links[w].ctrl.send(&Frame::Rollback { epoch, nonce })?;
            for side in [Side::Left, Side::Right] {
                let b = barrier_punct(&self.opts.spec, side);
                self.links[w]
                    .sender(side)
                    .push(Timestamped::new(Timestamp(nonce), StreamElement::Punctuation(b)))?;
            }
            self.links[w].left.flush()?;
            self.links[w].right.flush()?;
        }
        for w in 0..self.links.len() {
            if w == dead {
                continue;
            }
            // Tolerate frames from an aborted checkpoint (its barrier
            // sits ahead of the rollback barrier in stream order, so its
            // frames arrive first and are all superseded).
            loop {
                match self.recv_ctrl(w, deadline, "rollback BarrierReached")? {
                    Frame::BarrierReached { nonce: got } if got == nonce => break,
                    Frame::BarrierReached { .. }
                    | Frame::MigrateState { .. }
                    | Frame::MigrateStateDone { .. } => {}
                    other => {
                        return Err(ClusterError::Protocol(format!(
                            "expected BarrierReached({nonce}) from worker {w}, got {other:?}"
                        )))
                    }
                }
            }
            // The worker is now blocked awaiting its install, so its
            // sink quiesces after the rollback marker: discard until a
            // marker has been seen and the sink has gone quiet.
            let mut saw_marker = false;
            let mut last_element = Instant::now();
            loop {
                match self.links[w].sink.next(Duration::from_millis(20))? {
                    Some(element) => {
                        last_element = Instant::now();
                        if let StreamElement::Punctuation(ref p) = element.item {
                            if is_barrier(p, self.opts.spec.join_attr_a) {
                                saw_marker = true;
                            }
                        }
                    }
                    None => {
                        if saw_marker && last_element.elapsed() >= Duration::from_millis(200) {
                            break;
                        }
                        if Instant::now() >= deadline {
                            return Err(ClusterError::Timeout(format!(
                                "rollback sink marker from worker {w}"
                            )));
                        }
                    }
                }
            }
        }

        // 2. Replace the dead worker and adopt its successor.
        self.telem.reset_worker(dead);
        respawn(dead, self.ctrl_addr).map_err(ClusterError::Io)?;
        self.accept_replacement(dead, deadline)?;

        // 3. Reset the merge state and install the checkpoint into
        // every worker (fresh map epoch; survivors unblock on commit).
        self.aligner = Aligner::new();
        self.pending_log.clear();
        let (moved, pending) = match snap {
            Some(snap) => (flatten_records(snap.records), snap.pending),
            None => (Vec::new(), Vec::new()),
        };
        self.install_state(moved, pending)?;

        // 4. Replay every input since the checkpoint, in push order.
        // The log stays intact: until the next commit, a second crash
        // must replay the same suffix again.
        let log = std::mem::take(&mut self.durable.as_mut().expect("durable").input_log);
        for (side, element) in &log {
            self.route_element(*side, element.clone())?;
        }
        let d = self.durable.as_mut().expect("durable");
        d.input_log = log;
        let now = Instant::now();
        for heard in &mut d.last_heard {
            *heard = now;
        }
        Ok(())
    }

    /// Accepts the replacement worker's `JoinCluster` handshake and
    /// rebuilds the dead worker's link (fresh fault proxy under a new
    /// seed, fresh zero-sequence senders, fresh sink subscription).
    fn accept_replacement(&mut self, dead: usize, deadline: Instant) -> Result<(), ClusterError> {
        self.listener.set_nonblocking(true)?;
        let sock = loop {
            if Instant::now() >= deadline {
                return Err(ClusterError::Timeout(format!(
                    "replacement handshake for worker {dead}"
                )));
            }
            match self.listener.accept() {
                Ok((sock, _)) => break sock,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(ClusterError::Io(e)),
            }
        };
        let mut ctrl = CtrlConn::from_stream(sock)?;
        let frame = ctrl.recv_deadline(deadline, "replacement JoinCluster")?;
        let Frame::JoinCluster { wire_version, worker, ingest_addr, sink_addr } = frame else {
            return Err(ClusterError::Protocol(format!("expected JoinCluster, got {frame:?}")));
        };
        if wire_version != WIRE_VERSION {
            return Err(ClusterError::Protocol(format!(
                "replacement worker speaks wire v{wire_version}, expected v{WIRE_VERSION}"
            )));
        }
        if worker as usize != dead {
            return Err(ClusterError::Protocol(format!(
                "replacement joined as worker {worker}, expected {dead}"
            )));
        }
        let ingest: SocketAddr = ingest_addr
            .parse()
            .map_err(|_| ClusterError::Protocol(format!("bad ingest addr {ingest_addr}")))?;
        let sink: SocketAddr = sink_addr
            .parse()
            .map_err(|_| ClusterError::Protocol(format!("bad sink addr {sink_addr}")))?;
        let recoveries = self.durable.as_ref().map_or(0, |d| d.recoveries);
        let proxy = match &self.opts.fault {
            Some(cfg) => {
                let mut cfg = *cfg;
                cfg.seed = cfg
                    .seed
                    .wrapping_add(0x9E37_79B9 * (dead as u64 + 1))
                    .wrapping_add(0xD1CE_0000 * recoveries);
                Some(FaultProxy::spawn(ingest, cfg)?)
            }
            None => None,
        };
        let data_addr = proxy.as_ref().map_or(ingest, FaultProxy::addr);
        let left = StreamSender::new(
            data_addr,
            0,
            Side::Left,
            self.opts.spec.side_schema(Side::Left),
            self.opts.client.clone(),
        );
        let right = StreamSender::new(
            data_addr,
            1,
            Side::Right,
            self.opts.spec.side_schema(Side::Right),
            self.opts.client.clone(),
        );
        self.links[dead] = WorkerLink {
            ctrl,
            proxy,
            left,
            right,
            sink: SinkSubscriber::new(sink),
            sink_done: false,
        };
        Ok(())
    }

    /// Stages `moved` (rehashed under the current shard count) into
    /// every worker and activates a fresh map epoch, then re-injects
    /// `pending` punctuations with brand-new routes. Both the rollback
    /// path and [`restore_latest`](Cluster::restore_latest) end here.
    fn install_state(
        &mut self,
        moved: Vec<(Side, u64, Tuple)>,
        pending: Vec<PendingPunct>,
    ) -> Result<(), ClusterError> {
        let epoch = self.map.epoch + 1;
        let shards = self.map.shards();
        let new_map = ShardMap::round_robin(epoch, shards, self.opts.workers);
        type ShardRecords = HashMap<(u32, u8), Vec<(u64, Tuple)>>;
        let mut per_worker: Vec<ShardRecords> = vec![HashMap::new(); self.links.len()];
        for (side, arrival_us, tuple) in moved {
            let hash = tuple.get(self.opts.spec.join_attr(side)).and_then(Value::join_hash);
            let shard = partition(hash, shards);
            let worker = new_map.worker_of(shard) as usize;
            let side_idx = if side == Side::Left { 0u8 } else { 1u8 };
            per_worker[worker]
                .entry((shard as u32, side_idx))
                .or_default()
                .push((arrival_us, tuple));
        }
        let blob = self.config_blob();
        for (w, groups) in per_worker.into_iter().enumerate() {
            let link = &mut self.links[w];
            link.ctrl.send(&Frame::ShardMapUpdate {
                worker: w as u32,
                map: new_map.clone(),
                config: blob.clone(),
            })?;
            let mut installed: u64 = 0;
            for ((shard, side), records) in groups {
                installed += records.len() as u64;
                for chunk in records.chunks(MIGRATE_CHUNK) {
                    link.ctrl.send(&Frame::MigrateState {
                        shard,
                        side,
                        records: chunk.to_vec(),
                    })?;
                }
            }
            link.ctrl.send(&Frame::MigrateStateDone { records: installed })?;
            link.ctrl.send(&Frame::MigrateCommit { epoch })?;
        }
        self.await_commits(epoch)?;
        self.map = new_map;
        for p in pending {
            let side = if p.side == 0 { Side::Left } else { Side::Right };
            let seq = self.next_seq;
            self.next_seq += 1;
            self.route_punct(side, &p.punct, seq, self.clock)?;
            self.pending_log.insert(seq, (side, p.punct));
        }
        Ok(())
    }

    /// Restores a freshly-assembled cluster from the latest complete
    /// epoch in its checkpoint directory: installs the snapshot state
    /// into the workers, re-injects pending punctuations, and returns
    /// the input cursor the driver must re-feed its sources from.
    /// `Ok(None)` if the directory holds no complete epoch (nothing to
    /// restore — start from the beginning). Call after
    /// [`accept_workers`](Cluster::accept_workers).
    pub fn restore_latest(&mut self) -> Result<Option<u64>, ClusterError> {
        let Some(d) = self.durable.as_mut() else {
            return Err(ClusterError::Protocol(
                "restore_latest() requires durability to be enabled".into(),
            ));
        };
        let Some(snap) = d.store.latest_complete()? else {
            return Ok(None);
        };
        if snap.meta.workers as usize != self.opts.workers {
            return Err(ClusterError::Protocol(format!(
                "checkpoint epoch {} was cut with {} workers, cluster has {}",
                snap.epoch, snap.meta.workers, self.opts.workers
            )));
        }
        d.next_epoch = snap.epoch + 1;
        d.input_cursor = snap.meta.input_cursor;
        let cursor = snap.meta.input_cursor;
        self.pushed = snap.meta.pushed;
        self.aligner = Aligner::new();
        self.pending_log.clear();
        self.install_state(flatten_records(snap.records), snap.pending)?;
        Ok(Some(cursor))
    }

    /// Waits for every worker to echo `MigrateCommit { epoch }`.
    fn await_commits(&mut self, epoch: u64) -> Result<(), ClusterError> {
        let deadline = Instant::now() + self.opts.ctrl_timeout;
        for w in 0..self.links.len() {
            let frame = self.recv_ctrl(w, deadline, "MigrateCommit echo")?;
            match frame {
                Frame::MigrateCommit { epoch: got } if got == epoch => {}
                other => {
                    return Err(ClusterError::Protocol(format!(
                        "expected MigrateCommit({epoch}) echo from worker {w}, got {other:?}"
                    )))
                }
            }
        }
        Ok(())
    }

    /// Finishes both streams of every worker, drains every sink to
    /// completion, and returns the merged output with full accounting.
    /// Every ingested punctuation has been emitted exactly once when
    /// this returns.
    pub fn finish(mut self) -> Result<ClusterReport, ClusterError> {
        let mut sender_reconnects = 0;
        let deadline = Instant::now() + self.opts.ctrl_timeout;
        for link in &mut self.links {
            // `StreamSender::finish` consumes the sender; swap in husks.
            let left = std::mem::replace(
                &mut link.left,
                StreamSender::new(
                    "127.0.0.1:1".parse().expect("literal addr"),
                    0,
                    Side::Left,
                    self.opts.spec.side_schema(Side::Left),
                    ClientOptions::default(),
                ),
            );
            let right = std::mem::replace(
                &mut link.right,
                StreamSender::new(
                    "127.0.0.1:1".parse().expect("literal addr"),
                    1,
                    Side::Right,
                    self.opts.spec.side_schema(Side::Right),
                    ClientOptions::default(),
                ),
            );
            sender_reconnects += left.reconnects() + right.reconnects();
            left.finish()?;
            right.finish()?;
        }
        loop {
            let mut all_done = true;
            for w in 0..self.links.len() {
                if self.links[w].sink_done {
                    continue;
                }
                while let Some(element) = self.links[w].sink.next(Duration::from_millis(20))? {
                    self.absorb(w, element, false)?;
                }
                if self.links[w].sink.finished() {
                    self.links[w].sink_done = true;
                } else {
                    all_done = false;
                }
            }
            if all_done {
                break;
            }
            if Instant::now() >= deadline {
                return Err(ClusterError::Timeout("worker sinks to finish".into()));
            }
        }
        if self.aligner.pending_len() != 0 || !self.pending_log.is_empty() {
            return Err(ClusterError::Protocol(format!(
                "{} punctuations never fully propagated",
                self.aligner.pending_len().max(self.pending_log.len())
            )));
        }
        // The streams are complete: release every withheld output. A
        // crash can no longer undo them.
        if let Some(d) = &mut self.durable {
            self.ready.append(&mut d.uncommitted);
            d.input_log.clear();
        }
        // Every worker flushes a final cumulative report after its
        // streams end and before its sink closes; wait for the stragglers
        // so the merged telemetry covers the whole run.
        if self.opts.telemetry.enabled {
            loop {
                let pending = self.telem.finals_pending();
                if pending.is_empty() {
                    break;
                }
                if Instant::now() >= deadline {
                    return Err(ClusterError::Timeout(format!(
                        "final telemetry flush from workers {pending:?}"
                    )));
                }
                for w in pending {
                    while let Some(frame) = self.links[w].ctrl.poll_recv()? {
                        match frame {
                            Frame::Telemetry { payload } => self.ingest_telemetry(w, &payload)?,
                            Frame::Heartbeat { .. } => {}
                            other => {
                                return Err(ClusterError::Protocol(format!(
                                    "unexpected control frame from worker {w}: {other:?}"
                                )))
                            }
                        }
                    }
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        let proxy_stats = self
            .links
            .iter()
            .filter_map(|l| l.proxy.as_ref().map(FaultProxy::stats))
            .collect();
        let telemetry = std::mem::replace(
            &mut self.telem,
            ClusterTelemetry::new(0, TelemetrySettings::disabled()),
        );
        let (checkpoints, recoveries) =
            self.durable.as_ref().map_or((0, 0), |d| (d.checkpoints, d.recoveries));
        Ok(ClusterReport {
            outputs: std::mem::take(&mut self.ready),
            pushed: self.pushed,
            migrations: std::mem::take(&mut self.migrations),
            sender_reconnects,
            proxy_stats,
            telemetry,
            checkpoints,
            recoveries,
        })
    }

    /// The live merged telemetry view (grows as reports arrive; complete
    /// once [`finish`](Cluster::finish) returns it in the report).
    pub fn telemetry(&self) -> &ClusterTelemetry {
        &self.telem
    }

    /// Prometheus text exposition of the current merged cluster state.
    pub fn metrics_text(&self) -> String {
        self.telem.metrics_text()
    }

    /// The live ASCII cluster dashboard at `width` columns.
    pub fn dashboard_text(&self, width: usize) -> String {
        self.telem.dashboard_text(width)
    }
}

/// Flattens snapshot record sections into the `(side, arrival, tuple)`
/// shape the install path rehashes.
fn flatten_records(records: Vec<ShardRecords>) -> Vec<(Side, u64, Tuple)> {
    let mut moved = Vec::with_capacity(records.iter().map(|r| r.records.len()).sum());
    for section in records {
        let side = if section.side == 0 { Side::Left } else { Side::Right };
        for (arrival_us, tuple) in section.records {
            moved.push((side, arrival_us, tuple));
        }
    }
    moved
}
