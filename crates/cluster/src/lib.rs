//! # punct-cluster
//!
//! Distributed cluster execution for [PJoin](pjoin): the punctuation-
//! exploiting stream join of *Joining Punctuated Streams* (EDBT 2004),
//! scaled across **processes**.
//!
//! ## Architecture
//!
//! ```text
//!                         control plane (Frames over TCP)
//!            ┌───────────────────┬─────────────────────────┐
//!            ▼                   ▼                         ▼
//!      ┌───────────┐      ┌───────────┐             ┌───────────┐
//!      │ worker 0  │      │ worker 1  │      …      │ worker N  │
//!      │ PJoin per │      │ PJoin per │             │ PJoin per │
//!      │owned shard│      │owned shard│             │owned shard│
//!      └─▲───────┬─┘      └─▲───────┬─┘             └─▲───────┬─┘
//!  ingest│       │sink      │       │                 │       │
//!        │       ▼          │       ▼                 │       ▼
//!      ┌─┴──────────────────┴─────────────────────────┴─────────┐
//!      │          coordinator: shard map owner + router +       │
//!      │        cross-worker punctuation aligner + merger       │
//!      └──────────────────────────────────────────────────────┬─┘
//!                                                     outputs ▼
//! ```
//!
//! * The **coordinator** ([`Cluster`]) owns the [`ShardMap`] — the
//!   versioned shard→worker assignment. It routes tuples by join hash
//!   (the partition function is shared with the in-process executor:
//!   [`punct_types::partition`]), multicasts punctuations to the workers
//!   owning the shards they can close, and merges worker sinks into one
//!   stream that carries each punctuation **exactly once**.
//! * Each **worker** ([`run_worker`]) hosts one single-threaded
//!   [`PJoin`](pjoin::PJoin) per owned global shard behind the
//!   fault-tolerant `punct-net` transport (sequence-numbered ingest with
//!   credit backpressure and resume, sink with replay).
//! * **Elastic repartitioning** ([`Cluster::repartition`]) changes the
//!   global shard count mid-stream. The barrier is an in-band
//!   Empty-pattern punctuation — ordered, exactly-once, even through a
//!   lossy link — so the epoch switch needs no data-plane quiescing
//!   protocol beyond the streams' own ordering. Join state moves as
//!   `(arrival_us, tuple)` records and is re-imported without probing;
//!   punctuations ingested but not yet fully propagated are re-injected
//!   through the new topology. The output multiset (tuples *and*
//!   punctuations) is identical to a single-threaded PJoin's.
//!
//! [`ShardMap`]: punct_types::ShardMap
//!
//! ## Quick start
//!
//! ```no_run
//! use punct_cluster::{Cluster, ClusterOptions, JoinSpec, WorkerOptions};
//! use punct_types::{Punctuation, Tuple};
//! use stream_sim::Side;
//!
//! let mut cluster = Cluster::bind(ClusterOptions::new(JoinSpec::new(2, 2), 2, 4)).unwrap();
//! let ctrl = cluster.ctrl_addr();
//! // Workers usually run as separate processes (`punct-worker`); threads
//! // work too since workers are self-contained.
//! let workers: Vec<_> = (0..2)
//!     .map(|i| {
//!         std::thread::spawn(move || {
//!             punct_cluster::run_worker(WorkerOptions::new(i, ctrl)).unwrap()
//!         })
//!     })
//!     .collect();
//! cluster.accept_workers().unwrap();
//! for k in 0..8i64 {
//!     cluster.push_tuple(Side::Left, k as u64, Tuple::of((k, 10 * k))).unwrap();
//!     cluster.push_tuple(Side::Right, k as u64, Tuple::of((k, -k))).unwrap();
//! }
//! cluster.repartition(8).unwrap(); // mid-stream resize: 4 → 8 shards
//! cluster.push_punct(Side::Left, 9, Punctuation::close_value(2, 0, 3i64)).unwrap();
//! let report = cluster.finish().unwrap();
//! assert_eq!(report.outputs.iter().filter(|e| e.item.is_tuple()).count(), 8);
//! for w in workers {
//!     w.join().unwrap();
//! }
//! ```

pub mod coordinator;
pub mod error;
pub mod protocol;
pub mod telemetry;
pub mod worker;

pub use coordinator::{
    Cluster, ClusterOptions, ClusterReport, DurabilityOptions, MigrationStats, RespawnFn,
};
pub use error::ClusterError;
pub use protocol::{
    barrier_punct, decode_config, encode_config, is_barrier, sink_marker, CtrlConn,
    HeartbeatSettings, JoinSpec, TelemetrySettings,
};
pub use telemetry::{
    check_exactly_once, validate_cluster_jsonl, ClusterTelemetry, JsonlSummary, PunctSpan,
    WorkerSpan,
};
pub use worker::{run_worker, WorkerOptions, WorkerReport};
