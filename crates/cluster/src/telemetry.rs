//! Coordinator-side telemetry aggregation: the cluster's merged view of
//! every worker's histograms, shard occupancy, trace summaries and
//! punctuation lifecycles.
//!
//! ## Merge semantics
//!
//! Workers send **cumulative** [`WorkerTelemetry`] snapshots; the
//! aggregator keeps the latest per worker (by report sequence) and
//! merges those — never deltas — so merged histogram counts are exact at
//! any report interval and under arbitrary report loss short of losing
//! the final flush. Histogram merging is element-wise bucket addition
//! (the same operation shard histograms already merge with inside a
//! process), so a cluster-level distribution is bit-identical to what a
//! single process observing every sample would have built.
//!
//! ## Punctuation lifecycle correlation
//!
//! The coordinator names punctuations by aligner sequence; workers never
//! see that sequence (it is not on the wire — the data plane carries the
//! punctuation itself). Correlation uses content instead: both sides
//! hash the punctuation's canonical wire bytes
//! ([`Punctuation::content_hash`](punct_types::Punctuation::content_hash)),
//! and because the transport is exactly-once and in-order per stream,
//! the *i*-th lifecycle record a worker creates for a given `(side,
//! key)` always describes the *i*-th copy of that punctuation the
//! coordinator sent it ([`ClusterTelemetry::note_route`] keeps that send
//! log). Re-injection after a repartition appends a fresh send-log entry
//! and produces a fresh worker record, so the mapping survives
//! migrations.
//!
//! ## Clock normalization
//!
//! Worker stage stamps arrive in the worker's own
//! [`wall_now_ns`](punct_trace::wall_now_ns) domain. Each is translated
//! through the worker's handshake-time [`ClockSync`] estimate, then
//! clamped into the causal window the coordinator observed locally
//! (route time → the coordinator's own observation of that worker's
//! propagation), with a running maximum across the stage sequence — so
//! merged spans are monotone *by construction*, and the residual
//! offset-estimation error (bounded by the winning probe's RTT) can
//! distort stage boundaries but never reorder them.

use std::collections::HashMap;

use punct_trace::{
    histogram_chart, meter, ClockSync, JoinLatencies, JsonValue, KindSummary, LatencyHistogram,
    PunctRecord, TraceKind, WorkerTelemetry,
};

use crate::coordinator::MigrationStats;
use crate::protocol::TelemetrySettings;

/// One worker's normalized lane of a punctuation span: every stamp in
/// the **coordinator's** clock domain, monotone from `ingest_ns` through
/// `observe_ns`. A zero stage was never recorded (tracing off, or the
/// lane's record was cut short by a migration before the stage ran).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerSpan {
    /// The worker this lane belongs to.
    pub worker: u32,
    /// Punctuation arrived at the worker's element handler.
    pub ingest_ns: u64,
    /// Last target shard finished applying it.
    pub purge_ns: u64,
    /// Worker-local aligner observed the final shard propagation.
    pub align_ns: u64,
    /// Published to the worker's sink.
    pub sink_ns: u64,
    /// The coordinator observed the worker's propagation (coordinator's
    /// own stamp, no translation involved).
    pub observe_ns: u64,
}

impl WorkerSpan {
    /// True when every stage carries a stamp.
    pub fn complete(&self) -> bool {
        self.ingest_ns > 0
            && self.purge_ns > 0
            && self.align_ns > 0
            && self.sink_ns > 0
            && self.observe_ns > 0
    }

    /// True when the recorded stages never go backwards.
    pub fn monotone(&self) -> bool {
        let stages = [self.ingest_ns, self.purge_ns, self.align_ns, self.sink_ns, self.observe_ns];
        let mut prev = 0u64;
        for s in stages.into_iter().filter(|&s| s > 0) {
            if s < prev {
                return false;
            }
            prev = s;
        }
        true
    }
}

/// One punctuation's cluster-wide lifecycle: coordinator route → one
/// lane per target worker → coordinator merge. All stamps are in the
/// coordinator's clock domain.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PunctSpan {
    /// The coordinator's aligner sequence for this punctuation.
    pub seq: u64,
    /// Input side: 0 = left, 1 = right.
    pub side: u8,
    /// Content hash of the punctuation.
    pub key: u64,
    /// The coordinator routed it to the target workers.
    pub route_ns: u64,
    /// The coordinator's aligner emitted the merged copy downstream.
    pub merge_ns: u64,
    /// One lane per target worker under the final routing (after any
    /// re-injection), ascending by worker.
    pub workers: Vec<WorkerSpan>,
}

impl PunctSpan {
    /// End-to-end propagation lag: route → merge (0 if never merged).
    pub fn lag_ns(&self) -> u64 {
        self.merge_ns.saturating_sub(self.route_ns)
    }
}

/// Span-assembly state for one routed punctuation.
#[derive(Debug, Clone)]
struct SpanBuilder {
    side: u8,
    key: u64,
    route_ns: u64,
    merge_ns: u64,
    /// Target workers under the most recent routing.
    expected: Vec<u32>,
    /// worker → the coordinator's observation stamp of that worker's
    /// propagation.
    observed: HashMap<u32, u64>,
}

/// The coordinator's telemetry aggregation state, exposed on
/// [`Cluster`](crate::Cluster) while running and moved into the
/// [`ClusterReport`](crate::ClusterReport) at finish.
#[derive(Debug, Clone)]
pub struct ClusterTelemetry {
    settings: TelemetrySettings,
    clocks: Vec<ClockSync>,
    latest: Vec<Option<WorkerTelemetry>>,
    final_seen: Vec<bool>,
    reports: u64,
    /// `(worker, side, key)` → coordinator sequences, in send order —
    /// the occurrence index that correlates worker lifecycle records
    /// back to coordinator sequences.
    sent_log: HashMap<(u32, u8, u64), Vec<u64>>,
    spans: HashMap<u64, SpanBuilder>,
    /// Completed migrations with their pause breakdown.
    pub(crate) migrations: Vec<MigrationStats>,
}

impl ClusterTelemetry {
    /// Empty aggregation state for `workers` workers.
    pub fn new(workers: usize, settings: TelemetrySettings) -> ClusterTelemetry {
        ClusterTelemetry {
            settings,
            clocks: vec![ClockSync::new(); workers],
            latest: vec![None; workers],
            final_seen: vec![false; workers],
            reports: 0,
            sent_log: HashMap::new(),
            spans: HashMap::new(),
            migrations: Vec::new(),
        }
    }

    /// The settings this cluster runs with.
    pub fn settings(&self) -> &TelemetrySettings {
        &self.settings
    }

    /// Folds in one clock probe's result for `worker`.
    pub fn observe_clock(&mut self, worker: usize, t0_ns: u64, peer_ns: u64, t1_ns: u64) {
        self.clocks[worker].observe(t0_ns, peer_ns, t1_ns);
    }

    /// The clock-offset estimate for `worker`.
    pub fn clock(&self, worker: usize) -> &ClockSync {
        &self.clocks[worker]
    }

    /// Ingests one worker report, keeping the newest per worker (by
    /// report sequence). Returns whether it was the worker's final flush.
    pub fn ingest_report(&mut self, worker: usize, report: WorkerTelemetry) -> bool {
        self.reports += 1;
        let is_final = report.final_flush;
        if is_final {
            self.final_seen[worker] = true;
        }
        let newer = self.latest[worker].as_ref().is_none_or(|old| report.seq >= old.seq);
        if newer {
            self.latest[worker] = Some(report);
        }
        is_final
    }

    /// Reports ingested so far (all workers, including superseded ones).
    pub fn reports_ingested(&self) -> u64 {
        self.reports
    }

    /// Forgets everything tied to `worker`'s current incarnation: clock
    /// sync, latest report, and final-flush marker. Called when crash
    /// recovery adopts a replacement worker under the same index — the
    /// replacement restarts its report sequence at zero, which the
    /// stale-report guard in [`ingest_report`](Self::ingest_report)
    /// would otherwise drop forever.
    pub fn reset_worker(&mut self, worker: usize) {
        self.clocks[worker] = ClockSync::new();
        self.latest[worker] = None;
        self.final_seen[worker] = false;
    }

    /// Workers whose final flush has not arrived yet.
    pub fn finals_pending(&self) -> Vec<usize> {
        self.final_seen
            .iter()
            .enumerate()
            .filter(|(_, &seen)| !seen)
            .map(|(w, _)| w)
            .collect()
    }

    /// Records a routing decision for punctuation `seq`: the first call
    /// opens the span; a re-route (re-injection after a repartition)
    /// replaces the expected worker set and appends to the send log, so
    /// the final lanes reflect the topology the punctuation actually
    /// completed under.
    pub fn note_route(&mut self, seq: u64, side: u8, key: u64, now_ns: u64, workers: &[usize]) {
        let expected: Vec<u32> = workers.iter().map(|&w| w as u32).collect();
        for &w in &expected {
            self.sent_log.entry((w, side, key)).or_default().push(seq);
        }
        self.spans
            .entry(seq)
            .and_modify(|s| {
                s.expected = expected.clone();
                s.observed.clear();
            })
            .or_insert(SpanBuilder {
                side,
                key,
                route_ns: now_ns,
                merge_ns: 0,
                expected,
                observed: HashMap::new(),
            });
    }

    /// Records that the coordinator saw `worker`'s propagation of
    /// punctuation `seq` on the merged sink stream.
    pub fn note_observe(&mut self, worker: usize, seq: u64, now_ns: u64) {
        if let Some(span) = self.spans.get_mut(&seq) {
            span.observed.entry(worker as u32).or_insert(now_ns);
        }
    }

    /// Records that the coordinator's aligner emitted punctuation `seq`
    /// downstream.
    pub fn note_merge(&mut self, seq: u64, now_ns: u64) {
        if let Some(span) = self.spans.get_mut(&seq) {
            if span.merge_ns == 0 {
                span.merge_ns = now_ns;
            }
        }
    }

    /// The latest report from `worker`, if any arrived.
    pub fn worker(&self, worker: usize) -> Option<&WorkerTelemetry> {
        self.latest.get(worker).and_then(Option::as_ref)
    }

    /// Number of workers the aggregator tracks.
    pub fn workers(&self) -> usize {
        self.latest.len()
    }

    /// Completed migrations with their pause breakdowns.
    pub fn migrations(&self) -> &[MigrationStats] {
        &self.migrations
    }

    /// Exact cluster-level latency distributions: the element-wise merge
    /// of every worker's cumulative histograms (ingress→emit,
    /// punct→purge, punct→propagation; virtual-time µs).
    pub fn merged_latencies(&self) -> JoinLatencies {
        let mut merged = JoinLatencies::new();
        for report in self.latest.iter().flatten() {
            merged.merge(&report.latencies);
        }
        merged
    }

    /// Cluster-wide per-kind trace totals, merged across workers.
    pub fn merged_summaries(&self) -> Vec<KindSummary> {
        let mut totals: Vec<(u64, u64)> = vec![(0, 0); TraceKind::ALL.len()];
        for report in self.latest.iter().flatten() {
            for s in &report.summaries {
                if let Some(t) = totals.get_mut(s.kind as usize) {
                    t.0 += s.count;
                    t.1 += s.total_dur_ns;
                }
            }
        }
        totals
            .into_iter()
            .enumerate()
            .filter(|(_, (count, _))| *count > 0)
            .map(|(kind, (count, total_dur_ns))| KindSummary {
                kind: kind as u8,
                count,
                total_dur_ns,
            })
            .collect()
    }

    /// Elements consumed across the cluster (sum of worker lifetimes).
    pub fn total_elements(&self) -> u64 {
        self.latest.iter().flatten().map(|r| r.elements).sum()
    }

    /// Elements published to worker sinks across the cluster.
    pub fn total_outputs(&self) -> u64 {
        self.latest.iter().flatten().map(|r| r.outputs).sum()
    }

    /// Backpressure stalls across every worker's ingest server.
    pub fn total_stalls(&self) -> u64 {
        self.latest.iter().flatten().map(|r| r.ingest.stalls).sum()
    }

    /// True when every latest report says trace data is present (the
    /// lifecycle / latency sections are populated, not metrics-only).
    pub fn trace_active(&self) -> bool {
        let mut any = false;
        for report in self.latest.iter().flatten() {
            if !report.trace_compiled {
                return false;
            }
            any = true;
        }
        any
    }

    /// The occurrence-indexed lifecycle record for (`worker`, `side`,
    /// `key`, `seq`): the *n*-th record the worker created for that
    /// punctuation content, where *n* is the position of the **last**
    /// send of `seq` in the send log (re-injection completes on the
    /// latest copy; earlier copies died with their migration epoch).
    fn worker_record(&self, worker: u32, side: u8, key: u64, seq: u64) -> Option<&PunctRecord> {
        let sends = self.sent_log.get(&(worker, side, key))?;
        let occurrence = sends.iter().rposition(|&s| s == seq)?;
        let report = self.latest[worker as usize].as_ref()?;
        report
            .lifecycle
            .iter()
            .filter(|r| r.side == side && r.key == key)
            .nth(occurrence)
    }

    /// Assembles every routed punctuation's cluster-wide span, ascending
    /// by sequence. Worker stamps are clock-normalized and causally
    /// clamped (see the module docs), so each lane is monotone from
    /// route through observe.
    pub fn spans(&self) -> Vec<PunctSpan> {
        let mut seqs: Vec<u64> = self.spans.keys().copied().collect();
        seqs.sort_unstable();
        seqs.into_iter()
            .map(|seq| {
                let b = &self.spans[&seq];
                let mut workers = Vec::with_capacity(b.expected.len());
                for &w in &b.expected {
                    let observe_ns = b.observed.get(&w).copied().unwrap_or(0);
                    // The causal window this lane's remote stamps must
                    // fall into: the coordinator routed before the worker
                    // could see it, and the worker published before the
                    // coordinator could observe it.
                    let hi = match (observe_ns, b.merge_ns) {
                        (0, 0) => u64::MAX,
                        (0, merge) => merge,
                        (obs, _) => obs,
                    };
                    let mut lane = WorkerSpan { worker: w, observe_ns, ..WorkerSpan::default() };
                    let clock = &self.clocks[w as usize];
                    if let Some(rec) = self.worker_record(w, b.side, b.key, seq) {
                        let mut floor = b.route_ns;
                        for (slot, raw) in [
                            (&mut lane.ingest_ns, rec.ingest_ns),
                            (&mut lane.purge_ns, rec.purge_ns),
                            (&mut lane.align_ns, rec.align_ns),
                            (&mut lane.sink_ns, rec.sink_ns),
                        ] {
                            if raw == 0 {
                                continue;
                            }
                            let normalized = clock.to_local(raw);
                            let clamped =
                                punct_trace::telemetry::clamp_span(normalized, floor, hi);
                            *slot = clamped;
                            floor = floor.max(clamped);
                        }
                    }
                    workers.push(lane);
                }
                workers.sort_by_key(|l| l.worker);
                PunctSpan {
                    seq,
                    side: b.side,
                    key: b.key,
                    route_ns: b.route_ns,
                    merge_ns: b.merge_ns,
                    workers,
                }
            })
            .collect()
    }

    /// Distribution of route→merge propagation lag over completed spans,
    /// in nanoseconds.
    pub fn propagation_lag(&self) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for b in self.spans.values() {
            if b.merge_ns > 0 {
                h.record(b.merge_ns.saturating_sub(b.route_ns));
            }
        }
        h
    }

    /// Prometheus text exposition of the merged cluster state.
    pub fn metrics_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(4096);
        let _ = writeln!(out, "# TYPE pjoin_worker_elements_total counter");
        for (w, r) in self.latest.iter().enumerate() {
            let Some(r) = r else { continue };
            let _ = writeln!(out, "pjoin_worker_elements_total{{worker=\"{w}\"}} {}", r.elements);
        }
        let _ = writeln!(out, "# TYPE pjoin_worker_outputs_total counter");
        for (w, r) in self.latest.iter().enumerate() {
            let Some(r) = r else { continue };
            let _ = writeln!(out, "pjoin_worker_outputs_total{{worker=\"{w}\"}} {}", r.outputs);
        }
        let _ = writeln!(out, "# TYPE pjoin_worker_ingest_stalls_total counter");
        for (w, r) in self.latest.iter().enumerate() {
            let Some(r) = r else { continue };
            let _ = writeln!(
                out,
                "pjoin_worker_ingest_stalls_total{{worker=\"{w}\"}} {}",
                r.ingest.stalls
            );
        }
        let _ = writeln!(out, "# TYPE pjoin_shard_state_tuples gauge");
        for (w, r) in self.latest.iter().enumerate() {
            let Some(r) = r else { continue };
            for s in &r.shards {
                let _ = writeln!(
                    out,
                    "pjoin_shard_state_tuples{{worker=\"{w}\",shard=\"{}\"}} {}",
                    s.shard, s.state_tuples
                );
            }
        }
        let merged = self.merged_latencies();
        for (name, h) in [
            ("pjoin_cluster_tuple_emit_us", &merged.tuple_emit),
            ("pjoin_cluster_punct_purge_us", &merged.punct_purge),
            ("pjoin_cluster_punct_propagate_us", &merged.punct_propagate),
        ] {
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cum = 0u64;
            for (i, count) in h.nonzero_buckets() {
                cum += count;
                let (_, hi) = LatencyHistogram::bucket_bounds(i);
                let _ = writeln!(out, "{name}_bucket{{le=\"{hi}\"}} {cum}");
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cum}");
            let _ = writeln!(out, "{name}_sum {}", h.sum());
            let _ = writeln!(out, "{name}_count {}", h.count());
        }
        let _ = writeln!(out, "# TYPE pjoin_cluster_punctuations_total counter");
        let _ = writeln!(out, "pjoin_cluster_punctuations_total {}", self.spans.len());
        let merged_count = self.spans.values().filter(|s| s.merge_ns > 0).count();
        let _ = writeln!(out, "# TYPE pjoin_cluster_punctuations_merged_total counter");
        let _ = writeln!(out, "pjoin_cluster_punctuations_merged_total {merged_count}");
        let _ = writeln!(out, "# TYPE pjoin_cluster_migrations_total counter");
        let _ = writeln!(out, "pjoin_cluster_migrations_total {}", self.migrations.len());
        let pause_ns: u64 = self.migrations.iter().map(|m| m.pause.as_nanos() as u64).sum();
        let _ = writeln!(out, "# TYPE pjoin_cluster_migration_pause_ns_total counter");
        let _ = writeln!(out, "pjoin_cluster_migration_pause_ns_total {pause_ns}");
        out
    }

    /// JSONL export of the merged cluster telemetry: flat objects, one
    /// per line, validated by [`validate_cluster_jsonl`]. Line types:
    /// `cluster`, `worker`, `shard`, `summary`, `hist`, `hist_summary`,
    /// `punct_span`, `punct_stage`, `migration`.
    pub fn to_jsonl(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(8192);
        let spans = self.spans();
        let merged_count = spans.iter().filter(|s| s.merge_ns > 0).count();
        let _ = writeln!(
            out,
            "{{\"type\":\"cluster\",\"workers\":{},\"puncts\":{},\"merged\":{merged_count},\
             \"elements\":{},\"outputs\":{},\"trace_active\":{}}}",
            self.latest.len(),
            spans.len(),
            self.total_elements(),
            self.total_outputs(),
            self.trace_active() as u8,
        );
        for (w, r) in self.latest.iter().enumerate() {
            let Some(r) = r else { continue };
            let _ = writeln!(
                out,
                "{{\"type\":\"worker\",\"worker\":{w},\"seq\":{},\"final\":{},\
                 \"elements\":{},\"outputs\":{},\"connections\":{},\"frames\":{},\
                 \"bytes\":{},\"duplicates\":{},\"stalls\":{}}}",
                r.seq,
                r.final_flush as u8,
                r.elements,
                r.outputs,
                r.ingest.connections,
                r.ingest.frames_received,
                r.ingest.bytes_received,
                r.ingest.duplicates_suppressed,
                r.ingest.stalls,
            );
            for s in &r.shards {
                let _ = writeln!(
                    out,
                    "{{\"type\":\"shard\",\"worker\":{w},\"shard\":{},\"consumed\":{},\
                     \"state_tuples\":{},\"emitted\":{}}}",
                    s.shard, s.consumed, s.state_tuples, s.emitted,
                );
            }
        }
        for s in self.merged_summaries() {
            let name = s.trace_kind().map(TraceKind::name).unwrap_or("unknown");
            let _ = writeln!(
                out,
                "{{\"type\":\"summary\",\"kind\":\"{name}\",\"count\":{},\"total_dur_ns\":{}}}",
                s.count, s.total_dur_ns,
            );
        }
        let merged = self.merged_latencies();
        for (name, h) in [
            ("tuple_emit", &merged.tuple_emit),
            ("punct_purge", &merged.punct_purge),
            ("punct_propagate", &merged.punct_propagate),
        ] {
            for (i, count) in h.nonzero_buckets() {
                let (lo, hi) = LatencyHistogram::bucket_bounds(i);
                let _ = writeln!(
                    out,
                    "{{\"type\":\"hist\",\"name\":\"{name}\",\"bucket\":{i},\"lo\":{lo},\
                     \"hi\":{hi},\"count\":{count}}}",
                );
            }
            let _ = writeln!(
                out,
                "{{\"type\":\"hist_summary\",\"name\":\"{name}\",\"count\":{},\"sum\":{},\
                 \"max\":{},\"p50\":{},\"p99\":{}}}",
                h.count(),
                h.sum(),
                h.max(),
                h.quantile(0.5),
                h.quantile(0.99),
            );
        }
        for span in &spans {
            let _ = writeln!(
                out,
                "{{\"type\":\"punct_span\",\"seq\":{},\"side\":{},\"key\":{},\
                 \"route_ns\":{},\"merge_ns\":{},\"workers\":{}}}",
                span.seq,
                span.side,
                span.key,
                span.route_ns,
                span.merge_ns,
                span.workers.len(),
            );
            for lane in &span.workers {
                let _ = writeln!(
                    out,
                    "{{\"type\":\"punct_stage\",\"seq\":{},\"worker\":{},\"ingest_ns\":{},\
                     \"purge_ns\":{},\"align_ns\":{},\"sink_ns\":{},\"observe_ns\":{}}}",
                    span.seq,
                    lane.worker,
                    lane.ingest_ns,
                    lane.purge_ns,
                    lane.align_ns,
                    lane.sink_ns,
                    lane.observe_ns,
                );
            }
        }
        for m in &self.migrations {
            let _ = writeln!(
                out,
                "{{\"type\":\"migration\",\"epoch\":{},\"shards\":{},\"records_moved\":{},\
                 \"puncts_reinjected\":{},\"pause_ns\":{},\"drain_ns\":{},\"export_ns\":{},\
                 \"install_ns\":{},\"reinject_ns\":{}}}",
                m.epoch,
                m.shards,
                m.records_moved,
                m.puncts_reinjected,
                m.pause.as_nanos(),
                m.drain.as_nanos(),
                m.export.as_nanos(),
                m.install.as_nanos(),
                m.reinject.as_nanos(),
            );
        }
        out
    }

    /// The live cluster dashboard: per-worker occupancy and stall
    /// meters, punctuation propagation lag, migration events, and the
    /// merged latency histograms.
    pub fn dashboard_text(&self, width: usize) -> String {
        use std::fmt::Write as _;
        let width = width.clamp(16, 120);
        let mut out = String::with_capacity(4096);
        let _ = writeln!(
            out,
            "cluster: {} workers, {} elements in, {} outputs, {} punctuations routed",
            self.latest.len(),
            self.total_elements(),
            self.total_outputs(),
            self.spans.len(),
        );
        let occupancy: Vec<(usize, u64, u64, usize)> = self
            .latest
            .iter()
            .enumerate()
            .filter_map(|(w, r)| r.as_ref().map(|r| (w, r)))
            .map(|(w, r)| {
                let tuples: u64 = r.shards.iter().map(|s| s.state_tuples).sum();
                (w, tuples, r.ingest.stalls, r.shards.len())
            })
            .collect();
        let peak_tuples = occupancy.iter().map(|&(_, t, _, _)| t).max().unwrap_or(0);
        let peak_stalls = occupancy.iter().map(|&(_, _, s, _)| s).max().unwrap_or(0);
        for (w, tuples, stalls, shards) in occupancy {
            let _ = writeln!(
                out,
                "worker {w}: {shards} shards  state {}  stalls {}",
                meter(tuples, peak_tuples, width / 2),
                meter(stalls, peak_stalls, width / 4),
            );
        }
        let lag = self.propagation_lag();
        if !lag.is_empty() {
            out.push('\n');
            out.push_str(&histogram_chart(&lag, "punct route -> merge lag (ns)", width / 2));
        }
        for m in &self.migrations {
            let _ = writeln!(
                out,
                "migration: epoch {} -> {} shards, {} records, {} puncts re-injected, \
                 pause {:?} (drain {:?}, export {:?}, install {:?}, reinject {:?})",
                m.epoch,
                m.shards,
                m.records_moved,
                m.puncts_reinjected,
                m.pause,
                m.drain,
                m.export,
                m.install,
                m.reinject,
            );
        }
        let merged = self.merged_latencies();
        if !merged.is_empty() {
            out.push('\n');
            out.push_str(&punct_trace::latency_report(&merged, width / 2));
        }
        out
    }
}

/// Totals recovered from a cluster telemetry JSONL dump by
/// [`validate_cluster_jsonl`] — everything the exactly-once check needs,
/// recomputed from the artifact alone.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JsonlSummary {
    /// Workers announced on the `cluster` line.
    pub workers: u64,
    /// Punctuations routed (cluster line).
    pub puncts: u64,
    /// Punctuations merged downstream (cluster line).
    pub merged: u64,
    /// Whether trace data was active (cluster line).
    pub trace_active: bool,
    /// Sequences seen on `punct_span` lines, with their merge stamps.
    pub spans: Vec<(u64, u64)>,
    /// `punct_stage` lines per sequence.
    pub stages: HashMap<u64, u64>,
    /// Total count of the merged ingress→emit histogram.
    pub tuple_emit_count: u64,
    /// `migration` lines seen.
    pub migrations: u64,
}

fn field<'a>(
    fields: &'a [(String, JsonValue)],
    key: &str,
    line_no: usize,
) -> Result<&'a JsonValue, String> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("line {line_no}: missing field \"{key}\""))
}

fn num(fields: &[(String, JsonValue)], key: &str, line_no: usize) -> Result<u64, String> {
    match field(fields, key, line_no)? {
        JsonValue::Num(n) => Ok(*n),
        JsonValue::Str(_) => {
            Err(format!("line {line_no}: \"{key}\" must be an unsigned integer"))
        }
    }
}

/// Validates a dump written by [`ClusterTelemetry::to_jsonl`]: every
/// line must be a flat object with a known `type` and that type's
/// required numeric fields. Returns the recovered totals.
pub fn validate_cluster_jsonl(input: &str) -> Result<JsonlSummary, String> {
    let mut summary = JsonlSummary::default();
    let mut saw_cluster = false;
    for (i, line) in input.lines().enumerate() {
        let line_no = i + 1;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields = punct_trace::parse_flat_object(line)
            .map_err(|e| format!("line {line_no}: {e}"))?;
        let kind = match field(&fields, "type", line_no)? {
            JsonValue::Str(s) => s.clone(),
            JsonValue::Num(_) => {
                return Err(format!("line {line_no}: \"type\" must be a string"))
            }
        };
        let require = |keys: &[&str]| -> Result<(), String> {
            for k in keys {
                num(&fields, k, line_no)?;
            }
            Ok(())
        };
        match kind.as_str() {
            "cluster" => {
                if saw_cluster {
                    return Err(format!("line {line_no}: duplicate cluster line"));
                }
                saw_cluster = true;
                summary.workers = num(&fields, "workers", line_no)?;
                summary.puncts = num(&fields, "puncts", line_no)?;
                summary.merged = num(&fields, "merged", line_no)?;
                summary.trace_active = num(&fields, "trace_active", line_no)? != 0;
                require(&["elements", "outputs"])?;
            }
            "worker" => require(&[
                "worker",
                "seq",
                "final",
                "elements",
                "outputs",
                "connections",
                "frames",
                "bytes",
                "duplicates",
                "stalls",
            ])?,
            "shard" => require(&["worker", "shard", "consumed", "state_tuples", "emitted"])?,
            "summary" => {
                let name = match field(&fields, "kind", line_no)? {
                    JsonValue::Str(s) => s.clone(),
                    JsonValue::Num(_) => {
                        return Err(format!("line {line_no}: \"kind\" must be a string"))
                    }
                };
                if TraceKind::from_name(&name).is_none() {
                    return Err(format!("line {line_no}: unknown trace kind \"{name}\""));
                }
                require(&["count", "total_dur_ns"])?;
            }
            "hist" => {
                require(&["bucket", "lo", "hi", "count"])?;
                let JsonValue::Str(_) = field(&fields, "name", line_no)? else {
                    return Err(format!("line {line_no}: \"name\" must be a string"));
                };
            }
            "hist_summary" => {
                let name = match field(&fields, "name", line_no)? {
                    JsonValue::Str(s) => s.clone(),
                    JsonValue::Num(_) => {
                        return Err(format!("line {line_no}: \"name\" must be a string"))
                    }
                };
                require(&["count", "sum", "max", "p50", "p99"])?;
                if name == "tuple_emit" {
                    summary.tuple_emit_count = num(&fields, "count", line_no)?;
                }
            }
            "punct_span" => {
                require(&["seq", "side", "key", "route_ns", "merge_ns", "workers"])?;
                summary
                    .spans
                    .push((num(&fields, "seq", line_no)?, num(&fields, "merge_ns", line_no)?));
            }
            "punct_stage" => {
                require(&[
                    "seq",
                    "worker",
                    "ingest_ns",
                    "purge_ns",
                    "align_ns",
                    "sink_ns",
                    "observe_ns",
                ])?;
                *summary.stages.entry(num(&fields, "seq", line_no)?).or_insert(0) += 1;
            }
            "migration" => {
                require(&[
                    "epoch",
                    "shards",
                    "records_moved",
                    "puncts_reinjected",
                    "pause_ns",
                    "drain_ns",
                    "export_ns",
                    "install_ns",
                    "reinject_ns",
                ])?;
                summary.migrations += 1;
            }
            other => return Err(format!("line {line_no}: unknown line type \"{other}\"")),
        }
    }
    if !saw_cluster {
        return Err("no cluster line".into());
    }
    Ok(summary)
}

/// Recomputes the exactly-once punctuation property from a validated
/// telemetry dump alone: `pushed` distinct punctuations were routed, and
/// every one of them was merged downstream exactly once (one span per
/// sequence `0..pushed`, each carrying a merge stamp).
pub fn check_exactly_once(summary: &JsonlSummary, pushed: u64) -> Result<(), String> {
    if summary.puncts != pushed {
        return Err(format!("{} punctuations routed, expected {pushed}", summary.puncts));
    }
    if summary.merged != pushed {
        return Err(format!("{} punctuations merged, expected {pushed}", summary.merged));
    }
    if summary.spans.len() as u64 != pushed {
        return Err(format!("{} span lines, expected {pushed}", summary.spans.len()));
    }
    let mut seqs: Vec<u64> = summary.spans.iter().map(|&(s, _)| s).collect();
    seqs.sort_unstable();
    seqs.dedup();
    if seqs.len() as u64 != pushed {
        return Err("duplicate span sequences".into());
    }
    if let (Some(&first), Some(&last)) = (seqs.first(), seqs.last()) {
        if first != 0 || last != pushed - 1 {
            return Err(format!("span sequences not dense: {first}..={last}"));
        }
    }
    for &(seq, merge_ns) in &summary.spans {
        if merge_ns == 0 {
            return Err(format!("punctuation {seq} was never merged"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use punct_trace::{IngestCounters, ShardSnapshot};
    use std::time::Duration;

    fn report(worker: u32, seq: u64, records: Vec<PunctRecord>) -> WorkerTelemetry {
        let mut latencies = JoinLatencies::new();
        latencies.tuple_emit.record(10 + worker as u64);
        WorkerTelemetry {
            worker,
            seq,
            final_flush: false,
            trace_compiled: true,
            elements: 100,
            outputs: 90,
            latencies,
            shards: vec![ShardSnapshot {
                shard: worker,
                consumed: 50,
                state_tuples: 5,
                emitted: 45,
            }],
            summaries: vec![KindSummary { kind: TraceKind::Purge.index(), count: 3, total_dur_ns: 900 }],
            lifecycle: records,
            ingest: IngestCounters { stalls: worker as u64, ..IngestCounters::default() },
        }
    }

    #[test]
    fn latest_report_wins_and_merges_exactly() {
        let mut t = ClusterTelemetry::new(2, TelemetrySettings::default());
        assert!(!t.ingest_report(0, report(0, 1, Vec::new())));
        assert!(!t.ingest_report(0, report(0, 2, Vec::new())));
        // A stale replay never regresses the kept snapshot.
        assert!(!t.ingest_report(0, report(0, 1, Vec::new())));
        assert!(!t.ingest_report(1, report(1, 1, Vec::new())));
        assert_eq!(t.worker(0).map(|r| r.seq), Some(2));
        let merged = t.merged_latencies();
        assert_eq!(merged.tuple_emit.count(), 2); // one per worker, not per report
        assert_eq!(t.total_elements(), 200);
        assert_eq!(t.total_stalls(), 1);
        let summaries = t.merged_summaries();
        assert_eq!(summaries.len(), 1);
        assert_eq!(summaries[0].count, 6);
        assert!(t.trace_active());
        assert_eq!(t.finals_pending(), vec![0, 1]);
    }

    #[test]
    fn span_assembly_normalizes_and_clamps() {
        let mut t = ClusterTelemetry::new(2, TelemetrySettings::default());
        // Worker 1's clock is 1 ms ahead.
        t.observe_clock(1, 1_000, 1_001_500, 2_000);
        t.note_route(0, 0, 0xABCD, 10_000, &[1]);
        t.note_observe(1, 0, 90_000);
        t.note_merge(0, 95_000);
        let rec = PunctRecord {
            side: 0,
            key: 0xABCD,
            // Worker clock domain: true coordinator times 20k/30k/40k/50k.
            ingest_ns: 1_020_000,
            purge_ns: 1_030_000,
            align_ns: 1_040_000,
            sink_ns: 1_050_000,
        };
        t.ingest_report(1, report(1, 1, vec![rec]));
        let spans = t.spans();
        assert_eq!(spans.len(), 1);
        let span = &spans[0];
        assert_eq!(span.route_ns, 10_000);
        assert_eq!(span.merge_ns, 95_000);
        assert_eq!(span.lag_ns(), 85_000);
        assert_eq!(span.workers.len(), 1);
        let lane = &span.workers[0];
        assert!(lane.complete(), "all stages stamped: {lane:?}");
        assert!(lane.monotone());
        assert!(lane.ingest_ns >= span.route_ns);
        assert!(lane.sink_ns <= lane.observe_ns);
        // Offset removed: stamps land near their true coordinator times.
        assert!(lane.ingest_ns.abs_diff(20_000) < 2_000, "{}", lane.ingest_ns);
    }

    #[test]
    fn reinjection_uses_the_latest_occurrence() {
        let mut t = ClusterTelemetry::new(2, TelemetrySettings::default());
        let key = 7u64;
        t.note_route(0, 0, key, 1_000, &[0, 1]);
        t.note_observe(0, 0, 2_000);
        // Migration: re-route to worker 0 only; worker 0 saw the
        // punctuation twice (two lifecycle records, the second complete).
        t.note_route(0, 0, key, 5_000, &[0]);
        t.note_observe(0, 0, 9_000);
        t.note_merge(0, 9_500);
        let first = PunctRecord { side: 0, key, ingest_ns: 1_100, purge_ns: 1_200, align_ns: 0, sink_ns: 0 };
        let second = PunctRecord { side: 0, key, ingest_ns: 6_000, purge_ns: 7_000, align_ns: 7_500, sink_ns: 8_000 };
        t.ingest_report(0, report(0, 1, vec![first, second]));
        let spans = t.spans();
        assert_eq!(spans[0].workers.len(), 1, "re-route replaced the lane set");
        let lane = &spans[0].workers[0];
        assert_eq!(lane.worker, 0);
        assert!(lane.complete());
        assert!(lane.ingest_ns >= 5_000, "the second record was used: {lane:?}");
    }

    #[test]
    fn jsonl_round_trips_through_validator() {
        let mut t = ClusterTelemetry::new(1, TelemetrySettings::default());
        let key = 42u64;
        t.note_route(0, 1, key, 100, &[0]);
        t.note_observe(0, 0, 300);
        t.note_merge(0, 400);
        let rec = PunctRecord { side: 1, key, ingest_ns: 150, purge_ns: 200, align_ns: 220, sink_ns: 250 };
        let mut r = report(0, 3, vec![rec]);
        r.final_flush = true;
        t.ingest_report(0, r);
        t.migrations.push(MigrationStats {
            epoch: 2,
            shards: 4,
            records_moved: 10,
            puncts_reinjected: 1,
            pause: Duration::from_millis(5),
            drain: Duration::from_millis(1),
            export: Duration::from_millis(1),
            install: Duration::from_millis(2),
            reinject: Duration::from_millis(1),
        });
        let dump = t.to_jsonl();
        let summary = validate_cluster_jsonl(&dump).expect("valid dump");
        assert_eq!(summary.workers, 1);
        assert_eq!(summary.puncts, 1);
        assert_eq!(summary.merged, 1);
        assert!(summary.trace_active);
        assert_eq!(summary.migrations, 1);
        assert_eq!(summary.stages.get(&0), Some(&1));
        assert_eq!(summary.tuple_emit_count, 1);
        check_exactly_once(&summary, 1).expect("exactly once");
        // A dump claiming more punctuations than were pushed fails.
        assert!(check_exactly_once(&summary, 2).is_err());
        // Corrupt lines are rejected.
        assert!(validate_cluster_jsonl("{\"type\":\"warp\"}").is_err());
        assert!(validate_cluster_jsonl("{\"no_type\":1}").is_err());
        assert!(validate_cluster_jsonl("").is_err(), "missing cluster line");
    }

    #[test]
    fn metrics_text_and_dashboard_render() {
        let mut t = ClusterTelemetry::new(2, TelemetrySettings::default());
        t.ingest_report(0, report(0, 1, Vec::new()));
        t.ingest_report(1, report(1, 1, Vec::new()));
        t.note_route(0, 0, 9, 100, &[0, 1]);
        t.note_observe(0, 0, 200);
        t.note_observe(1, 0, 250);
        t.note_merge(0, 300);
        let text = t.metrics_text();
        assert!(text.contains("pjoin_worker_elements_total{worker=\"0\"} 100"));
        assert!(text.contains("pjoin_cluster_tuple_emit_us_bucket"));
        assert!(text.contains("pjoin_cluster_tuple_emit_us_count 2"));
        assert!(text.contains("pjoin_cluster_punctuations_total 1"));
        assert!(text.contains("pjoin_cluster_punctuations_merged_total 1"));
        let dash = t.dashboard_text(80);
        assert!(dash.contains("worker 0"));
        assert!(dash.contains("punct route -> merge lag"));
    }
}
