//! The cluster-layer protocol: the join specification blob carried in
//! `ShardMapUpdate`, the in-band barrier punctuations that coordinate
//! repartitioning, and a small blocking control-plane connection over
//! the shared [`Frame`] codec.
//!
//! ## Barriers are punctuations
//!
//! A repartition barrier is an ordinary punctuation with
//! [`Pattern::Empty`] on the **join attribute** — a pattern that matches
//! no value, so it closes nothing and would be inert through PJoin. It
//! rides the data streams like any element: it is ordered behind every
//! tuple and punctuation pushed before it, it is sequence-numbered by the
//! transport, and it is therefore delivered **exactly once** even
//! through a faulty link. Workers recognise it by shape and never feed
//! it to their joins; the cluster layer reserves Empty-at-join-attr
//! punctuations for itself.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use pjoin::{IndexBuildStrategy, PJoinConfig, PropagationTrigger, PurgeStrategy};
use punct_net::{encode_frame, Frame, FrameBuffer};
use punct_types::{Pattern, Punctuation, Schema, ValueType, WireReader};
use stream_sim::Side;

use crate::error::ClusterError;

/// Records per `MigrateState` frame on the wire.
pub const MIGRATE_CHUNK: usize = 4096;

/// Default deadline for any single control-plane exchange.
pub const CTRL_TIMEOUT: Duration = Duration::from_secs(30);

/// The cluster-wide join specification: everything a worker needs to
/// build a PJoin identical to every other shard's.
///
/// Cluster v1 pins the operational strategies — **eager purge, eager
/// index build, per-punctuation propagation, memory-only state** — so
/// that a drained shard's state is exactly its stored tuples
/// ([`PJoin::export_records`](pjoin::PJoin::export_records) enforces
/// this) and every received punctuation is propagated by stream end.
/// Only the schema-shaped knobs travel in the blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinSpec {
    /// Width (attribute count) of stream A tuples.
    pub width_a: usize,
    /// Width of stream B tuples.
    pub width_b: usize,
    /// Join attribute index in stream A tuples.
    pub join_attr_a: usize,
    /// Join attribute index in stream B tuples.
    pub join_attr_b: usize,
    /// Hash buckets per input state, per shard.
    pub buckets: usize,
}

impl JoinSpec {
    /// A spec for `(key, payload…)` streams of the given widths, joining
    /// on attribute 0 with the default bucket count.
    pub fn new(width_a: usize, width_b: usize) -> JoinSpec {
        JoinSpec { width_a, width_b, join_attr_a: 0, join_attr_b: 0, buckets: 64 }
    }

    /// Width of output (joined) tuples.
    pub fn output_width(&self) -> usize {
        self.width_a + self.width_b
    }

    /// Tuple width of `side`'s input.
    pub fn side_width(&self, side: Side) -> usize {
        match side {
            Side::Left => self.width_a,
            Side::Right => self.width_b,
        }
    }

    /// Join attribute index of `side`'s input.
    pub fn join_attr(&self, side: Side) -> usize {
        match side {
            Side::Left => self.join_attr_a,
            Side::Right => self.join_attr_b,
        }
    }

    /// Attribute offset of `side`'s input within output tuples.
    pub fn side_offset(&self, side: Side) -> usize {
        match side {
            Side::Left => 0,
            Side::Right => self.width_a,
        }
    }

    /// The PJoin configuration every shard runs: the spec's schema knobs
    /// with the cluster-v1 strategy pins (eager purge, eager index,
    /// propagate on every punctuation, no spilling, no window).
    pub fn pjoin_config(&self) -> PJoinConfig {
        let mut cfg = PJoinConfig::new(self.width_a, self.width_b);
        cfg.join_attr_a = self.join_attr_a;
        cfg.join_attr_b = self.join_attr_b;
        cfg.buckets = self.buckets.max(1);
        cfg.purge = PurgeStrategy::Eager;
        cfg.index_build = IndexBuildStrategy::Eager;
        cfg.propagation = PropagationTrigger::PushCount { count: 1 };
        cfg.memory_max_tuples = 0;
        cfg.window_us = None;
        cfg
    }

    /// A placeholder transport schema of `side`'s width. The ingest
    /// handshake carries a schema for forward compatibility but does not
    /// validate values against it, so the column types are nominal.
    pub fn side_schema(&self, side: Side) -> Schema {
        let fields: Vec<(String, ValueType)> =
            (0..self.side_width(side)).map(|i| (format!("c{i}"), ValueType::Int)).collect();
        let refs: Vec<(&str, ValueType)> =
            fields.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        Schema::of(&refs)
    }

    /// The bare join-spec blob (no telemetry settings); the full
    /// `ShardMapUpdate` payload is built by [`encode_config`].
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(20);
        for v in [self.width_a, self.width_b, self.join_attr_a, self.join_attr_b, self.buckets] {
            buf.extend_from_slice(&(v as u32).to_le_bytes());
        }
        buf
    }

    /// Decodes the spec fields from `r` without demanding the reader be
    /// fully consumed — the config blob may carry trailing sections.
    fn decode_from(r: &mut WireReader<'_>) -> Result<JoinSpec, ClusterError> {
        let spec = JoinSpec {
            width_a: r.u32("spec width_a")? as usize,
            width_b: r.u32("spec width_b")? as usize,
            join_attr_a: r.u32("spec join_attr_a")? as usize,
            join_attr_b: r.u32("spec join_attr_b")? as usize,
            buckets: r.u32("spec buckets")? as usize,
        };
        if spec.join_attr_a >= spec.width_a || spec.join_attr_b >= spec.width_b {
            return Err(ClusterError::Protocol(format!(
                "join spec attributes out of range: {spec:?}"
            )));
        }
        Ok(spec)
    }

    /// Decodes a blob written by [`encode`](JoinSpec::encode).
    pub fn decode(bytes: &[u8]) -> Result<JoinSpec, ClusterError> {
        let mut r = WireReader::new(bytes);
        let spec = JoinSpec::decode_from(&mut r)?;
        r.finish()?;
        Ok(spec)
    }
}

/// How the telemetry plane runs, as shipped to every worker inside the
/// `ShardMapUpdate` config blob — workers stay boring: they receive
/// their reporting policy with their join configuration and never make
/// a telemetry decision of their own.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetrySettings {
    /// Whether workers send telemetry reports at all. When false, not a
    /// single `Telemetry` frame flows and the data path is exactly the
    /// pre-telemetry one.
    pub enabled: bool,
    /// Periodic report interval in milliseconds (the final flush at
    /// stream end is unconditional when enabled).
    pub interval_ms: u32,
    /// Whether shard joins run with tracing on (latency histograms,
    /// per-kind summaries, punctuation lifecycle records). With tracing
    /// off — or compiled out via `PJOIN_TRACE_DISABLE=1` — reports still
    /// flow, carrying the metrics-only payload.
    pub trace: bool,
}

impl Default for TelemetrySettings {
    fn default() -> TelemetrySettings {
        TelemetrySettings { enabled: true, interval_ms: 1_000, trace: true }
    }
}

impl TelemetrySettings {
    /// Telemetry fully off: no frames, no tracing.
    pub fn disabled() -> TelemetrySettings {
        TelemetrySettings { enabled: false, interval_ms: 0, trace: false }
    }
}

/// Heartbeat liveness policy, shipped to workers inside the
/// `ShardMapUpdate` config blob next to [`TelemetrySettings`]. When
/// enabled, each worker sends a `Heartbeat` frame on its control
/// connection every `interval_ms`; the coordinator declares a worker
/// dead — and starts recovery — once `miss_limit` intervals pass with
/// no frame of any kind from it, catching hung workers that a
/// connection-EOF check would miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeartbeatSettings {
    /// Beacon interval in milliseconds; 0 disables heartbeats entirely
    /// (no frames flow, no liveness deadline is armed).
    pub interval_ms: u32,
    /// Consecutive silent intervals before a worker is declared dead.
    pub miss_limit: u32,
}

impl Default for HeartbeatSettings {
    fn default() -> HeartbeatSettings {
        HeartbeatSettings::disabled()
    }
}

impl HeartbeatSettings {
    /// Heartbeats fully off: zero frames on the wire.
    pub fn disabled() -> HeartbeatSettings {
        HeartbeatSettings { interval_ms: 0, miss_limit: 0 }
    }

    /// Whether the beacon runs.
    pub fn enabled(&self) -> bool {
        self.interval_ms > 0
    }

    /// The silence window after which a worker counts as dead, if the
    /// beacon runs.
    pub fn deadline(&self) -> Option<Duration> {
        self.enabled().then(|| {
            Duration::from_millis(self.interval_ms as u64 * self.miss_limit.max(1) as u64)
        })
    }
}

/// Encodes the full `ShardMapUpdate` config blob: the join spec followed
/// by the telemetry settings and the heartbeat policy.
pub fn encode_config(
    spec: &JoinSpec,
    telemetry: &TelemetrySettings,
    heartbeat: &HeartbeatSettings,
) -> Vec<u8> {
    let mut buf = spec.encode();
    buf.extend_from_slice(&telemetry.interval_ms.to_le_bytes());
    buf.push((telemetry.enabled as u8) | ((telemetry.trace as u8) << 1));
    buf.extend_from_slice(&heartbeat.interval_ms.to_le_bytes());
    buf.extend_from_slice(&heartbeat.miss_limit.to_le_bytes());
    buf
}

/// Decodes a config blob written by [`encode_config`]. A bare join-spec
/// blob (no telemetry section) decodes with telemetry disabled, so the
/// two encodings cannot be confused; a blob ending at the telemetry
/// flags (the pre-durability encoding) decodes with heartbeats disabled.
pub fn decode_config(
    bytes: &[u8],
) -> Result<(JoinSpec, TelemetrySettings, HeartbeatSettings), ClusterError> {
    let mut r = WireReader::new(bytes);
    let spec = JoinSpec::decode_from(&mut r)?;
    if r.remaining() == 0 {
        return Ok((spec, TelemetrySettings::disabled(), HeartbeatSettings::disabled()));
    }
    let interval_ms = r.u32("telemetry interval")?;
    let flags = r.u8("telemetry flags")?;
    let telemetry = TelemetrySettings {
        enabled: flags & 1 != 0,
        interval_ms,
        trace: flags & 2 != 0,
    };
    if r.remaining() == 0 {
        return Ok((spec, telemetry, HeartbeatSettings::disabled()));
    }
    let heartbeat = HeartbeatSettings {
        interval_ms: r.u32("heartbeat interval")?,
        miss_limit: r.u32("heartbeat miss limit")?,
    };
    r.finish()?;
    Ok((spec, telemetry, heartbeat))
}

/// The barrier punctuation for `side`'s input stream: Empty on the join
/// attribute, wildcard elsewhere.
pub fn barrier_punct(spec: &JoinSpec, side: Side) -> Punctuation {
    Punctuation::on_attr(spec.side_width(side), spec.join_attr(side), Pattern::Empty)
}

/// Whether `p` is a cluster barrier (or sink marker): Empty on `attr`.
pub fn is_barrier(p: &Punctuation, attr: usize) -> bool {
    matches!(p.pattern(attr), Some(Pattern::Empty))
}

/// The sink-side barrier marker a worker publishes once both of its
/// input streams reached the barrier: an output-schema punctuation with
/// Empty on stream A's join attribute. Ordinary output punctuations can
/// never collide with it — input barriers are filtered before the joins,
/// and stream B translations fill stream A's columns with wildcards.
pub fn sink_marker(spec: &JoinSpec) -> Punctuation {
    Punctuation::on_attr(spec.output_width(), spec.join_attr_a, Pattern::Empty)
}

/// A blocking control-plane connection: length-delimited [`Frame`]s over
/// plain TCP. The control plane carries only low-rate cluster frames
/// (handshakes, shard maps, migration state), so simplicity beats
/// throughput here — writes are synchronous, reads poll with a short
/// socket timeout.
#[derive(Debug)]
pub struct CtrlConn {
    sock: TcpStream,
    fb: FrameBuffer,
    peer: String,
}

impl CtrlConn {
    /// Connects to a listening control endpoint.
    pub fn connect(addr: SocketAddr) -> Result<CtrlConn, ClusterError> {
        let sock = TcpStream::connect(addr)?;
        CtrlConn::from_stream(sock)
    }

    /// Wraps an accepted control socket.
    pub fn from_stream(sock: TcpStream) -> Result<CtrlConn, ClusterError> {
        sock.set_nodelay(true)?;
        sock.set_read_timeout(Some(Duration::from_millis(20)))?;
        let peer =
            sock.peer_addr().map(|a| a.to_string()).unwrap_or_else(|_| "<unknown>".into());
        Ok(CtrlConn { sock, fb: FrameBuffer::new(), peer })
    }

    /// The peer's address, for diagnostics.
    pub fn peer(&self) -> &str {
        &self.peer
    }

    /// Writes one frame synchronously.
    pub fn send(&mut self, frame: &Frame) -> Result<(), ClusterError> {
        self.sock.write_all(&encode_frame(frame))?;
        Ok(())
    }

    /// Returns a buffered frame, or polls the socket once (bounded by
    /// the socket read timeout). `Ok(None)` means no complete frame yet.
    pub fn try_recv(&mut self) -> Result<Option<Frame>, ClusterError> {
        if let Some(frame) = self.fb.next_frame()? {
            return Ok(Some(frame));
        }
        let mut buf = [0u8; 16 * 1024];
        match self.sock.read(&mut buf) {
            Ok(0) => return Err(ClusterError::Disconnected(self.peer.clone())),
            Ok(n) => self.fb.extend(&buf[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(ClusterError::Io(e)),
        }
        Ok(self.fb.next_frame()?)
    }

    /// Returns a buffered frame, or polls the socket **without
    /// blocking**. Unlike [`try_recv`](CtrlConn::try_recv) — which can
    /// wait up to the 20 ms socket read timeout — this flips the socket
    /// into non-blocking mode for a single read and restores it, so the
    /// coordinator can drain telemetry pushes between sink polls without
    /// stalling the data path.
    pub fn poll_recv(&mut self) -> Result<Option<Frame>, ClusterError> {
        if let Some(frame) = self.fb.next_frame()? {
            return Ok(Some(frame));
        }
        self.sock.set_nonblocking(true)?;
        let mut buf = [0u8; 16 * 1024];
        let read = self.sock.read(&mut buf);
        self.sock.set_nonblocking(false)?;
        match read {
            Ok(0) => return Err(ClusterError::Disconnected(self.peer.clone())),
            Ok(n) => self.fb.extend(&buf[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(ClusterError::Io(e)),
        }
        Ok(self.fb.next_frame()?)
    }

    /// Blocks until a frame arrives or `deadline` passes.
    pub fn recv_deadline(&mut self, deadline: Instant, what: &str) -> Result<Frame, ClusterError> {
        loop {
            if let Some(frame) = self.try_recv()? {
                return Ok(frame);
            }
            if Instant::now() >= deadline {
                return Err(ClusterError::Timeout(format!("{what} from {}", self.peer)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_blob_round_trip() {
        let mut spec = JoinSpec::new(3, 2);
        spec.join_attr_a = 1;
        spec.buckets = 16;
        let blob = spec.encode();
        assert_eq!(JoinSpec::decode(&blob).expect("decode"), spec);
        // Out-of-range attributes are rejected.
        let mut bad = JoinSpec::new(2, 2);
        bad.join_attr_b = 5;
        assert!(JoinSpec::decode(&bad.encode()).is_err());
        assert!(JoinSpec::decode(&blob[..10]).is_err());
    }

    #[test]
    fn config_blob_carries_telemetry_settings() {
        let spec = JoinSpec::new(3, 2);
        let telemetry =
            TelemetrySettings { enabled: true, interval_ms: 250, trace: false };
        let heartbeat = HeartbeatSettings { interval_ms: 40, miss_limit: 5 };
        let blob = encode_config(&spec, &telemetry, &heartbeat);
        let (spec2, telemetry2, heartbeat2) = decode_config(&blob).expect("decode");
        assert_eq!(spec2, spec);
        assert_eq!(telemetry2, telemetry);
        assert_eq!(heartbeat2, heartbeat);
        // A bare spec blob decodes with telemetry and heartbeats off.
        let (spec3, telemetry3, heartbeat3) = decode_config(&spec.encode()).expect("bare");
        assert_eq!(spec3, spec);
        assert_eq!(telemetry3, TelemetrySettings::disabled());
        assert_eq!(heartbeat3, HeartbeatSettings::disabled());
        // The pre-durability encoding (spec + telemetry, no heartbeat
        // section) still decodes, with heartbeats off.
        let (_, telemetry4, heartbeat4) =
            decode_config(&blob[..blob.len() - 8]).expect("pre-durability blob");
        assert_eq!(telemetry4, telemetry);
        assert_eq!(heartbeat4, HeartbeatSettings::disabled());
        // Truncated sections are rejected.
        assert!(decode_config(&blob[..blob.len() - 1]).is_err());
        assert!(decode_config(&blob[..blob.len() - 9]).is_err());
    }

    #[test]
    fn heartbeat_deadline_math() {
        assert_eq!(HeartbeatSettings::disabled().deadline(), None);
        let hb = HeartbeatSettings { interval_ms: 50, miss_limit: 4 };
        assert!(hb.enabled());
        assert_eq!(hb.deadline(), Some(Duration::from_millis(200)));
        // A zero miss limit still yields one interval of grace.
        let hb = HeartbeatSettings { interval_ms: 50, miss_limit: 0 };
        assert_eq!(hb.deadline(), Some(Duration::from_millis(50)));
    }

    #[test]
    fn spec_pins_cluster_strategies() {
        let cfg = JoinSpec::new(2, 4).pjoin_config();
        assert_eq!(cfg.purge, PurgeStrategy::Eager);
        assert_eq!(cfg.index_build, IndexBuildStrategy::Eager);
        assert_eq!(cfg.propagation, PropagationTrigger::PushCount { count: 1 });
        assert_eq!(cfg.memory_max_tuples, 0);
        assert_eq!(cfg.output_width(), 6);
    }

    #[test]
    fn barriers_are_empty_on_the_join_attr() {
        let mut spec = JoinSpec::new(2, 3);
        spec.join_attr_b = 2;
        let left = barrier_punct(&spec, Side::Left);
        let right = barrier_punct(&spec, Side::Right);
        assert!(is_barrier(&left, 0));
        assert!(is_barrier(&right, 2));
        assert!(!is_barrier(&right, 0));
        assert_eq!(left.width(), 2);
        assert_eq!(right.width(), 3);
        let marker = sink_marker(&spec);
        assert_eq!(marker.width(), 5);
        assert!(is_barrier(&marker, 0));
        // An ordinary closing punctuation is not a barrier.
        assert!(!is_barrier(&Punctuation::close_value(2, 0, 7i64), 0));
    }
}
