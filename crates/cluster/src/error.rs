//! Cluster-layer errors.

use std::fmt;

use pjoin::StateExportError;
use punct_durable::SnapshotError;
use punct_net::NetError;
use punct_types::WireError;

/// Everything that can go wrong running a cluster: transport failures,
/// malformed control frames, and protocol-state violations (a frame the
/// current migration state machine cannot accept).
#[derive(Debug)]
pub enum ClusterError {
    /// An I/O error on a control or data connection.
    Io(std::io::Error),
    /// A data-plane transport error (sender/subscriber).
    Net(NetError),
    /// A control frame failed to decode.
    Wire(WireError),
    /// Join state could not be exported for migration (disk-resident or
    /// purge-buffered state; cluster v1 requires memory-only eager
    /// configurations).
    Export(StateExportError),
    /// A well-formed frame (or element) that violates the protocol state
    /// machine — e.g. a punctuation propagation nobody registered, a
    /// migration frame outside a migration, a stale epoch.
    Protocol(String),
    /// A peer closed its control connection mid-protocol.
    Disconnected(String),
    /// A peer failed to produce an expected frame in time.
    Timeout(String),
    /// A durable checkpoint could not be written or read back (I/O,
    /// corruption, or no complete epoch to recover from).
    Snapshot(SnapshotError),
    /// A worker's control or data link failed while durability (with a
    /// respawn hook) is enabled. Internal to the recovery machinery —
    /// the coordinator catches it and recovers in place; callers only
    /// see it if recovery itself was impossible mid-operation.
    WorkerLost(usize),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Io(e) => write!(f, "cluster i/o error: {e}"),
            ClusterError::Net(e) => write!(f, "cluster transport error: {e}"),
            ClusterError::Wire(e) => write!(f, "cluster control frame error: {e}"),
            ClusterError::Export(e) => write!(f, "state export failed: {e}"),
            ClusterError::Protocol(what) => write!(f, "cluster protocol violation: {what}"),
            ClusterError::Disconnected(who) => write!(f, "{who} disconnected mid-protocol"),
            ClusterError::Timeout(what) => write!(f, "timed out waiting for {what}"),
            ClusterError::Snapshot(e) => write!(f, "durable checkpoint error: {e}"),
            ClusterError::WorkerLost(w) => write!(f, "worker {w} lost mid-run"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<std::io::Error> for ClusterError {
    fn from(e: std::io::Error) -> ClusterError {
        ClusterError::Io(e)
    }
}

impl From<NetError> for ClusterError {
    fn from(e: NetError) -> ClusterError {
        ClusterError::Net(e)
    }
}

impl From<WireError> for ClusterError {
    fn from(e: WireError) -> ClusterError {
        ClusterError::Wire(e)
    }
}

impl From<StateExportError> for ClusterError {
    fn from(e: StateExportError) -> ClusterError {
        ClusterError::Export(e)
    }
}

impl From<SnapshotError> for ClusterError {
    fn from(e: SnapshotError) -> ClusterError {
        ClusterError::Snapshot(e)
    }
}
