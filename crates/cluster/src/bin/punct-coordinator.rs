//! Cluster coordinator demo process: binds the control endpoint, prints
//! it, waits for workers, then drives a small keyed workload with one
//! mid-stream repartition and prints the merged output accounting.
//!
//! ```text
//! punct-coordinator [workers] [shards] [keys] [--metrics-file PATH]
//! ```
//!
//! With `--metrics-file`, the merged cluster telemetry is written to
//! `PATH` in Prometheus text exposition format when the run finishes —
//! point a file-based scraper (or `cat`) at it.
//!
//! Pair it with `punct-worker`:
//!
//! ```text
//! $ punct-coordinator 2 4 64          # prints "control plane at <addr>"
//! $ punct-worker <addr> 0 & punct-worker <addr> 1 &
//! ```

use std::process::ExitCode;

use punct_cluster::{Cluster, ClusterError, ClusterOptions, JoinSpec};
use punct_types::{Punctuation, Tuple};
use stream_sim::Side;

fn run(
    workers: usize,
    shards: usize,
    keys: i64,
    metrics_file: Option<&str>,
) -> Result<(), ClusterError> {
    let mut cluster = Cluster::bind(ClusterOptions::new(JoinSpec::new(2, 2), workers, shards))?;
    println!("control plane at {}", cluster.ctrl_addr());
    println!("waiting for {workers} workers…");
    cluster.accept_workers()?;
    println!("cluster assembled: {shards} shards over {workers} workers");

    let mut ts = 0u64;
    let mut outputs = Vec::new();
    for k in 0..keys {
        cluster.push_tuple(Side::Left, ts, Tuple::of((k, 10 * k)))?;
        cluster.push_tuple(Side::Right, ts + 1, Tuple::of((k, -k)))?;
        cluster.push_punct(Side::Left, ts + 2, Punctuation::close_value(2, 0, k))?;
        ts += 3;
        if k == keys / 2 {
            let stats = cluster.repartition(shards * 2)?;
            println!(
                "repartitioned {} → {} shards: {} records moved, {} punctuations \
                 re-injected, {:?} pause",
                shards,
                stats.shards,
                stats.records_moved,
                stats.puncts_reinjected,
                stats.pause
            );
        }
        outputs.extend(cluster.poll_outputs()?);
    }
    let report = cluster.finish()?;
    outputs.extend(report.outputs);
    let tuples = outputs.iter().filter(|e| e.item.is_tuple()).count();
    let puncts = outputs.len() - tuples;
    println!(
        "done: {} pushed, {tuples} joined tuples out, {puncts} punctuations propagated",
        report.pushed
    );
    if let Some(path) = metrics_file {
        std::fs::write(path, report.telemetry.metrics_text()).map_err(ClusterError::Io)?;
        println!("metrics written to {path}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut metrics_file = None;
    let mut positional = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--metrics-file" {
            match args.next() {
                Some(path) => metrics_file = Some(path),
                None => {
                    eprintln!("punct-coordinator: --metrics-file requires a path");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            positional.push(a);
        }
    }
    let arg = |i: usize, default: i64| -> i64 {
        positional.get(i).and_then(|s| s.parse().ok()).unwrap_or(default)
    };
    let workers = arg(0, 2) as usize;
    let shards = arg(1, 4) as usize;
    let keys = arg(2, 64);
    match run(workers, shards, keys, metrics_file.as_deref()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("punct-coordinator: {e}");
            ExitCode::FAILURE
        }
    }
}
