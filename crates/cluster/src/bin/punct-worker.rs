//! Cluster worker process: hosts the PJoin shards assigned to it by the
//! coordinator's shard map, through any number of repartitions.
//!
//! ```text
//! punct-worker <coordinator-addr> <worker-index>
//! ```
//!
//! Exits 0 once both input streams finished and every output was
//! published; exits 1 with a message on any protocol or transport error.

use std::process::ExitCode;

use punct_cluster::{run_worker, WorkerOptions};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let (Some(addr), Some(idx)) = (args.get(1), args.get(2)) else {
        eprintln!("usage: punct-worker <coordinator-addr> <worker-index>");
        return ExitCode::FAILURE;
    };
    let Ok(coordinator) = addr.parse() else {
        eprintln!("punct-worker: bad coordinator address {addr}");
        return ExitCode::FAILURE;
    };
    let Ok(worker) = idx.parse() else {
        eprintln!("punct-worker: bad worker index {idx}");
        return ExitCode::FAILURE;
    };
    match run_worker(WorkerOptions::new(worker, coordinator)) {
        Ok(report) => {
            println!(
                "worker {} done: {} elements in, {} out, {} records exported, \
                 {} imported, {} migrations, final epoch {}",
                report.worker,
                report.elements,
                report.outputs,
                report.records_exported,
                report.records_imported,
                report.migrations,
                report.final_epoch
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("punct-worker {worker}: {e}");
            ExitCode::FAILURE
        }
    }
}
