//! The cluster worker: one process hosting the PJoin shards a
//! [`ShardMap`] assigns to it.
//!
//! A worker is deliberately boring: it owns **no** routing policy. The
//! coordinator routes every tuple to the worker owning its hash and
//! every punctuation to the workers owning the shards it can close; the
//! worker re-derives the same per-shard targets locally (the partition
//! function is shared, [`punct_types::partition`]) and feeds its
//! single-threaded [`PJoin`]s in arrival order. Join outputs stream out
//! through a [`SinkServer`]; punctuation propagations from the shard
//! joins pass through a worker-local [`Aligner`] so the sink carries
//! each punctuation **at most once per worker** — the coordinator's
//! aligner then merges across workers.
//!
//! ## Migration, from the worker's side
//!
//! * [`Frame::MigrateBegin`] arms a migration; the barrier itself rides
//!   the data streams as an Empty-pattern punctuation (exactly-once,
//!   ordered behind all earlier elements, even through a faulty link).
//! * When **both** input streams have delivered the barrier, every
//!   pre-barrier output is already published (the worker is
//!   single-threaded and in-order). It publishes the sink marker, sends
//!   [`Frame::BarrierReached`], and exports every shard's state as
//!   [`Frame::MigrateState`] chunks.
//! * The install path is the same for the initial epoch and for every
//!   repartition: [`Frame::ShardMapUpdate`] stages fresh joins,
//!   [`Frame::MigrateState`] imports records (without probing — the
//!   pre-migration operator already emitted those results), and
//!   [`Frame::MigrateCommit`] activates the staged epoch; the worker
//!   echoes the commit as its acknowledgement.
//! * Local aligner expectations pending at the barrier are dropped, not
//!   migrated: the coordinator re-injects every not-yet-emitted
//!   punctuation through the new topology, so each still propagates
//!   downstream exactly once.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use crossbeam::channel::RecvTimeoutError;
use pjoin::components::propagation::translate_punctuation;
use pjoin::{PJoin, PJoinConfig};
use punct_exec::{route_punctuation, AlignOutcome, Aligner};
use punct_net::{
    Frame, IngestMsg, IngestOptions, IngestReceiver, IngestServer, SinkOptions, SinkServer,
    WIRE_VERSION,
};
use punct_types::{
    partition, PunctSeq, ShardMap, StreamElement, Timestamp, Timestamped, Value,
};
use stream_sim::{BinaryStreamOp, OpOutput, Side};

use crate::error::ClusterError;
use crate::protocol::{is_barrier, sink_marker, CtrlConn, JoinSpec, MIGRATE_CHUNK};

/// How a worker process is wired into the cluster.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// This worker's dense index in the cluster.
    pub worker: u32,
    /// The coordinator's control-plane address.
    pub coordinator: SocketAddr,
    /// Ingest (data-plane in) server options.
    pub ingest: IngestOptions,
    /// Sink (data-plane out) server options.
    pub sink: SinkOptions,
    /// Deadline for any single control-plane exchange.
    pub ctrl_timeout: Duration,
}

impl WorkerOptions {
    /// Default wiring for worker `worker` joining `coordinator`.
    pub fn new(worker: u32, coordinator: SocketAddr) -> WorkerOptions {
        WorkerOptions {
            worker,
            coordinator,
            ingest: IngestOptions::default(),
            sink: SinkOptions::default(),
            ctrl_timeout: crate::protocol::CTRL_TIMEOUT,
        }
    }
}

/// What a worker did over its lifetime.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerReport {
    /// This worker's index.
    pub worker: u32,
    /// Data elements consumed from the ingest plane.
    pub elements: u64,
    /// Elements published to the sink (tuples + punctuations).
    pub outputs: u64,
    /// Records exported during migrations.
    pub records_exported: u64,
    /// Records imported during installs.
    pub records_imported: u64,
    /// Migrations completed (excluding the initial epoch install).
    pub migrations: u64,
    /// The shard-map epoch active at shutdown.
    pub final_epoch: u64,
}

/// A staged-but-not-active shard map: fresh joins awaiting state
/// imports and the activating `MigrateCommit`.
struct Staged {
    map: ShardMap,
    joins: Vec<(usize, PJoin)>,
    imported: u64,
}

struct Worker {
    opts: WorkerOptions,
    sink: SinkServer,
    spec: Option<JoinSpec>,
    cfg: Option<PJoinConfig>,
    map: Option<ShardMap>,
    /// `(global shard, join)`, ascending by shard; the vector position
    /// is the local aligner's "shard" index.
    joins: Vec<(usize, PJoin)>,
    aligner: Aligner,
    next_seq: u64,
    clock: Timestamp,
    staged: Option<Staged>,
    /// An armed migration: `(epoch, nonce)` from `MigrateBegin`.
    migrate: Option<(u64, u64)>,
    /// Barrier punctuation seen on [left, right].
    barrier: [bool; 2],
    report: WorkerReport,
}

/// Runs a worker to completion: joins the cluster at
/// `opts.coordinator`, serves its assigned shards through any number of
/// repartitions, and returns once both input streams finished and every
/// remaining output (including end-of-stream punctuation flushes) is
/// published to the sink.
pub fn run_worker(opts: WorkerOptions) -> Result<WorkerReport, ClusterError> {
    let (server, rx) = IngestServer::bind(&[Side::Left, Side::Right], opts.ingest)?;
    let sink = SinkServer::bind(opts.sink)?;
    let mut ctrl = CtrlConn::connect(opts.coordinator)?;
    ctrl.send(&Frame::JoinCluster {
        wire_version: WIRE_VERSION,
        worker: opts.worker,
        ingest_addr: server.addr().to_string(),
        sink_addr: sink.addr().to_string(),
    })?;

    let worker_idx = opts.worker;
    let mut w = Worker {
        opts,
        sink,
        spec: None,
        cfg: None,
        map: None,
        joins: Vec::new(),
        aligner: Aligner::new(),
        next_seq: 0,
        clock: Timestamp(0),
        staged: None,
        migrate: None,
        barrier: [false, false],
        report: WorkerReport { worker: worker_idx, ..WorkerReport::default() },
    };
    w.serve(&server, &rx, &mut ctrl)?;
    Ok(w.report)
}

impl Worker {
    fn serve(
        &mut self,
        server: &IngestServer,
        rx: &IngestReceiver,
        ctrl: &mut CtrlConn,
    ) -> Result<(), ClusterError> {
        loop {
            while let Some(frame) = ctrl.try_recv()? {
                self.handle_ctrl(frame, ctrl)?;
            }
            match rx.recv_timeout(Duration::from_millis(2)) {
                Ok(msg) => {
                    self.handle_msg(msg)?;
                    while let Ok(next) = rx.try_recv() {
                        self.handle_msg(next)?;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(ClusterError::Disconnected("ingest channel".into()));
                }
                Err(RecvTimeoutError::Timeout) => {
                    if server.all_finished() && self.migrate.is_none() {
                        // One final drain: handlers forward a stream's
                        // elements before marking it finished.
                        while let Ok(next) = rx.try_recv() {
                            self.handle_msg(next)?;
                        }
                        break;
                    }
                }
            }
            if self.barrier == [true, true] {
                if let Some((_, nonce)) = self.migrate {
                    self.run_migration(nonce, ctrl)?;
                }
            }
        }
        self.finish(ctrl)
    }

    /// Both streams finished: flush every shard's end-of-stream work
    /// (remaining punctuation propagations, exactly once each), close
    /// the sink, and linger until the coordinator hangs up — tearing the
    /// sink server down earlier would strand a subscriber that has not
    /// finished draining (or has yet to connect).
    fn finish(&mut self, ctrl: &mut CtrlConn) -> Result<(), ClusterError> {
        for i in 0..self.joins.len() {
            let mut out = OpOutput::new();
            let now = self.clock;
            while self.joins[i].1.on_end(now, &mut out) {}
            self.emit(i, now, out)?;
        }
        if self.aligner.pending_len() != 0 {
            return Err(ClusterError::Protocol(format!(
                "worker {}: {} punctuations still pending at end of stream",
                self.report.worker,
                self.aligner.pending_len()
            )));
        }
        self.report.final_epoch = self.map.as_ref().map_or(0, |m| m.epoch);
        self.sink.close();
        // Linger: the coordinator drops the control connection only once
        // every sink subscriber has drained to `Fin`. Exiting before that
        // hang-up would drop the `SinkServer` (stopping its accept loop)
        // under a subscriber that is still draining — or has yet to
        // connect at all.
        let deadline = Instant::now() + self.opts.ctrl_timeout;
        loop {
            match ctrl.try_recv() {
                Ok(Some(frame)) => {
                    return Err(ClusterError::Protocol(format!(
                        "worker {}: unexpected control frame after close: {frame:?}",
                        self.report.worker
                    )));
                }
                Ok(None) => {
                    if Instant::now() >= deadline {
                        return Err(ClusterError::Timeout(
                            "coordinator hang-up after stream end".into(),
                        ));
                    }
                }
                Err(ClusterError::Disconnected(_)) => return Ok(()),
                Err(e) => return Err(e),
            }
        }
    }

    fn handle_msg(&mut self, msg: IngestMsg) -> Result<(), ClusterError> {
        match msg {
            IngestMsg::One(side, element) => self.handle_element(side, element),
            IngestMsg::Batch(side, batch) => {
                for element in batch {
                    self.handle_element(side, element)?;
                }
                Ok(())
            }
        }
    }

    fn handle_element(
        &mut self,
        side: Side,
        element: Timestamped<StreamElement>,
    ) -> Result<(), ClusterError> {
        self.clock = self.clock.max(element.ts);
        self.report.elements += 1;
        let (Some(spec), Some(cfg), Some(map)) = (&self.spec, &self.cfg, &self.map) else {
            return Err(ClusterError::Protocol(
                "data arrived before the initial shard map was activated".into(),
            ));
        };
        match element.item {
            StreamElement::Tuple(ref t) => {
                let hash = t.get(spec.join_attr(side)).and_then(Value::join_hash);
                let shard = partition(hash, map.shards());
                let Some(idx) = self.joins.iter().position(|(s, _)| *s == shard) else {
                    return Err(ClusterError::Protocol(format!(
                        "tuple for shard {shard} routed to worker {} (epoch {})",
                        self.report.worker,
                        map.epoch
                    )));
                };
                let ts = element.ts;
                let mut out = OpOutput::new();
                self.joins[idx].1.on_element(side, element.item, ts, &mut out);
                self.emit(idx, ts, out)
            }
            StreamElement::Punctuation(ref p) => {
                if p.width() != spec.side_width(side) {
                    // The single-threaded operator ignores malformed
                    // punctuations; so does the cluster.
                    return Ok(());
                }
                if is_barrier(p, spec.join_attr(side)) {
                    self.barrier[side_index(side)] = true;
                    return Ok(());
                }
                let route = route_punctuation(p, side, cfg, map.shards());
                let shard_mask = route.mask(map.shards());
                let mut local_mask = 0u64;
                let mut targets = Vec::new();
                for (idx, (shard, _)) in self.joins.iter().enumerate() {
                    if shard_mask & (1 << *shard) != 0 {
                        local_mask |= 1 << idx;
                        targets.push(idx);
                    }
                }
                if targets.is_empty() {
                    return Err(ClusterError::Protocol(format!(
                        "punctuation routed to worker {} owning none of its target shards",
                        self.report.worker
                    )));
                }
                let translated =
                    translate_punctuation(p, spec.side_offset(side), spec.output_width());
                self.aligner.expect(translated, PunctSeq(self.next_seq), local_mask);
                self.next_seq += 1;
                let ts = element.ts;
                for idx in targets {
                    let mut out = OpOutput::new();
                    self.joins[idx].1.on_element(side, element.item.clone(), ts, &mut out);
                    self.emit(idx, ts, out)?;
                }
                Ok(())
            }
        }
    }

    /// Publishes one shard's output burst: tuples directly, punctuation
    /// propagations through the worker-local aligner so the sink carries
    /// each punctuation once no matter how many local shards it reached.
    fn emit(&mut self, idx: usize, ts: Timestamp, mut out: OpOutput) -> Result<(), ClusterError> {
        for element in out.drain() {
            match element {
                StreamElement::Tuple(_) => {
                    self.sink.publish(Timestamped::new(ts, element));
                    self.report.outputs += 1;
                }
                StreamElement::Punctuation(ref p) => match self.aligner.observe(idx, p) {
                    AlignOutcome::Emit => {
                        self.sink.publish(Timestamped::new(ts, element));
                        self.report.outputs += 1;
                    }
                    AlignOutcome::Pending => {}
                    AlignOutcome::Unexpected => {
                        return Err(ClusterError::Protocol(format!(
                            "shard {} propagated an unregistered punctuation {p}",
                            self.joins[idx].0
                        )))
                    }
                },
            }
        }
        Ok(())
    }

    /// Both barriers are in and a migration is armed: drain-and-export.
    /// Every pre-barrier output is already in the sink (single-threaded,
    /// in-order), so the marker published here cleanly separates the
    /// epochs for the coordinator's drain.
    fn run_migration(&mut self, nonce: u64, ctrl: &mut CtrlConn) -> Result<(), ClusterError> {
        let Some(spec) = self.spec.clone() else {
            return Err(ClusterError::Protocol("migration before initial shard map".into()));
        };
        self.sink.publish(Timestamped::new(self.clock, sink_marker(&spec).into()));
        ctrl.send(&Frame::BarrierReached { nonce })?;

        let mut exported: u64 = 0;
        for (shard, join) in &self.joins {
            for side in [Side::Left, Side::Right] {
                let records = join.export_records(side)?;
                exported += records.len() as u64;
                for chunk in records.chunks(MIGRATE_CHUNK) {
                    ctrl.send(&Frame::MigrateState {
                        shard: *shard as u32,
                        side: side_index(side) as u8,
                        records: chunk.to_vec(),
                    })?;
                }
            }
        }
        ctrl.send(&Frame::MigrateStateDone { records: exported })?;
        self.report.records_exported += exported;

        // Block for the install: the data plane is quiescent between the
        // barrier and the commit (the coordinator pushes nothing until
        // every worker acknowledged the new epoch).
        let deadline = Instant::now() + self.opts.ctrl_timeout;
        while self.migrate.is_some() {
            let frame = ctrl.recv_deadline(deadline, "migration install")?;
            self.handle_ctrl(frame, ctrl)?;
        }
        self.report.migrations += 1;
        Ok(())
    }

    fn handle_ctrl(&mut self, frame: Frame, ctrl: &mut CtrlConn) -> Result<(), ClusterError> {
        match frame {
            Frame::ShardMapUpdate { worker, map, config } => {
                if worker != self.report.worker {
                    return Err(ClusterError::Protocol(format!(
                        "shard map for worker {worker} delivered to worker {}",
                        self.report.worker
                    )));
                }
                if self.spec.is_none() {
                    let spec = JoinSpec::decode(&config)?;
                    self.cfg = Some(spec.pjoin_config());
                    self.spec = Some(spec);
                }
                let cfg = self.cfg.as_ref().expect("spec decoded above");
                let joins = map
                    .shards_of(self.report.worker)
                    .into_iter()
                    .map(|s| (s, PJoin::new(cfg.clone())))
                    .collect();
                self.staged = Some(Staged { map, joins, imported: 0 });
                Ok(())
            }
            Frame::MigrateState { shard, side, records } => {
                let Some(staged) = self.staged.as_mut() else {
                    return Err(ClusterError::Protocol(
                        "migration state outside an install".into(),
                    ));
                };
                let side = side_from_index(side)?;
                let Some((_, join)) =
                    staged.joins.iter_mut().find(|(s, _)| *s == shard as usize)
                else {
                    return Err(ClusterError::Protocol(format!(
                        "migration state for unowned shard {shard}"
                    )));
                };
                staged.imported += records.len() as u64;
                for (arrival_us, tuple) in records {
                    join.import_record(side, tuple, arrival_us);
                }
                Ok(())
            }
            Frame::MigrateStateDone { records } => {
                let Some(staged) = self.staged.as_ref() else {
                    return Err(ClusterError::Protocol(
                        "migration state checksum outside an install".into(),
                    ));
                };
                if staged.imported != records {
                    return Err(ClusterError::Protocol(format!(
                        "migration state checksum mismatch: imported {} of {records}",
                        staged.imported
                    )));
                }
                Ok(())
            }
            Frame::MigrateCommit { epoch } => {
                let Some(staged) = self.staged.take() else {
                    return Err(ClusterError::Protocol("commit without a staged map".into()));
                };
                if staged.map.epoch != epoch {
                    return Err(ClusterError::Protocol(format!(
                        "commit for epoch {epoch} but epoch {} is staged",
                        staged.map.epoch
                    )));
                }
                self.report.records_imported += staged.imported;
                self.map = Some(staged.map);
                self.joins = staged.joins;
                // Expectations pending at the barrier die with the old
                // joins; the coordinator re-injects those punctuations.
                self.aligner = Aligner::new();
                self.barrier = [false, false];
                self.migrate = None;
                ctrl.send(&Frame::MigrateCommit { epoch })?;
                Ok(())
            }
            Frame::MigrateBegin { epoch, nonce } => {
                if self.migrate.is_some() {
                    return Err(ClusterError::Protocol(
                        "overlapping migrations are not supported".into(),
                    ));
                }
                self.migrate = Some((epoch, nonce));
                Ok(())
            }
            Frame::Error { code, message } => Err(ClusterError::Protocol(format!(
                "coordinator rejected worker {}: error {code} ({message})",
                self.report.worker
            ))),
            other => Err(ClusterError::Protocol(format!(
                "unexpected control frame: {other:?}"
            ))),
        }
    }
}

fn side_index(side: Side) -> usize {
    match side {
        Side::Left => 0,
        Side::Right => 1,
    }
}

fn side_from_index(idx: u8) -> Result<Side, ClusterError> {
    match idx {
        0 => Ok(Side::Left),
        1 => Ok(Side::Right),
        other => Err(ClusterError::Protocol(format!("invalid side index {other}"))),
    }
}
