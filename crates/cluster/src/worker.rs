//! The cluster worker: one process hosting the PJoin shards a
//! [`ShardMap`] assigns to it.
//!
//! A worker is deliberately boring: it owns **no** routing policy. The
//! coordinator routes every tuple to the worker owning its hash and
//! every punctuation to the workers owning the shards it can close; the
//! worker re-derives the same per-shard targets locally (the partition
//! function is shared, [`punct_types::partition`]) and feeds its
//! single-threaded [`PJoin`]s in arrival order. Join outputs stream out
//! through a [`SinkServer`]; punctuation propagations from the shard
//! joins pass through a worker-local [`Aligner`] so the sink carries
//! each punctuation **at most once per worker** — the coordinator's
//! aligner then merges across workers.
//!
//! ## Migration, from the worker's side
//!
//! * [`Frame::MigrateBegin`] arms a migration; the barrier itself rides
//!   the data streams as an Empty-pattern punctuation (exactly-once,
//!   ordered behind all earlier elements, even through a faulty link).
//! * When **both** input streams have delivered the barrier, every
//!   pre-barrier output is already published (the worker is
//!   single-threaded and in-order). It publishes the sink marker, sends
//!   [`Frame::BarrierReached`], and exports every shard's state as
//!   [`Frame::MigrateState`] chunks.
//! * The install path is the same for the initial epoch and for every
//!   repartition: [`Frame::ShardMapUpdate`] stages fresh joins,
//!   [`Frame::MigrateState`] imports records (without probing — the
//!   pre-migration operator already emitted those results), and
//!   [`Frame::MigrateCommit`] activates the staged epoch; the worker
//!   echoes the commit as its acknowledgement.
//! * Local aligner expectations pending at the barrier are dropped, not
//!   migrated: the coordinator re-injects every not-yet-emitted
//!   punctuation through the new topology, so each still propagates
//!   downstream exactly once.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use crossbeam::channel::RecvTimeoutError;
use pjoin::components::propagation::translate_punctuation;
use pjoin::{PJoin, PJoinConfig};
use punct_exec::{route_punctuation, AlignOutcome, Aligner};
use punct_net::{
    Frame, IngestMsg, IngestOptions, IngestReceiver, IngestServer, SinkOptions, SinkServer,
    WIRE_VERSION,
};
use punct_trace::{
    wall_now_ns, IngestCounters, JoinLatencies, KindSummary, PunctRecord, ShardSnapshot,
    TelemetryMsg, TraceKind, WorkerTelemetry,
};
use punct_types::{
    partition, PunctSeq, ShardMap, StreamElement, Timestamp, Timestamped, Value,
};
use stream_sim::{BinaryStreamOp, OpOutput, Side};

use crate::error::ClusterError;
use crate::protocol::{
    decode_config, is_barrier, sink_marker, CtrlConn, HeartbeatSettings, JoinSpec,
    TelemetrySettings, MIGRATE_CHUNK,
};

/// How a worker process is wired into the cluster.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// This worker's dense index in the cluster.
    pub worker: u32,
    /// The coordinator's control-plane address.
    pub coordinator: SocketAddr,
    /// Ingest (data-plane in) server options.
    pub ingest: IngestOptions,
    /// Sink (data-plane out) server options.
    pub sink: SinkOptions,
    /// Deadline for any single control-plane exchange.
    pub ctrl_timeout: Duration,
}

impl WorkerOptions {
    /// Default wiring for worker `worker` joining `coordinator`.
    pub fn new(worker: u32, coordinator: SocketAddr) -> WorkerOptions {
        WorkerOptions {
            worker,
            coordinator,
            ingest: IngestOptions::default(),
            sink: SinkOptions::default(),
            ctrl_timeout: crate::protocol::CTRL_TIMEOUT,
        }
    }
}

/// What a worker did over its lifetime.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerReport {
    /// This worker's index.
    pub worker: u32,
    /// Data elements consumed from the ingest plane.
    pub elements: u64,
    /// Elements published to the sink (tuples + punctuations).
    pub outputs: u64,
    /// Records exported during migrations and checkpoints.
    pub records_exported: u64,
    /// Records imported during installs.
    pub records_imported: u64,
    /// Migrations completed (excluding the initial epoch install).
    pub migrations: u64,
    /// The shard-map epoch active at shutdown.
    pub final_epoch: u64,
}

/// A staged-but-not-active shard map: fresh joins awaiting state
/// imports and the activating `MigrateCommit`.
struct Staged {
    map: ShardMap,
    joins: Vec<(usize, PJoin)>,
    imported: u64,
}

struct Worker {
    opts: WorkerOptions,
    sink: SinkServer,
    spec: Option<JoinSpec>,
    cfg: Option<PJoinConfig>,
    map: Option<ShardMap>,
    /// `(global shard, join)`, ascending by shard; the vector position
    /// is the local aligner's "shard" index.
    joins: Vec<(usize, PJoin)>,
    aligner: Aligner,
    next_seq: u64,
    clock: Timestamp,
    staged: Option<Staged>,
    /// An armed migration: `(epoch, nonce)` from `MigrateBegin`.
    migrate: Option<(u64, u64)>,
    /// An armed checkpoint: `(epoch, nonce)` from `Checkpoint`. At the
    /// barrier the worker exports and resumes — no install wait.
    checkpoint: Option<(u64, u64)>,
    /// An armed rollback: `(epoch, nonce)` from `Rollback`. At the
    /// barrier the worker discards its live state's claim to the run
    /// and blocks for a staged install, exporting nothing.
    rollback: Option<(u64, u64)>,
    /// Barrier crossings seen on [left, right], keyed by the nonce the
    /// barrier's timestamp carries. The arm frame (ctrl plane) and the
    /// barrier (data plane) travel on separate connections, so either
    /// may arrive first; keying by nonce pairs each crossing with the
    /// right protocol step, and leaves a crossing whose operation was
    /// aborted (checkpoint superseded by a rollback) inert until the
    /// next commit clears it.
    barriers: HashMap<u64, [bool; 2]>,
    /// Heartbeat policy from the config blob (disabled until it
    /// arrives).
    heartbeat: HeartbeatSettings,
    /// Sequence of the next heartbeat beacon.
    beat_seq: u64,
    /// When the last heartbeat went out.
    last_beat: Instant,
    report: WorkerReport,
    /// Reporting policy, shipped in the config blob (disabled until the
    /// initial shard map arrives).
    telemetry: TelemetrySettings,
    /// Sequence of the next telemetry report.
    report_seq: u64,
    /// When the last periodic report went out.
    last_report: Instant,
    /// Per-punctuation lifecycle records, cumulative in creation order —
    /// the coordinator correlates them back by `(side, key)` occurrence.
    lifecycle: Vec<PunctRecord>,
    /// Local aligner sequence → index into `lifecycle`, for stamping the
    /// align/sink stages when the propagation completes.
    life_by_seq: HashMap<u64, usize>,
    /// Latencies of joins retired by migrations (cumulative reports must
    /// not lose samples when `self.joins` is replaced).
    retired: JoinLatencies,
    /// Per-kind `(count, total span ns)` trace totals, drained from live
    /// tracers at each report and from retiring joins at each commit.
    kind_totals: Vec<(u64, u64)>,
    /// Per-join `(consumed, emitted)` counters for shard snapshots,
    /// parallel to `joins`; reset when a new epoch replaces them.
    shard_counts: Vec<(u64, u64)>,
}

/// Runs a worker to completion: joins the cluster at
/// `opts.coordinator`, serves its assigned shards through any number of
/// repartitions, and returns once both input streams finished and every
/// remaining output (including end-of-stream punctuation flushes) is
/// published to the sink.
pub fn run_worker(opts: WorkerOptions) -> Result<WorkerReport, ClusterError> {
    let (server, rx) = IngestServer::bind(&[Side::Left, Side::Right], opts.ingest)?;
    let sink = SinkServer::bind(opts.sink)?;
    let mut ctrl = CtrlConn::connect(opts.coordinator)?;
    ctrl.send(&Frame::JoinCluster {
        wire_version: WIRE_VERSION,
        worker: opts.worker,
        ingest_addr: server.addr().to_string(),
        sink_addr: sink.addr().to_string(),
    })?;

    let worker_idx = opts.worker;
    let mut w = Worker {
        opts,
        sink,
        spec: None,
        cfg: None,
        map: None,
        joins: Vec::new(),
        aligner: Aligner::new(),
        next_seq: 0,
        clock: Timestamp(0),
        staged: None,
        migrate: None,
        checkpoint: None,
        rollback: None,
        barriers: HashMap::new(),
        heartbeat: HeartbeatSettings::disabled(),
        beat_seq: 0,
        last_beat: Instant::now(),
        report: WorkerReport { worker: worker_idx, ..WorkerReport::default() },
        telemetry: TelemetrySettings::disabled(),
        report_seq: 0,
        last_report: Instant::now(),
        lifecycle: Vec::new(),
        life_by_seq: HashMap::new(),
        retired: JoinLatencies::new(),
        kind_totals: vec![(0, 0); TraceKind::ALL.len()],
        shard_counts: Vec::new(),
    };
    w.serve(&server, &rx, &mut ctrl)?;
    Ok(w.report)
}

impl Worker {
    fn serve(
        &mut self,
        server: &IngestServer,
        rx: &IngestReceiver,
        ctrl: &mut CtrlConn,
    ) -> Result<(), ClusterError> {
        loop {
            while let Some(frame) = ctrl.try_recv()? {
                self.handle_ctrl(frame, ctrl)?;
            }
            match rx.recv_timeout(Duration::from_millis(2)) {
                Ok(msg) => {
                    self.handle_msg(msg)?;
                    while let Ok(next) = rx.try_recv() {
                        self.handle_msg(next)?;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(ClusterError::Disconnected("ingest channel".into()));
                }
                Err(RecvTimeoutError::Timeout) => {
                    if server.all_finished()
                        && self.migrate.is_none()
                        && self.checkpoint.is_none()
                        && self.rollback.is_none()
                    {
                        // One final drain: handlers forward a stream's
                        // elements before marking it finished.
                        while let Ok(next) = rx.try_recv() {
                            self.handle_msg(next)?;
                        }
                        break;
                    }
                }
            }
            let crossed = |b: &HashMap<u64, [bool; 2]>, armed: Option<(u64, u64)>| {
                armed.filter(|(_, n)| b.get(n) == Some(&[true, true])).map(|(_, n)| n)
            };
            if let Some(nonce) = crossed(&self.barriers, self.migrate) {
                self.barriers.remove(&nonce);
                self.run_migration(nonce, ctrl)?;
            } else if let Some(nonce) = crossed(&self.barriers, self.checkpoint) {
                self.barriers.remove(&nonce);
                self.run_checkpoint(nonce, ctrl)?;
            } else if let Some(nonce) = crossed(&self.barriers, self.rollback) {
                self.barriers.remove(&nonce);
                self.run_rollback(nonce, ctrl)?;
            }
            if self.heartbeat.enabled()
                && self.last_beat.elapsed()
                    >= Duration::from_millis(self.heartbeat.interval_ms as u64)
            {
                ctrl.send(&Frame::Heartbeat { seq: self.beat_seq })?;
                self.beat_seq += 1;
                self.last_beat = Instant::now();
            }
            if self.telemetry.enabled
                && self.telemetry.interval_ms > 0
                && self.last_report.elapsed()
                    >= Duration::from_millis(self.telemetry.interval_ms as u64)
            {
                self.send_report(server, ctrl, false)?;
                self.last_report = Instant::now();
            }
        }
        self.finish(server, ctrl)
    }

    /// Both streams finished: flush every shard's end-of-stream work
    /// (remaining punctuation propagations, exactly once each), close
    /// the sink, and linger until the coordinator hangs up — tearing the
    /// sink server down earlier would strand a subscriber that has not
    /// finished draining (or has yet to connect).
    fn finish(
        &mut self,
        server: &IngestServer,
        ctrl: &mut CtrlConn,
    ) -> Result<(), ClusterError> {
        for i in 0..self.joins.len() {
            let mut out = OpOutput::new();
            let now = self.clock;
            while self.joins[i].1.on_end(now, &mut out) {}
            self.emit(i, now, out)?;
        }
        if self.aligner.pending_len() != 0 {
            return Err(ClusterError::Protocol(format!(
                "worker {}: {} punctuations still pending at end of stream",
                self.report.worker,
                self.aligner.pending_len()
            )));
        }
        self.report.final_epoch = self.map.as_ref().map_or(0, |m| m.epoch);
        // The final cumulative flush covers the end-of-stream
        // propagations above; it must precede the sink close so the
        // coordinator can await it while the control link is still up.
        self.send_report(server, ctrl, true)?;
        self.sink.close();
        // Linger: the coordinator drops the control connection only once
        // every sink subscriber has drained to `Fin`. Exiting before that
        // hang-up would drop the `SinkServer` (stopping its accept loop)
        // under a subscriber that is still draining — or has yet to
        // connect at all.
        let deadline = Instant::now() + self.opts.ctrl_timeout;
        loop {
            match ctrl.try_recv() {
                Ok(Some(frame)) => {
                    return Err(ClusterError::Protocol(format!(
                        "worker {}: unexpected control frame after close: {frame:?}",
                        self.report.worker
                    )));
                }
                Ok(None) => {
                    if Instant::now() >= deadline {
                        return Err(ClusterError::Timeout(
                            "coordinator hang-up after stream end".into(),
                        ));
                    }
                }
                Err(ClusterError::Disconnected(_)) => return Ok(()),
                Err(e) => return Err(e),
            }
        }
    }

    fn handle_msg(&mut self, msg: IngestMsg) -> Result<(), ClusterError> {
        match msg {
            IngestMsg::One(side, element) => self.handle_element(side, element),
            IngestMsg::Batch(side, batch) => {
                for element in batch {
                    self.handle_element(side, element)?;
                }
                Ok(())
            }
        }
    }

    fn handle_element(
        &mut self,
        side: Side,
        element: Timestamped<StreamElement>,
    ) -> Result<(), ClusterError> {
        // Barriers first: their timestamp carries a protocol nonce, not
        // a stream time, so they must not advance the worker clock.
        let barrier_nonce = match (&element.item, &self.spec) {
            (StreamElement::Punctuation(p), Some(spec))
                if p.width() == spec.side_width(side)
                    && is_barrier(p, spec.join_attr(side)) =>
            {
                Some(element.ts.0)
            }
            _ => None,
        };
        if let Some(nonce) = barrier_nonce {
            self.report.elements += 1;
            self.barriers.entry(nonce).or_insert([false, false])[side_index(side)] = true;
            return Ok(());
        }
        self.clock = self.clock.max(element.ts);
        self.report.elements += 1;
        let (Some(spec), Some(cfg), Some(map)) = (&self.spec, &self.cfg, &self.map) else {
            return Err(ClusterError::Protocol(
                "data arrived before the initial shard map was activated".into(),
            ));
        };
        match element.item {
            StreamElement::Tuple(ref t) => {
                let hash = t.get(spec.join_attr(side)).and_then(Value::join_hash);
                let shard = partition(hash, map.shards());
                let Some(idx) = self.joins.iter().position(|(s, _)| *s == shard) else {
                    return Err(ClusterError::Protocol(format!(
                        "tuple for shard {shard} routed to worker {} (epoch {})",
                        self.report.worker,
                        map.epoch
                    )));
                };
                let ts = element.ts;
                let mut out = OpOutput::new();
                self.joins[idx].1.on_element(side, element.item, ts, &mut out);
                if let Some(c) = self.shard_counts.get_mut(idx) {
                    c.0 += 1;
                }
                self.emit(idx, ts, out)
            }
            StreamElement::Punctuation(ref p) => {
                if p.width() != spec.side_width(side) {
                    // The single-threaded operator ignores malformed
                    // punctuations; so does the cluster.
                    return Ok(());
                }
                let route = route_punctuation(p, side, cfg, map.shards());
                let shard_mask = route.mask(map.shards());
                let mut local_mask = 0u64;
                let mut targets = Vec::new();
                for (idx, (shard, _)) in self.joins.iter().enumerate() {
                    if shard_mask & (1 << *shard) != 0 {
                        local_mask |= 1 << idx;
                        targets.push(idx);
                    }
                }
                if targets.is_empty() {
                    return Err(ClusterError::Protocol(format!(
                        "punctuation routed to worker {} owning none of its target shards",
                        self.report.worker
                    )));
                }
                let translated =
                    translate_punctuation(p, spec.side_offset(side), spec.output_width());
                let seq = self.next_seq;
                self.next_seq += 1;
                if self.track_lifecycle() {
                    // Hash the punctuation as routed (pre-translation) so
                    // the key matches the coordinator's send log.
                    self.life_by_seq.insert(seq, self.lifecycle.len());
                    self.lifecycle.push(PunctRecord {
                        side: side_index(side) as u8,
                        key: p.content_hash(),
                        ingest_ns: wall_now_ns(),
                        purge_ns: 0,
                        align_ns: 0,
                        sink_ns: 0,
                    });
                }
                self.aligner.expect(translated, PunctSeq(seq), local_mask);
                let ts = element.ts;
                for idx in targets {
                    let mut out = OpOutput::new();
                    self.joins[idx].1.on_element(side, element.item.clone(), ts, &mut out);
                    if let Some(c) = self.shard_counts.get_mut(idx) {
                        c.0 += 1;
                    }
                    if self.track_lifecycle() {
                        // Last target wins: the purge stage ends when the
                        // final shard finished applying the punctuation.
                        if let Some(&ri) = self.life_by_seq.get(&seq) {
                            self.lifecycle[ri].purge_ns = wall_now_ns();
                        }
                    }
                    self.emit(idx, ts, out)?;
                }
                Ok(())
            }
        }
    }

    /// Publishes one shard's output burst: tuples directly, punctuation
    /// propagations through the worker-local aligner so the sink carries
    /// each punctuation once no matter how many local shards it reached.
    fn emit(&mut self, idx: usize, ts: Timestamp, mut out: OpOutput) -> Result<(), ClusterError> {
        for element in out.drain() {
            match element {
                StreamElement::Tuple(_) => {
                    self.sink.publish(Timestamped::new(ts, element));
                    self.report.outputs += 1;
                    if let Some(c) = self.shard_counts.get_mut(idx) {
                        c.1 += 1;
                    }
                }
                StreamElement::Punctuation(ref p) => {
                    let (outcome, wseq) = self.aligner.observe_seq(idx, p);
                    if self.track_lifecycle() {
                        if let Some(&ri) =
                            wseq.and_then(|s| self.life_by_seq.get(&s.0))
                        {
                            self.lifecycle[ri].align_ns = wall_now_ns();
                        }
                    }
                    match outcome {
                        AlignOutcome::Emit => {
                            self.sink.publish(Timestamped::new(ts, element));
                            self.report.outputs += 1;
                            if let Some(c) = self.shard_counts.get_mut(idx) {
                                c.1 += 1;
                            }
                            if self.track_lifecycle() {
                                if let Some(&ri) =
                                    wseq.and_then(|s| self.life_by_seq.get(&s.0))
                                {
                                    self.lifecycle[ri].sink_ns = wall_now_ns();
                                }
                            }
                        }
                        AlignOutcome::Pending => {}
                        AlignOutcome::Unexpected => {
                            return Err(ClusterError::Protocol(format!(
                                "shard {} propagated an unregistered punctuation {p}",
                                self.joins[idx].0
                            )))
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Whether per-punctuation lifecycle stamps are recorded: requires
    /// telemetry on, tracing requested, and the trace crate compiled in.
    fn track_lifecycle(&self) -> bool {
        punct_trace::COMPILED && self.telemetry.enabled && self.telemetry.trace
    }

    /// Both barriers are in and a migration is armed: drain-and-export.
    /// Every pre-barrier output is already in the sink (single-threaded,
    /// in-order), so the marker published here cleanly separates the
    /// epochs for the coordinator's drain.
    fn run_migration(&mut self, nonce: u64, ctrl: &mut CtrlConn) -> Result<(), ClusterError> {
        let Some(spec) = self.spec.clone() else {
            return Err(ClusterError::Protocol("migration before initial shard map".into()));
        };
        self.sink.publish(Timestamped::new(self.clock, sink_marker(&spec).into()));
        ctrl.send(&Frame::BarrierReached { nonce })?;

        let mut exported: u64 = 0;
        for (shard, join) in &self.joins {
            for side in [Side::Left, Side::Right] {
                let records = join.export_records(side)?;
                exported += records.len() as u64;
                for chunk in records.chunks(MIGRATE_CHUNK) {
                    ctrl.send(&Frame::MigrateState {
                        shard: *shard as u32,
                        side: side_index(side) as u8,
                        records: chunk.to_vec(),
                    })?;
                }
            }
        }
        ctrl.send(&Frame::MigrateStateDone { records: exported })?;
        self.report.records_exported += exported;

        // Block for the install: the data plane is quiescent between the
        // barrier and the commit (the coordinator pushes nothing until
        // every worker acknowledged the new epoch).
        let deadline = Instant::now() + self.opts.ctrl_timeout;
        while self.migrate.is_some() {
            let frame = ctrl.recv_deadline(deadline, "migration install")?;
            self.handle_ctrl(frame, ctrl)?;
        }
        self.report.migrations += 1;
        Ok(())
    }

    /// Both barriers are in and a checkpoint is armed: publish the sink
    /// marker, acknowledge the cut, export every shard's post-purge
    /// state — and resume immediately. Unlike a migration the live
    /// joins keep running; the snapshot is a passive copy, so local
    /// aligner expectations pending at the cut survive untouched (the
    /// coordinator stores its own pending log in the snapshot instead).
    fn run_checkpoint(&mut self, nonce: u64, ctrl: &mut CtrlConn) -> Result<(), ClusterError> {
        let Some(spec) = self.spec.clone() else {
            return Err(ClusterError::Protocol("checkpoint before initial shard map".into()));
        };
        self.sink.publish(Timestamped::new(self.clock, sink_marker(&spec).into()));
        ctrl.send(&Frame::BarrierReached { nonce })?;
        let mut exported: u64 = 0;
        for (shard, join) in &self.joins {
            for side in [Side::Left, Side::Right] {
                let records = join.export_records(side)?;
                exported += records.len() as u64;
                for chunk in records.chunks(MIGRATE_CHUNK) {
                    ctrl.send(&Frame::MigrateState {
                        shard: *shard as u32,
                        side: side_index(side) as u8,
                        records: chunk.to_vec(),
                    })?;
                }
            }
        }
        ctrl.send(&Frame::MigrateStateDone { records: exported })?;
        self.report.records_exported += exported;
        self.checkpoint = None;
        Ok(())
    }

    /// Both barriers are in and a rollback is armed: the live state is
    /// condemned. Publish the marker (so the coordinator can drain the
    /// sink to a known cut), acknowledge, and block for the staged
    /// re-install — exporting nothing, since recovery restores every
    /// worker from the durable store.
    fn run_rollback(&mut self, nonce: u64, ctrl: &mut CtrlConn) -> Result<(), ClusterError> {
        let Some(spec) = self.spec.clone() else {
            return Err(ClusterError::Protocol("rollback before initial shard map".into()));
        };
        self.sink.publish(Timestamped::new(self.clock, sink_marker(&spec).into()));
        ctrl.send(&Frame::BarrierReached { nonce })?;
        let deadline = Instant::now() + self.opts.ctrl_timeout;
        while self.rollback.is_some() {
            let frame = ctrl.recv_deadline(deadline, "rollback install")?;
            self.handle_ctrl(frame, ctrl)?;
        }
        Ok(())
    }

    /// Ships one cumulative telemetry snapshot to the coordinator:
    /// lifetime counters, merged latency histograms (live joins plus
    /// migration-retired ones), per-shard occupancy, per-kind trace
    /// totals, the full lifecycle log, and the ingest transport counters.
    fn send_report(
        &mut self,
        server: &IngestServer,
        ctrl: &mut CtrlConn,
        final_flush: bool,
    ) -> Result<(), ClusterError> {
        if !self.telemetry.enabled {
            return Ok(());
        }
        let seq = self.report_seq;
        self.report_seq += 1;
        let trace_on = punct_trace::COMPILED && self.telemetry.trace;
        let mut latencies = self.retired;
        let mut shards = Vec::with_capacity(self.joins.len());
        for (i, (shard, join)) in self.joins.iter().enumerate() {
            latencies.merge(join.latencies());
            let (consumed, emitted) = self.shard_counts.get(i).copied().unwrap_or((0, 0));
            let state_tuples =
                (join.state_a().total_tuples() + join.state_b().total_tuples()) as u64;
            shards.push(ShardSnapshot {
                shard: *shard as u32,
                consumed,
                state_tuples,
                emitted,
            });
        }
        if trace_on {
            for (_, join) in &mut self.joins {
                for e in join.take_trace().events {
                    let t = &mut self.kind_totals[e.kind.index() as usize];
                    t.0 += 1;
                    t.1 += e.dur_ns;
                }
            }
            for e in server.take_trace().events {
                let t = &mut self.kind_totals[e.kind.index() as usize];
                t.0 += 1;
                t.1 += e.dur_ns;
            }
        }
        let summaries: Vec<KindSummary> = self
            .kind_totals
            .iter()
            .enumerate()
            .filter(|(_, (count, _))| *count > 0)
            .map(|(kind, &(count, total_dur_ns))| KindSummary {
                kind: kind as u8,
                count,
                total_dur_ns,
            })
            .collect();
        let stats = server.stats();
        let report = WorkerTelemetry {
            worker: self.report.worker,
            seq,
            final_flush,
            trace_compiled: trace_on,
            elements: self.report.elements,
            outputs: self.report.outputs,
            latencies,
            shards,
            summaries,
            lifecycle: self.lifecycle.clone(),
            ingest: IngestCounters {
                connections: stats.connections,
                frames_received: stats.frames_received,
                bytes_received: stats.bytes_received,
                duplicates_suppressed: stats.duplicates_suppressed,
                stalls: stats.stalls,
            },
        };
        ctrl.send(&Frame::Telemetry { payload: TelemetryMsg::Report(Box::new(report)).encode() })
    }

    fn handle_ctrl(&mut self, frame: Frame, ctrl: &mut CtrlConn) -> Result<(), ClusterError> {
        match frame {
            Frame::ShardMapUpdate { worker, map, config } => {
                if worker != self.report.worker {
                    return Err(ClusterError::Protocol(format!(
                        "shard map for worker {worker} delivered to worker {}",
                        self.report.worker
                    )));
                }
                if self.spec.is_none() {
                    let (spec, telemetry, heartbeat) = decode_config(&config)?;
                    self.telemetry = telemetry;
                    self.heartbeat = heartbeat;
                    let mut cfg = spec.pjoin_config();
                    if punct_trace::COMPILED && telemetry.enabled && telemetry.trace {
                        cfg = cfg.with_tracing();
                    }
                    self.cfg = Some(cfg);
                    self.spec = Some(spec);
                }
                let cfg = self.cfg.as_ref().expect("spec decoded above");
                let joins = map
                    .shards_of(self.report.worker)
                    .into_iter()
                    .map(|s| (s, PJoin::new(cfg.clone())))
                    .collect();
                self.staged = Some(Staged { map, joins, imported: 0 });
                Ok(())
            }
            Frame::MigrateState { shard, side, records } => {
                let Some(staged) = self.staged.as_mut() else {
                    return Err(ClusterError::Protocol(
                        "migration state outside an install".into(),
                    ));
                };
                let side = side_from_index(side)?;
                let Some((_, join)) =
                    staged.joins.iter_mut().find(|(s, _)| *s == shard as usize)
                else {
                    return Err(ClusterError::Protocol(format!(
                        "migration state for unowned shard {shard}"
                    )));
                };
                staged.imported += records.len() as u64;
                for (arrival_us, tuple) in records {
                    join.import_record(side, tuple, arrival_us);
                }
                Ok(())
            }
            Frame::MigrateStateDone { records } => {
                let Some(staged) = self.staged.as_ref() else {
                    return Err(ClusterError::Protocol(
                        "migration state checksum outside an install".into(),
                    ));
                };
                if staged.imported != records {
                    return Err(ClusterError::Protocol(format!(
                        "migration state checksum mismatch: imported {} of {records}",
                        staged.imported
                    )));
                }
                Ok(())
            }
            Frame::MigrateCommit { epoch } => {
                let Some(staged) = self.staged.take() else {
                    return Err(ClusterError::Protocol("commit without a staged map".into()));
                };
                if staged.map.epoch != epoch {
                    return Err(ClusterError::Protocol(format!(
                        "commit for epoch {epoch} but epoch {} is staged",
                        staged.map.epoch
                    )));
                }
                self.report.records_imported += staged.imported;
                // Retire the outgoing joins' telemetry before they drop:
                // cumulative reports must keep their samples.
                if self.telemetry.enabled {
                    for (_, join) in &mut self.joins {
                        self.retired.merge(join.latencies());
                        for e in join.take_trace().events {
                            let t = &mut self.kind_totals[e.kind.index() as usize];
                            t.0 += 1;
                            t.1 += e.dur_ns;
                        }
                    }
                }
                self.map = Some(staged.map);
                self.joins = staged.joins;
                self.shard_counts = vec![(0, 0); self.joins.len()];
                // Expectations pending at the barrier die with the old
                // joins; the coordinator re-injects those punctuations.
                self.aligner = Aligner::new();
                // Crossings recorded for superseded operations (e.g. a
                // checkpoint aborted by the rollback this commit
                // completes) are pre-commit history: clear them.
                self.barriers.clear();
                self.migrate = None;
                // A commit also completes a rollback install, and any
                // checkpoint armed when the worker was condemned is moot.
                self.rollback = None;
                self.checkpoint = None;
                ctrl.send(&Frame::MigrateCommit { epoch })?;
                Ok(())
            }
            Frame::MigrateBegin { epoch, nonce } => {
                if self.migrate.is_some() {
                    return Err(ClusterError::Protocol(
                        "overlapping migrations are not supported".into(),
                    ));
                }
                self.migrate = Some((epoch, nonce));
                Ok(())
            }
            Frame::Checkpoint { epoch, nonce } => {
                if self.migrate.is_some() {
                    return Err(ClusterError::Protocol(
                        "checkpoint during a migration is not supported".into(),
                    ));
                }
                self.checkpoint = Some((epoch, nonce));
                Ok(())
            }
            Frame::Rollback { epoch, nonce } => {
                // A rollback condemns the live state: any checkpoint
                // still armed ahead of it is aborted (its barrier, if
                // already in flight, is swallowed unarmed).
                self.checkpoint = None;
                self.rollback = Some((epoch, nonce));
                Ok(())
            }
            Frame::CheckpointDone { epoch: _, sink_watermark } => {
                // The epoch is durable: outputs below the coordinator's
                // acknowledged watermark can never be re-requested.
                self.sink.truncate_below(sink_watermark);
                Ok(())
            }
            Frame::Telemetry { payload } => {
                let msg = TelemetryMsg::decode(&payload).map_err(|e| {
                    ClusterError::Protocol(format!(
                        "worker {}: bad telemetry payload: {e}",
                        self.report.worker
                    ))
                })?;
                let TelemetryMsg::ClockProbe { probe, t0_ns } = msg else {
                    return Err(ClusterError::Protocol(format!(
                        "worker {}: unexpected telemetry message from coordinator",
                        self.report.worker
                    )));
                };
                let ack = TelemetryMsg::ClockAck { probe, t0_ns, worker_ns: wall_now_ns() };
                ctrl.send(&Frame::Telemetry { payload: ack.encode() })
            }
            Frame::Error { code, message } => Err(ClusterError::Protocol(format!(
                "coordinator rejected worker {}: error {code} ({message})",
                self.report.worker
            ))),
            other => Err(ClusterError::Protocol(format!(
                "unexpected control frame: {other:?}"
            ))),
        }
    }
}

fn side_index(side: Side) -> usize {
    match side {
        Side::Left => 0,
        Side::Right => 1,
    }
}

fn side_from_index(idx: u8) -> Result<Side, ClusterError> {
    match idx {
        0 => Ok(Side::Left),
        1 => Ok(Side::Right),
        other => Err(ClusterError::Protocol(format!("invalid side index {other}"))),
    }
}
