//! The cluster observability gate: with the telemetry plane enabled (a
//! fast report interval, tracing on) and seeded fault proxies on every
//! worker's ingest path, a 2-worker cluster resized mid-stream still
//! produces exactly the single-threaded multisets — and the merged
//! telemetry is **exact**: the cluster-level ingress→emit histogram
//! counts every joined tuple, and every routed punctuation has a
//! complete, monotone cluster-wide lifecycle span.
//!
//! Workers run as real OS processes, so the clock-offset estimation and
//! the cross-process report plumbing are exercised for real.

use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use pjoin::PJoin;
use punct_cluster::{
    check_exactly_once, validate_cluster_jsonl, Cluster, ClusterOptions, ClusterReport,
    JoinSpec, TelemetrySettings,
};
use punct_net::{BackoffPolicy, ClientOptions, FaultConfig};
use punct_types::{Pattern, Punctuation, StreamElement, Timestamp, Timestamped, Tuple, Value};
use stream_sim::{BinaryStreamOp, OpOutput, Side};

fn spec() -> JoinSpec {
    JoinSpec::new(2, 2)
}

/// Same grammar as the main equivalence gate: tuples per key, closing
/// punctuations four keys behind, stream-end wildcards.
fn workload(keys: i64) -> Vec<(Side, u64, StreamElement)> {
    let mut els: Vec<(Side, u64, StreamElement)> = Vec::new();
    let mut ts = 0u64;
    let mut push = |els: &mut Vec<(Side, u64, StreamElement)>, side, el| {
        els.push((side, ts, el));
        ts += 1;
    };
    for k in 0..keys {
        push(&mut els, Side::Left, Tuple::of((k, 10 * k)).into());
        push(&mut els, Side::Right, Tuple::of((k, -k)).into());
        if k % 3 == 0 {
            push(&mut els, Side::Left, Tuple::of((k, 10 * k + 1)).into());
        }
        if k >= 4 {
            let c = k - 4;
            match c % 4 {
                0 | 1 => {
                    push(&mut els, Side::Left, Punctuation::close_value(2, 0, c).into());
                    push(&mut els, Side::Right, Punctuation::close_value(2, 0, c).into());
                }
                3 => {
                    let pair = Pattern::In(vec![Value::Int(c - 1), Value::Int(c)]);
                    let p = Punctuation::on_attr(2, 0, pair);
                    push(&mut els, Side::Left, p.clone().into());
                    push(&mut els, Side::Right, p.into());
                }
                _ => {}
            }
        }
    }
    let wild = Punctuation::on_attr(2, 0, Pattern::Wildcard);
    push(&mut els, Side::Left, wild.clone().into());
    push(&mut els, Side::Right, wild.into());
    els
}

fn multisets(outputs: impl IntoIterator<Item = StreamElement>) -> (Vec<String>, Vec<String>) {
    let mut tuples = Vec::new();
    let mut puncts = Vec::new();
    for el in outputs {
        match &el {
            StreamElement::Tuple(_) => tuples.push(format!("{el:?}")),
            StreamElement::Punctuation(_) => puncts.push(format!("{el:?}")),
        }
    }
    tuples.sort();
    puncts.sort();
    (tuples, puncts)
}

fn reference(work: &[(Side, u64, StreamElement)]) -> (Vec<String>, Vec<String>) {
    let mut join = PJoin::new(spec().pjoin_config());
    let mut out = OpOutput::new();
    let mut all: Vec<StreamElement> = Vec::new();
    let mut last = 0u64;
    for (side, ts, el) in work {
        join.on_element(*side, el.clone(), Timestamp(*ts), &mut out);
        all.extend(out.drain());
        last = *ts;
    }
    while join.on_end(Timestamp(last + 1), &mut out) {}
    all.extend(out.drain());
    multisets(all)
}

fn spawn_worker(ctrl: std::net::SocketAddr, idx: u32) -> Child {
    Command::new(env!("CARGO_BIN_EXE_punct-worker"))
        .arg(ctrl.to_string())
        .arg(idx.to_string())
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn punct-worker")
}

fn wait_worker(mut child: Child, idx: usize) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        match child.try_wait().expect("wait punct-worker") {
            Some(status) => {
                assert!(status.success(), "worker {idx} exited with {status}");
                return;
            }
            None if Instant::now() >= deadline => {
                let _ = child.kill();
                panic!("worker {idx} did not exit in time");
            }
            None => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Runs the workload through a telemetry-enabled 2-worker cluster with
/// one mid-stream resize, asserts output equivalence, and returns the
/// report plus the pushed-punctuation count.
fn run_gate(telemetry: TelemetrySettings) -> (ClusterReport, u64, usize) {
    let work = workload(48);
    let (want_tuples, want_puncts) = reference(&work);
    let puncts_pushed =
        work.iter().filter(|(_, _, el)| matches!(el, StreamElement::Punctuation(_))).count()
            as u64;

    let mut opts = ClusterOptions::new(spec(), 2, 2);
    opts.client = ClientOptions {
        policy: BackoffPolicy::fast(),
        seed: 0x7E1E,
        ..ClientOptions::default()
    };
    opts.fault = Some(FaultConfig::lossy(7, 10, 3, 60, 0x7E1E_0BAD));
    opts.telemetry = telemetry;
    let mut cluster = Cluster::bind(opts).expect("bind coordinator");
    let ctrl = cluster.ctrl_addr();
    let children: Vec<Child> = (0..2).map(|i| spawn_worker(ctrl, i)).collect();
    cluster.accept_workers().expect("assemble cluster");

    let resize_at = work.len() / 2;
    let mut outputs: Vec<Timestamped<StreamElement>> = Vec::new();
    for (i, (side, ts, el)) in work.iter().enumerate() {
        if i == resize_at {
            let stats = cluster.repartition(4).expect("repartition");
            assert_eq!(stats.shards, 4);
            // The pause breakdown partitions the pause: each phase share
            // is bounded by the whole.
            for phase in [stats.drain, stats.export, stats.install, stats.reinject] {
                assert!(phase <= stats.pause, "phase {phase:?} exceeds pause {:?}", stats.pause);
            }
        }
        cluster.push(*side, Timestamped::new(Timestamp(*ts), el.clone())).expect("push");
        if i % 16 == 0 {
            outputs.extend(cluster.poll_outputs().expect("poll"));
        }
    }
    let report = cluster.finish().expect("finish cluster");
    outputs.extend(report.outputs.iter().cloned());
    for (i, child) in children.into_iter().enumerate() {
        wait_worker(child, i);
    }

    let (got_tuples, got_puncts) = multisets(outputs.into_iter().map(|e| e.item));
    assert_eq!(got_tuples, want_tuples, "joined tuple multiset diverged");
    assert_eq!(got_puncts, want_puncts, "punctuation multiset diverged");
    (report, puncts_pushed, want_tuples.len())
}

#[test]
fn merged_telemetry_is_exact_through_faults_and_a_resize() {
    let settings = TelemetrySettings { enabled: true, interval_ms: 50, trace: true };
    let (report, puncts_pushed, joined) = run_gate(settings);
    let telem = &report.telemetry;

    // Every worker's final flush arrived and clock offsets were probed.
    assert!(telem.finals_pending().is_empty(), "missing final flushes");
    assert!(telem.reports_ingested() >= 2, "at least one report per worker");
    for w in 0..telem.workers() {
        assert!(telem.clock(w).samples() >= 1, "worker {w} was never clock-probed");
        assert!(telem.worker(w).expect("latest report").final_flush);
    }

    // Lifetime counters cover the whole run: both workers consumed every
    // routed element; outputs include every joined tuple.
    assert!(telem.total_elements() > 0);
    assert!(telem.total_outputs() >= joined as u64);

    if punct_trace::COMPILED {
        // The acceptance bar: the merged cluster-level ingress→emit
        // histogram counts exactly the joined tuples emitted.
        let merged = telem.merged_latencies();
        assert_eq!(
            merged.tuple_emit.count(),
            joined as u64,
            "merged ingress→emit histogram must count every joined tuple"
        );
        assert!(merged.punct_purge.count() > 0);
        assert!(merged.punct_propagate.count() > 0);
        assert!(telem.trace_active());
    }

    // Every routed punctuation has a span that completed downstream.
    let spans = telem.spans();
    assert_eq!(spans.len() as u64, puncts_pushed, "one span per pushed punctuation");
    let mut seqs: Vec<u64> = spans.iter().map(|s| s.seq).collect();
    seqs.sort_unstable();
    seqs.dedup();
    assert_eq!(seqs.len() as u64, puncts_pushed, "span sequences must be unique");
    for span in &spans {
        assert!(span.route_ns > 0, "span {} was never routed", span.seq);
        assert!(span.merge_ns >= span.route_ns, "span {} merged before routing", span.seq);
        assert!(!span.workers.is_empty(), "span {} has no lanes", span.seq);
        for lane in &span.workers {
            assert!(
                lane.observe_ns > 0,
                "span {} lane {} was never observed",
                span.seq,
                lane.worker
            );
            if punct_trace::COMPILED {
                assert!(
                    lane.complete(),
                    "span {} lane {} is missing stages: {lane:?}",
                    span.seq,
                    lane.worker
                );
            }
            assert!(
                lane.monotone(),
                "span {} lane {} goes backwards: {lane:?}",
                span.seq,
                lane.worker
            );
            assert!(lane.ingest_ns == 0 || lane.ingest_ns >= span.route_ns);
            assert!(lane.observe_ns <= span.merge_ns);
        }
    }

    // The surfaced views agree with the raw state.
    let metrics = telem.metrics_text();
    assert!(metrics.contains("pjoin_worker_elements_total{worker=\"0\"}"));
    assert!(metrics.contains("pjoin_worker_elements_total{worker=\"1\"}"));
    assert!(metrics.contains(&format!("pjoin_cluster_punctuations_total {puncts_pushed}")));
    assert!(metrics.contains(&format!("pjoin_cluster_punctuations_merged_total {puncts_pushed}")));
    assert!(metrics.contains("pjoin_cluster_migrations_total 1"));

    let dump = telem.to_jsonl();
    let summary = validate_cluster_jsonl(&dump).expect("schema-valid JSONL");
    check_exactly_once(&summary, puncts_pushed)
        .expect("exactly-once recomputed from the artifact alone");
    assert_eq!(summary.migrations, 1);
    if punct_trace::COMPILED {
        assert_eq!(summary.tuple_emit_count, joined as u64);
    }

    let dash = telem.dashboard_text(100);
    assert!(dash.contains("worker 0"));
    assert!(dash.contains("worker 1"));
    assert!(dash.contains("migration: epoch 2"));
}

#[test]
fn disabled_telemetry_changes_nothing_and_ships_nothing() {
    let (report, _, _) = run_gate(TelemetrySettings::disabled());
    let telem = &report.telemetry;
    assert_eq!(telem.reports_ingested(), 0, "disabled telemetry must ship zero frames");
    assert!(telem.spans().is_empty());
    assert!(telem.merged_latencies().is_empty());
    for w in 0..telem.workers() {
        assert_eq!(telem.clock(w).samples(), 0, "no clock probes when disabled");
        assert!(telem.worker(w).is_none());
    }
}
