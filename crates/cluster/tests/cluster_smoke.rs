//! In-process cluster smoke tests: workers as threads (the worker loop
//! is self-contained), small workloads, direct visibility into worker
//! errors. The full multi-process gate lives in `cluster_equivalence`.

use std::thread::JoinHandle;
use std::time::Duration;

use punct_cluster::{
    run_worker, Cluster, ClusterOptions, JoinSpec, WorkerOptions, WorkerReport,
};
use punct_types::{Punctuation, StreamElement, Tuple};
use stream_sim::Side;

fn start(
    opts: ClusterOptions,
) -> (Cluster, Vec<JoinHandle<Result<WorkerReport, punct_cluster::ClusterError>>>) {
    let workers = opts.workers as u32;
    let mut cluster = Cluster::bind(opts).expect("bind");
    let ctrl = cluster.ctrl_addr();
    let handles: Vec<_> = (0..workers)
        .map(|i| {
            std::thread::spawn(move || {
                let mut w = WorkerOptions::new(i, ctrl);
                w.ctrl_timeout = Duration::from_secs(20);
                run_worker(w)
            })
        })
        .collect();
    cluster.accept_workers().expect("assemble");
    (cluster, handles)
}

#[test]
fn joins_across_workers_without_resize() {
    let (mut cluster, handles) = start(ClusterOptions::new(JoinSpec::new(2, 2), 2, 4));
    for k in 0..16i64 {
        cluster.push_tuple(Side::Left, 2 * k as u64, Tuple::of((k, 10 * k))).expect("push");
        cluster
            .push_tuple(Side::Right, 2 * k as u64 + 1, Tuple::of((k, -k)))
            .expect("push");
    }
    cluster
        .push_punct(Side::Left, 40, Punctuation::close_value(2, 0, 3i64))
        .expect("push punct");
    let report = cluster.finish().expect("finish");
    let tuples = report.outputs.iter().filter(|e| e.item.is_tuple()).count();
    let puncts = report.outputs.iter().filter(|e| e.item.is_punctuation()).count();
    assert_eq!(tuples, 16, "every key joins exactly once");
    assert_eq!(puncts, 1, "the punctuation propagates exactly once");
    let mut elements = 0;
    for h in handles {
        let wr = h.join().expect("worker thread").expect("worker ok");
        elements += wr.elements;
        assert_eq!(wr.final_epoch, 1);
    }
    // 32 tuples + 1 punctuation, each delivered to exactly one worker.
    assert_eq!(elements, 33);
}

#[test]
fn single_resize_preserves_state() {
    let (mut cluster, handles) = start(ClusterOptions::new(JoinSpec::new(2, 2), 2, 2));
    // Left state only, then resize, then the matching right tuples: every
    // join result is produced *after* the state moved shards.
    for k in 0..12i64 {
        cluster.push_tuple(Side::Left, k as u64, Tuple::of((k, 10 * k))).expect("push");
    }
    let stats = cluster.repartition(4).expect("repartition");
    assert_eq!(stats.records_moved, 12, "all left records migrate");
    for k in 0..12i64 {
        cluster
            .push_tuple(Side::Right, 100 + k as u64, Tuple::of((k, -k)))
            .expect("push");
    }
    let report = cluster.finish().expect("finish");
    let tuples: Vec<&StreamElement> =
        report.outputs.iter().map(|e| &e.item).filter(|e| e.is_tuple()).collect();
    assert_eq!(tuples.len(), 12, "every migrated record joins its partner");
    let mut imported = 0;
    for h in handles {
        let wr = h.join().expect("worker thread").expect("worker ok");
        imported += wr.records_imported;
        assert_eq!(wr.final_epoch, 2);
        assert_eq!(wr.migrations, 1);
    }
    assert_eq!(imported, 12);
}
