//! The cluster equivalence gate: a multi-process cluster resized
//! mid-stream — 2 → 4 shards, then 4 → 3 — produces **exactly** the
//! joined-tuple multiset and the propagated-punctuation multiset of one
//! single-threaded PJoin, on clean links and through seeded fault
//! proxies on every worker's ingest path.
//!
//! Workers run as real OS processes (`punct-worker`), so the gate also
//! covers process startup, the `JoinCluster` handshake, and orderly
//! shutdown.

use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use pjoin::PJoin;
use punct_cluster::{Cluster, ClusterOptions, JoinSpec, MigrationStats};
use punct_net::{BackoffPolicy, ClientOptions, FaultConfig};
use punct_types::{Pattern, Punctuation, StreamElement, Timestamp, Timestamped, Tuple, Value};
use stream_sim::{BinaryStreamOp, OpOutput, Side};

fn spec() -> JoinSpec {
    JoinSpec::new(2, 2)
}

/// A grammatical punctuated workload over sequentially-arriving keys:
/// per key a couple of tuples on each side, trailed (four keys later) by
/// closing punctuations — constants for single-shard routing, `In` sets
/// for multicast — and stream-end wildcards for broadcast coverage.
/// Punctuations always close keys whose tuples have all been pushed, so
/// the streams keep their grammar.
fn workload(keys: i64) -> Vec<(Side, u64, StreamElement)> {
    let mut els: Vec<(Side, u64, StreamElement)> = Vec::new();
    let mut ts = 0u64;
    let mut push = |els: &mut Vec<(Side, u64, StreamElement)>, side, el| {
        els.push((side, ts, el));
        ts += 1;
    };
    for k in 0..keys {
        push(&mut els, Side::Left, Tuple::of((k, 10 * k)).into());
        push(&mut els, Side::Right, Tuple::of((k, -k)).into());
        if k % 3 == 0 {
            push(&mut els, Side::Left, Tuple::of((k, 10 * k + 1)).into());
        }
        if k % 4 == 1 {
            push(&mut els, Side::Right, Tuple::of((k, -k - 1000)).into());
        }
        if k >= 4 {
            let c = k - 4;
            match c % 4 {
                0 | 1 => {
                    push(&mut els, Side::Left, Punctuation::close_value(2, 0, c).into());
                    push(&mut els, Side::Right, Punctuation::close_value(2, 0, c).into());
                }
                3 => {
                    let pair = Pattern::In(vec![Value::Int(c - 1), Value::Int(c)]);
                    let p = Punctuation::on_attr(2, 0, pair);
                    push(&mut els, Side::Left, p.clone().into());
                    push(&mut els, Side::Right, p.into());
                }
                _ => {}
            }
        }
    }
    // Stream-end wildcards: no more tuples on either side. Broadcast
    // routing, and they close the four never-individually-closed keys.
    let wild = Punctuation::on_attr(2, 0, Pattern::Wildcard);
    push(&mut els, Side::Left, wild.clone().into());
    push(&mut els, Side::Right, wild.into());
    els
}

/// Sorted-debug-string multisets of (joined tuples, punctuations).
fn multisets(outputs: impl IntoIterator<Item = StreamElement>) -> (Vec<String>, Vec<String>) {
    let mut tuples = Vec::new();
    let mut puncts = Vec::new();
    for el in outputs {
        match &el {
            StreamElement::Tuple(_) => tuples.push(format!("{el:?}")),
            StreamElement::Punctuation(_) => puncts.push(format!("{el:?}")),
        }
    }
    tuples.sort();
    puncts.sort();
    (tuples, puncts)
}

/// The single-threaded reference: one PJoin, same configuration, same
/// element sequence, end-of-stream flush.
fn reference(work: &[(Side, u64, StreamElement)]) -> (Vec<String>, Vec<String>) {
    let mut join = PJoin::new(spec().pjoin_config());
    let mut out = OpOutput::new();
    let mut all: Vec<StreamElement> = Vec::new();
    let mut last = 0u64;
    for (side, ts, el) in work {
        join.on_element(*side, el.clone(), Timestamp(*ts), &mut out);
        all.extend(out.drain());
        last = *ts;
    }
    while join.on_end(Timestamp(last + 1), &mut out) {}
    all.extend(out.drain());
    multisets(all)
}

fn spawn_worker(ctrl: std::net::SocketAddr, idx: u32) -> Child {
    Command::new(env!("CARGO_BIN_EXE_punct-worker"))
        .arg(ctrl.to_string())
        .arg(idx.to_string())
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn punct-worker")
}

fn wait_worker(mut child: Child, idx: usize) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        match child.try_wait().expect("wait punct-worker") {
            Some(status) => {
                assert!(status.success(), "worker {idx} exited with {status}");
                return;
            }
            None if Instant::now() >= deadline => {
                let _ = child.kill();
                panic!("worker {idx} did not exit in time");
            }
            None => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Drives the full gate: assemble a 2-worker cluster on `shards` global
/// shards, feed the workload in thirds with `repartition(4)` and
/// `repartition(3)` between them, finish, and compare multisets against
/// the single-threaded reference.
fn run_gate(fault: Option<FaultConfig>) -> Vec<MigrationStats> {
    let work = workload(60);
    let (want_tuples, want_puncts) = reference(&work);

    let mut opts = ClusterOptions::new(spec(), 2, 2);
    opts.client = ClientOptions {
        policy: BackoffPolicy::fast(),
        seed: 0xC1F0,
        ..ClientOptions::default()
    };
    opts.fault = fault;
    let mut cluster = Cluster::bind(opts).expect("bind coordinator");
    let ctrl = cluster.ctrl_addr();
    let children: Vec<Child> = (0..2).map(|i| spawn_worker(ctrl, i)).collect();
    cluster.accept_workers().expect("assemble cluster");
    assert_eq!(cluster.shard_map().epoch, 1);
    assert_eq!(cluster.shard_map().shards(), 2);

    let resize_at = [(work.len() / 3, 4usize), (2 * work.len() / 3, 3usize)];
    let mut outputs: Vec<Timestamped<StreamElement>> = Vec::new();
    for (i, (side, ts, el)) in work.iter().enumerate() {
        if let Some(&(_, to)) = resize_at.iter().find(|(at, _)| *at == i) {
            let stats = cluster.repartition(to).expect("repartition");
            assert_eq!(stats.shards, to);
            assert_eq!(cluster.shard_map().shards(), to);
        }
        cluster
            .push(*side, Timestamped::new(Timestamp(*ts), el.clone()))
            .expect("push");
        if i % 32 == 0 {
            outputs.extend(cluster.poll_outputs().expect("poll"));
        }
    }
    let report = cluster.finish().expect("finish cluster");
    outputs.extend(report.outputs);
    for (i, child) in children.into_iter().enumerate() {
        wait_worker(child, i);
    }

    assert_eq!(report.migrations.len(), 2);
    assert_eq!(report.migrations[0].epoch, 2);
    assert_eq!(report.migrations[1].epoch, 3);
    assert!(
        report.migrations.iter().any(|m| m.records_moved > 0),
        "the resize points must move live state: {:?}",
        report.migrations
    );

    let (got_tuples, got_puncts) = multisets(outputs.into_iter().map(|e| e.item));
    assert_eq!(
        got_tuples.len(),
        want_tuples.len(),
        "joined tuple count diverged from the single-threaded reference"
    );
    assert_eq!(got_tuples, want_tuples, "joined tuple multiset diverged");
    assert_eq!(got_puncts, want_puncts, "punctuation multiset diverged");
    report.migrations
}

#[test]
fn resize_preserves_join_and_punctuation_multisets() {
    let migrations = run_gate(None);
    assert_eq!(migrations.len(), 2);
}

#[test]
fn resize_preserves_multisets_through_faulty_links() {
    // Every worker's ingest path drops frames and forces disconnects
    // (independently seeded per link); the barrier and the data around
    // the resizes must still arrive exactly once.
    let migrations = run_gate(Some(FaultConfig::lossy(7, 10, 3, 60, 0xFA11)));
    assert_eq!(migrations.len(), 2);
}

#[test]
fn version_mismatch_rejected_at_join_cluster() {
    use punct_net::{encode_frame, error_code, Frame, FrameBuffer, WIRE_VERSION};
    use std::io::{Read, Write};

    let cluster = Cluster::bind(ClusterOptions::new(spec(), 1, 1)).expect("bind");
    // `accept_workers` runs on this thread; probe from another.
    let ctrl = cluster.ctrl_addr();
    let probe = std::thread::spawn(move || {
        let mut sock = std::net::TcpStream::connect(ctrl).expect("connect");
        sock.write_all(&encode_frame(&Frame::JoinCluster {
            wire_version: WIRE_VERSION + 1,
            worker: 0,
            ingest_addr: "127.0.0.1:1".into(),
            sink_addr: "127.0.0.1:1".into(),
        }))
        .expect("send stale handshake");
        let mut fb = FrameBuffer::new();
        let mut buf = [0u8; 1024];
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if let Some(frame) = fb.next_frame().expect("well-formed reply") {
                return frame;
            }
            assert!(Instant::now() < deadline, "no reply to stale handshake");
            let n = sock.read(&mut buf).expect("read reply");
            assert!(n > 0, "coordinator closed without an error frame");
            fb.extend(&buf[..n]);
        }
    });
    let mut cluster = cluster;
    let err = cluster.accept_workers().expect_err("stale worker must be rejected");
    assert!(err.to_string().contains("wire v"), "unexpected error: {err}");
    match probe.join().expect("probe thread") {
        Frame::Error { code, message } => {
            assert_eq!(code, error_code::VERSION_MISMATCH);
            assert!(message.contains("wire v"), "uninformative message: {message}");
        }
        other => panic!("expected Error frame, got {other:?}"),
    }
}
