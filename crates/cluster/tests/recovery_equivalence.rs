//! The crash-recovery equivalence gate: a multi-process cluster with
//! durable checkpointing has one worker SIGKILLed mid-stream; the
//! coordinator detects the death, respawns a replacement process, rolls
//! every worker back to the last complete epoch on disk, replays its
//! input log — and the run's joined-tuple multiset and propagated-
//! punctuation multiset are **exactly** those of one uninterrupted
//! single-threaded PJoin. On clean links and through seeded fault
//! proxies on every worker's ingest path.
//!
//! A third test pins the inverse invariant: with durability disabled
//! the coordinator ships zero checkpoint frames and writes nothing to
//! disk — the cluster behaves byte-for-byte like it did before the
//! durability plane existed.

use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use pjoin::PJoin;
use punct_cluster::{
    run_worker, Cluster, ClusterOptions, DurabilityOptions, JoinSpec, WorkerOptions,
};
use punct_net::{BackoffPolicy, ClientOptions, FaultConfig};
use punct_types::{Pattern, Punctuation, StreamElement, Timestamp, Timestamped, Tuple, Value};
use stream_sim::{BinaryStreamOp, OpOutput, Side};

fn spec() -> JoinSpec {
    JoinSpec::new(2, 2)
}

/// The same grammatical punctuated workload the resize gate uses:
/// per-key tuples on both sides trailed by closing punctuations
/// (constants and `In` sets), with stream-end wildcards.
fn workload(keys: i64) -> Vec<(Side, u64, StreamElement)> {
    let mut els: Vec<(Side, u64, StreamElement)> = Vec::new();
    let mut ts = 0u64;
    let mut push = |els: &mut Vec<(Side, u64, StreamElement)>, side, el| {
        els.push((side, ts, el));
        ts += 1;
    };
    for k in 0..keys {
        push(&mut els, Side::Left, Tuple::of((k, 10 * k)).into());
        push(&mut els, Side::Right, Tuple::of((k, -k)).into());
        if k % 3 == 0 {
            push(&mut els, Side::Left, Tuple::of((k, 10 * k + 1)).into());
        }
        if k % 4 == 1 {
            push(&mut els, Side::Right, Tuple::of((k, -k - 1000)).into());
        }
        if k >= 4 {
            let c = k - 4;
            match c % 4 {
                0 | 1 => {
                    push(&mut els, Side::Left, Punctuation::close_value(2, 0, c).into());
                    push(&mut els, Side::Right, Punctuation::close_value(2, 0, c).into());
                }
                3 => {
                    let pair = Pattern::In(vec![Value::Int(c - 1), Value::Int(c)]);
                    let p = Punctuation::on_attr(2, 0, pair);
                    push(&mut els, Side::Left, p.clone().into());
                    push(&mut els, Side::Right, p.into());
                }
                _ => {}
            }
        }
    }
    let wild = Punctuation::on_attr(2, 0, Pattern::Wildcard);
    push(&mut els, Side::Left, wild.clone().into());
    push(&mut els, Side::Right, wild.into());
    els
}

/// Sorted-debug-string multisets of (joined tuples, punctuations).
fn multisets(outputs: impl IntoIterator<Item = StreamElement>) -> (Vec<String>, Vec<String>) {
    let mut tuples = Vec::new();
    let mut puncts = Vec::new();
    for el in outputs {
        match &el {
            StreamElement::Tuple(_) => tuples.push(format!("{el:?}")),
            StreamElement::Punctuation(_) => puncts.push(format!("{el:?}")),
        }
    }
    tuples.sort();
    puncts.sort();
    (tuples, puncts)
}

/// The single-threaded reference: one PJoin, same elements, no crash.
fn reference(work: &[(Side, u64, StreamElement)]) -> (Vec<String>, Vec<String>) {
    let mut join = PJoin::new(spec().pjoin_config());
    let mut out = OpOutput::new();
    let mut all: Vec<StreamElement> = Vec::new();
    let mut last = 0u64;
    for (side, ts, el) in work {
        join.on_element(*side, el.clone(), Timestamp(*ts), &mut out);
        all.extend(out.drain());
        last = *ts;
    }
    while join.on_end(Timestamp(last + 1), &mut out) {}
    all.extend(out.drain());
    multisets(all)
}

fn spawn_worker(ctrl: std::net::SocketAddr, idx: u32) -> Child {
    Command::new(env!("CARGO_BIN_EXE_punct-worker"))
        .arg(ctrl.to_string())
        .arg(idx.to_string())
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn punct-worker")
}

fn wait_worker(mut child: Child, who: &str) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        match child.try_wait().expect("wait punct-worker") {
            Some(status) => {
                assert!(status.success(), "{who} exited with {status}");
                return;
            }
            None if Instant::now() >= deadline => {
                let _ = child.kill();
                panic!("{who} did not exit in time");
            }
            None => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// A unique, empty checkpoint directory for one test.
fn ckpt_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pjoin_recovery_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create checkpoint dir");
    dir
}

/// Drives the crash gate: a 2-worker process cluster with durability on,
/// a checkpoint cut at one third, worker 1 SIGKILLed at ~55%, a
/// respawned replacement recovered from disk, and a second checkpoint
/// after recovery. Compares multisets against the uninterrupted
/// single-threaded reference.
fn run_crash_gate(tag: &str, fault: Option<FaultConfig>) {
    let work = workload(60);
    let (want_tuples, want_puncts) = reference(&work);
    let dir = ckpt_dir(tag);

    let mut opts = ClusterOptions::new(spec(), 2, 2);
    opts.client = ClientOptions {
        policy: BackoffPolicy::fast(),
        seed: 0xC1F0,
        ..ClientOptions::default()
    };
    opts.fault = fault;
    opts.durability = DurabilityOptions::at(&dir);
    let respawned: Arc<Mutex<Vec<Child>>> = Arc::new(Mutex::new(Vec::new()));
    let stash = Arc::clone(&respawned);
    opts.durability.respawn = Some(Arc::new(move |idx, ctrl| {
        stash.lock().unwrap().push(spawn_worker(ctrl, idx as u32));
        Ok(())
    }));
    let mut cluster = Cluster::bind(opts).expect("bind coordinator");
    let ctrl = cluster.ctrl_addr();
    let mut children: Vec<Child> = (0..2).map(|i| spawn_worker(ctrl, i)).collect();
    cluster.accept_workers().expect("assemble cluster");

    let checkpoint_at = [work.len() / 3, 4 * work.len() / 5];
    let kill_at = 11 * work.len() / 20;
    let mut outputs: Vec<Timestamped<StreamElement>> = Vec::new();
    for (i, (side, ts, el)) in work.iter().enumerate() {
        if checkpoint_at.contains(&i) {
            cluster.checkpoint().expect("checkpoint");
        }
        if i == kill_at {
            let victim = &mut children[1];
            victim.kill().expect("SIGKILL worker 1");
            victim.wait().expect("reap killed worker");
        }
        cluster
            .push(*side, Timestamped::new(Timestamp(*ts), el.clone()))
            .expect("push");
        if i % 32 == 0 {
            outputs.extend(cluster.poll_outputs().expect("poll"));
        }
    }
    let report = cluster.finish().expect("finish cluster");
    outputs.extend(report.outputs);

    assert_eq!(report.checkpoints, 2, "both explicit cuts must have committed");
    assert_eq!(report.recoveries, 1, "exactly one crash recovery must have run");
    let replacements = std::mem::take(&mut *respawned.lock().unwrap());
    assert_eq!(replacements.len(), 1, "the respawn hook must have run once");
    wait_worker(children.remove(0), "surviving worker 0");
    for (i, child) in replacements.into_iter().enumerate() {
        wait_worker(child, &format!("replacement worker {i}"));
    }

    let (got_tuples, got_puncts) = multisets(outputs.into_iter().map(|e| e.item));
    assert_eq!(
        got_tuples.len(),
        want_tuples.len(),
        "joined tuple count diverged from the uninterrupted reference"
    );
    assert_eq!(got_tuples, want_tuples, "joined tuple multiset diverged");
    assert_eq!(got_puncts, want_puncts, "punctuation multiset diverged");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sigkill_recovery_preserves_join_and_punctuation_multisets() {
    run_crash_gate("clean", None);
}

#[test]
fn sigkill_recovery_preserves_multisets_through_faulty_links() {
    // Every worker's ingest path drops frames and forces disconnects
    // (independently seeded per link) *on top of* the SIGKILL; the
    // rollback barrier, the re-installed state, and the replayed data
    // must still arrive exactly once.
    run_crash_gate("faulty", Some(FaultConfig::lossy(7, 10, 3, 60, 0xFA11)));
}

#[test]
fn disabled_durability_ships_no_checkpoint_frames_and_no_disk_writes() {
    // Thread workers so their `WorkerReport`s are observable: with
    // durability off, no worker may see a single state-export frame and
    // the coordinator must write nothing anywhere.
    let work = workload(40);
    let (want_tuples, want_puncts) = reference(&work);

    let opts = ClusterOptions::new(spec(), 2, 2);
    assert!(!opts.durability.enabled(), "durability must default to off");
    assert!(opts.durability.dir.is_none(), "no directory means no disk writes");
    let mut cluster = Cluster::bind(opts).expect("bind coordinator");
    let ctrl = cluster.ctrl_addr();
    let handles: Vec<_> = (0..2u32)
        .map(|i| std::thread::spawn(move || run_worker(WorkerOptions::new(i, ctrl))))
        .collect();
    cluster.accept_workers().expect("assemble cluster");
    let mut outputs: Vec<Timestamped<StreamElement>> = Vec::new();
    for (i, (side, ts, el)) in work.iter().enumerate() {
        cluster
            .push(*side, Timestamped::new(Timestamp(*ts), el.clone()))
            .expect("push");
        if i % 32 == 0 {
            outputs.extend(cluster.poll_outputs().expect("poll"));
        }
    }
    let report = cluster.finish().expect("finish cluster");
    outputs.extend(report.outputs);
    assert_eq!(report.checkpoints, 0, "no epochs may be cut with durability off");
    assert_eq!(report.recoveries, 0);
    for h in handles {
        let wr = h.join().expect("worker thread").expect("worker");
        // Zero checkpoint frames reached the workers: nothing armed a
        // cut, nothing asked for a state export.
        assert_eq!(
            wr.records_exported, 0,
            "worker {} exported state without durability or a resize",
            wr.worker
        );
        assert_eq!(wr.migrations, 0);
    }
    let (got_tuples, got_puncts) = multisets(outputs.into_iter().map(|e| e.item));
    assert_eq!(got_tuples, want_tuples, "joined tuple multiset diverged");
    assert_eq!(got_puncts, want_puncts, "punctuation multiset diverged");
}
