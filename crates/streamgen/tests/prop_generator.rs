//! Property tests of the benchmark generator: every configuration must
//! yield well-formed, time-ordered, schema-conforming streams, and the
//! trace format must round-trip them bit-exactly.

use proptest::prelude::*;
use streamgen::trace::{read_trace, write_trace};
use streamgen::{generate_pair, generate_stream, validate_stream, PunctScheme, StreamConfig};

fn arb_scheme() -> impl Strategy<Value = PunctScheme> {
    prop_oneof![
        Just(PunctScheme::None),
        Just(PunctScheme::ConstantPerKey),
        (1u64..8).prop_map(|batch| PunctScheme::RangeBatch { batch }),
    ]
}

fn arb_config() -> impl Strategy<Value = StreamConfig> {
    (
        1usize..400,   // tuples
        1.0f64..60.0,  // punct inter-arrival (tuples)
        arb_scheme(),
        1u64..12,      // key window
        0usize..3,     // payload attrs
        any::<u64>(),  // seed
    )
        .prop_map(|(tuples, punct, scheme, window, payload, seed)| StreamConfig {
            tuples,
            punct_mean_tuples: punct,
            punct_scheme: scheme,
            key_window: window,
            payload_attrs: payload,
            seed,
            ..StreamConfig::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn generated_streams_are_well_formed(config in arb_config()) {
        let s = generate_stream(&config);
        prop_assert_eq!(
            s.elements.iter().filter(|e| e.item.is_tuple()).count(),
            config.tuples
        );
        prop_assert!(s.elements.windows(2).all(|w| w[0].ts <= w[1].ts), "time-ordered");
        let report = validate_stream(&s.elements, 0);
        prop_assert!(report.is_well_formed(), "violations: {:?}", report.violations);
        // Every tuple conforms to the declared schema.
        let schema = config.schema();
        for e in &s.elements {
            if let Some(t) = e.item.as_tuple() {
                prop_assert!(schema.check(t).is_ok());
            }
        }
    }

    #[test]
    fn traces_round_trip(config in arb_config()) {
        let s = generate_stream(&config);
        let back = read_trace(&write_trace(&s.elements)).unwrap();
        prop_assert_eq!(back, s.elements);
    }

    #[test]
    fn pairs_share_key_space(seed in any::<u64>(), pa in 2.0f64..40.0, pb in 2.0f64..40.0) {
        let cfg = StreamConfig { tuples: 300, seed, ..StreamConfig::default() };
        let (a, b) = generate_pair(&cfg, pa, pb);
        prop_assert!(validate_stream(&a.elements, 0).is_well_formed());
        prop_assert!(validate_stream(&b.elements, 0).is_well_formed());
        // Keys start from the same origin on both sides.
        let min_key = |s: &streamgen::GeneratedStream| {
            s.elements
                .iter()
                .filter_map(|e| e.item.as_tuple())
                .filter_map(|t| t.get(0).and_then(punct_types::Value::as_int))
                .min()
        };
        let (ma, mb) = (min_key(&a), min_key(&b));
        prop_assert!(ma.is_some() && mb.is_some());
        prop_assert!(ma.unwrap() < cfg.key_window as i64);
        prop_assert!(mb.unwrap() < cfg.key_window as i64);
    }
}
