//! The online auction workload from the paper's motivating example
//! (§1.1 / §2.1).
//!
//! A sellers portal merges items for sale into an **Open** stream; a
//! buyers portal merges bids into a **Bid** stream. Each item is open for
//! bidding during a fixed auction period:
//!
//! * Every Open tuple carries a unique `item_id`, so the query system
//!   derives a punctuation right after each tuple ("no more tuple
//!   containing this specific item_id value will occur").
//! * When an item's auction period expires, the auction system inserts a
//!   punctuation into the Bid stream signalling the end of bids for it.

use punct_types::{
    Punctuation, Schema, StreamElement, Timestamp, Timestamped, Tuple, Value, ValueType,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stream_sim::ExpSampler;

/// Auction workload parameters.
#[derive(Debug, Clone)]
pub struct AuctionConfig {
    /// Number of items offered for sale.
    pub items: usize,
    /// Mean gap between item openings, µs (Poisson).
    pub item_open_gap_us: f64,
    /// Auction period: an item accepts bids for this long after opening.
    pub auction_duration_us: u64,
    /// Mean gap between bids, µs (Poisson).
    pub bid_mean_gap_us: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AuctionConfig {
    fn default() -> AuctionConfig {
        AuctionConfig {
            items: 200,
            item_open_gap_us: 20_000.0,
            auction_duration_us: 200_000,
            bid_mean_gap_us: 2_000.0,
            seed: 0,
        }
    }
}

/// The generated auction workload.
#[derive(Debug, Clone)]
pub struct AuctionWorkload {
    /// Open stream: `(item_id, seller_id, open_price)` plus per-item
    /// punctuations.
    pub open: Vec<Timestamped<StreamElement>>,
    /// Bid stream: `(item_id, bidder_id, bid_increase)` plus
    /// auction-closed punctuations.
    pub bid: Vec<Timestamped<StreamElement>>,
    /// Total bids generated.
    pub bids: usize,
}

/// Schema of the Open stream.
pub fn open_schema() -> Schema {
    Schema::of(&[
        ("item_id", ValueType::Int),
        ("seller_id", ValueType::Str),
        ("open_price", ValueType::Float),
    ])
}

/// Schema of the Bid stream.
pub fn bid_schema() -> Schema {
    Schema::of(&[
        ("item_id", ValueType::Int),
        ("bidder_id", ValueType::Str),
        ("bid_increase", ValueType::Float),
    ])
}

/// Generates the auction workload.
pub fn generate_auction(config: &AuctionConfig) -> AuctionWorkload {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let open_gap = ExpSampler::new(config.item_open_gap_us);
    let bid_gap = ExpSampler::new(config.bid_mean_gap_us);

    // Item lifecycle: item i opens at open_at[i], closes at close_at[i].
    let mut open_at = Vec::with_capacity(config.items);
    let mut t = Timestamp::ZERO;
    for i in 0..config.items {
        if i > 0 {
            t = t.advance(open_gap.sample_micros(&mut rng));
        }
        open_at.push(t);
    }
    let close_at: Vec<Timestamp> =
        open_at.iter().map(|t| t.advance(config.auction_duration_us)).collect();

    // Open stream: tuple at open time, punctuation immediately after
    // (unique-key derivation).
    let mut open = Vec::with_capacity(config.items * 2);
    for (i, &ts) in open_at.iter().enumerate() {
        let tuple = Tuple::new(vec![
            Value::Int(i as i64),
            Value::str(format!("seller-{}", rng.gen_range(0..50))),
            Value::Float((rng.gen_range(100..10_000) as f64) / 100.0),
        ]);
        open.push(Timestamped::new(ts, StreamElement::Tuple(tuple)));
        open.push(Timestamped::new(
            ts,
            StreamElement::Punctuation(Punctuation::close_value(3, 0, i as i64)),
        ));
    }

    // Bid stream: Poisson bids over currently-open items; punctuation at
    // each item's close time.
    let horizon = close_at[config.items - 1];
    let mut bid = Vec::new();
    let mut bids = 0usize;
    let mut now = Timestamp::ZERO;
    // Items close in open order (equal durations), so a cursor suffices.
    let mut next_close = 0usize;
    loop {
        now = now.advance(bid_gap.sample_micros(&mut rng));
        if now > horizon {
            break;
        }
        // Emit punctuations for items that closed before this bid.
        while next_close < config.items && close_at[next_close] <= now {
            bid.push(Timestamped::new(
                close_at[next_close],
                StreamElement::Punctuation(Punctuation::close_value(3, 0, next_close as i64)),
            ));
            next_close += 1;
        }
        // Open items at `now`: opened (open_at <= now) and not closed.
        let first_open = next_close;
        let opened = open_at.partition_point(|&o| o <= now);
        if first_open >= opened {
            continue; // nothing open right now
        }
        let item = rng.gen_range(first_open..opened);
        let tuple = Tuple::new(vec![
            Value::Int(item as i64),
            Value::str(format!("bidder-{}", rng.gen_range(0..200))),
            Value::Float((rng.gen_range(1..500) as f64) / 10.0),
        ]);
        bid.push(Timestamped::new(now, StreamElement::Tuple(tuple)));
        bids += 1;
    }
    // Close out the remaining items.
    while next_close < config.items {
        bid.push(Timestamped::new(
            close_at[next_close],
            StreamElement::Punctuation(Punctuation::close_value(3, 0, next_close as i64)),
        ));
        next_close += 1;
    }

    AuctionWorkload { open, bid, bids }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_stream;

    fn small() -> AuctionConfig {
        AuctionConfig { items: 50, seed: 3, ..AuctionConfig::default() }
    }

    #[test]
    fn open_stream_has_tuple_and_punct_per_item() {
        let w = generate_auction(&small());
        assert_eq!(w.open.len(), 100);
        let puncts = w.open.iter().filter(|e| e.item.is_punctuation()).count();
        assert_eq!(puncts, 50);
    }

    #[test]
    fn bid_stream_has_punct_per_item() {
        let w = generate_auction(&small());
        let puncts = w.bid.iter().filter(|e| e.item.is_punctuation()).count();
        assert_eq!(puncts, 50);
        assert!(w.bids > 0);
    }

    #[test]
    fn streams_are_well_formed() {
        let w = generate_auction(&small());
        assert!(validate_stream(&w.open, 0).is_well_formed());
        let bid_report = validate_stream(&w.bid, 0);
        assert!(bid_report.is_well_formed(), "{:?}", bid_report.violations);
    }

    #[test]
    fn streams_are_time_ordered() {
        let w = generate_auction(&small());
        assert!(w.open.windows(2).all(|x| x[0].ts <= x[1].ts));
        assert!(w.bid.windows(2).all(|x| x[0].ts <= x[1].ts));
    }

    #[test]
    fn bids_reference_open_items_only() {
        let cfg = small();
        let w = generate_auction(&cfg);
        // Reconstruct lifecycle and check each bid falls in its item's
        // open interval.
        let opens: Vec<Timestamp> = w
            .open
            .iter()
            .filter(|e| e.item.is_tuple())
            .map(|e| e.ts)
            .collect();
        for e in &w.bid {
            if let StreamElement::Tuple(t) = &e.item {
                let item = t.get(0).unwrap().as_int().unwrap() as usize;
                let open = opens[item];
                let close = open.advance(cfg.auction_duration_us);
                assert!(e.ts >= open && e.ts <= close, "bid at {} outside [{open}, {close}]", e.ts);
            }
        }
    }

    #[test]
    fn schemas_validate_generated_tuples() {
        let w = generate_auction(&small());
        let os = open_schema();
        let bs = bid_schema();
        for e in &w.open {
            if let StreamElement::Tuple(t) = &e.item {
                os.check(t).unwrap();
            }
        }
        for e in &w.bid {
            if let StreamElement::Tuple(t) = &e.item {
                bs.check(t).unwrap();
            }
        }
    }

    #[test]
    fn deterministic() {
        let a = generate_auction(&small());
        let b = generate_auction(&small());
        assert_eq!(a.bids, b.bids);
        assert_eq!(a.bid.len(), b.bid.len());
    }
}
