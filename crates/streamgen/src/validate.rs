//! Well-formedness validation of punctuated streams.
//!
//! A stream is well-formed when no tuple matches any punctuation that
//! arrived before it — the defining property of punctuations (§2.2). The
//! validator also checks the paper's join-attribute compatibility
//! assumption: successive punctuation patterns on the join attribute are
//! pairwise disjoint or nested.

use punct_types::{Punctuation, StreamElement, Timestamped};

/// The outcome of validating a stream.
#[derive(Debug, Clone, Default)]
pub struct WellFormedness {
    /// Indices of tuples that violate an earlier punctuation.
    pub violations: Vec<usize>,
    /// Index pairs `(earlier, later)` of punctuations that violate the
    /// disjoint-or-nested assumption on the join attribute.
    pub incompatible_pairs: Vec<(usize, usize)>,
    /// Total tuples seen.
    pub tuples: usize,
    /// Total punctuations seen.
    pub punctuations: usize,
}

impl WellFormedness {
    /// True when no violations of either kind were found.
    pub fn is_well_formed(&self) -> bool {
        self.violations.is_empty() && self.incompatible_pairs.is_empty()
    }
}

/// Validates `elements` (in arrival order) against punctuation semantics;
/// `join_attr` is the join attribute index used for the compatibility
/// check.
///
/// Runtime is `O(elements × punctuations)` — this is a test utility, not
/// an operator.
pub fn validate_stream(
    elements: &[Timestamped<StreamElement>],
    join_attr: usize,
) -> WellFormedness {
    let mut seen: Vec<(usize, Punctuation)> = Vec::new();
    let mut report = WellFormedness::default();

    for (idx, e) in elements.iter().enumerate() {
        match &e.item {
            StreamElement::Tuple(t) => {
                report.tuples += 1;
                if seen.iter().any(|(_, p)| p.matches(t)) {
                    report.violations.push(idx);
                }
            }
            StreamElement::Punctuation(p) => {
                report.punctuations += 1;
                for (early_idx, earlier) in &seen {
                    if !earlier.compatible_on(p, join_attr) {
                        report.incompatible_pairs.push((*early_idx, idx));
                    }
                }
                seen.push((idx, p.clone()));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use punct_types::{Pattern, Timestamp, Tuple};

    fn tup(ts: u64, k: i64) -> Timestamped<StreamElement> {
        Timestamped::new(Timestamp(ts), StreamElement::Tuple(Tuple::of((k, 0i64))))
    }

    fn punct(ts: u64, k: i64) -> Timestamped<StreamElement> {
        Timestamped::new(
            Timestamp(ts),
            StreamElement::Punctuation(Punctuation::close_value(2, 0, k)),
        )
    }

    #[test]
    fn accepts_well_formed() {
        let s = vec![tup(1, 1), tup(2, 2), punct(3, 1), tup(4, 2), punct(5, 2)];
        let r = validate_stream(&s, 0);
        assert!(r.is_well_formed());
        assert_eq!(r.tuples, 3);
        assert_eq!(r.punctuations, 2);
    }

    #[test]
    fn detects_tuple_after_matching_punctuation() {
        let s = vec![punct(1, 7), tup(2, 7)];
        let r = validate_stream(&s, 0);
        assert_eq!(r.violations, vec![1]);
        assert!(!r.is_well_formed());
    }

    #[test]
    fn detects_incompatible_punctuation_overlap() {
        let a = Timestamped::new(
            Timestamp(1),
            StreamElement::Punctuation(Punctuation::on_attr(2, 0, Pattern::int_range(0, 5))),
        );
        let b = Timestamped::new(
            Timestamp(2),
            StreamElement::Punctuation(Punctuation::on_attr(2, 0, Pattern::int_range(3, 9))),
        );
        let r = validate_stream(&[a, b], 0);
        assert_eq!(r.incompatible_pairs, vec![(0, 1)]);
    }

    #[test]
    fn nested_punctuations_are_compatible() {
        let narrow = Timestamped::new(
            Timestamp(1),
            StreamElement::Punctuation(Punctuation::on_attr(2, 0, Pattern::int_range(2, 3))),
        );
        let wide = Timestamped::new(
            Timestamp(2),
            StreamElement::Punctuation(Punctuation::on_attr(2, 0, Pattern::int_range(0, 9))),
        );
        let r = validate_stream(&[narrow, wide], 0);
        assert!(r.is_well_formed());
    }
}
