//! The sliding-key-window stream generator.
//!
//! Model: join keys are the integers `0, 1, 2, …`. At any moment a stream
//! draws tuple keys uniformly from its **active window** `[low, low + W)`.
//! When a punctuation event fires (Poisson inter-arrival measured in
//! tuples), the stream emits a punctuation closing key `low` — asserting
//! it will never use that key again — and slides the window forward by
//! one. Because the window only moves forward past punctuated keys, the
//! generated stream is well-formed by construction.
//!
//! Two streams built over the same key space with the *same* punctuation
//! rate keep overlapping windows (a steady many-to-many join); with
//! *asymmetric* rates the faster-punctuating stream's window races ahead,
//! reproducing the state asymmetry of the paper's §4.3.

use punct_types::{
    Pattern, Punctuation, StreamElement, Timestamp, Timestamped, Tuple, Value,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stream_sim::ExpSampler;

use crate::config::{PunctScheme, StreamConfig};

/// A generated punctuated stream plus bookkeeping useful to experiments.
#[derive(Debug, Clone)]
pub struct GeneratedStream {
    /// The timestamped elements, in arrival order.
    pub elements: Vec<Timestamped<StreamElement>>,
    /// Number of data tuples among `elements`.
    pub tuples: usize,
    /// Number of punctuations among `elements`.
    pub punctuations: usize,
    /// Exclusive upper bound of keys used (`low` after the last slide is
    /// the lowest *open* key).
    pub final_window_low: u64,
    /// The configuration that produced this stream.
    pub config: StreamConfig,
}

impl GeneratedStream {
    /// Arrival time of the last element.
    pub fn end_time(&self) -> Timestamp {
        self.elements.last().map_or(Timestamp::ZERO, |e| e.ts)
    }
}

/// Generates one stream from `config`.
///
/// ```
/// use streamgen::{generate_stream, validate_stream, StreamConfig};
/// let cfg = StreamConfig { tuples: 100, seed: 1, ..StreamConfig::default() };
/// let s = generate_stream(&cfg);
/// assert_eq!(s.tuples, 100);
/// assert!(validate_stream(&s.elements, 0).is_well_formed());
/// ```
pub fn generate_stream(config: &StreamConfig) -> GeneratedStream {
    let mut rng = StdRng::seed_from_u64(config.seed);
    generate_with_rng(config, &mut rng)
}

/// Generates the A/B stream pair for a two-input join experiment.
///
/// The two streams share the key space but use independent RNG streams
/// (derived from `seed`); `punct_a` / `punct_b` override the punctuation
/// inter-arrival per side (in tuples per punctuation), enabling the
/// asymmetric experiments of §4.3.
pub fn generate_pair(
    config: &StreamConfig,
    punct_a: f64,
    punct_b: f64,
) -> (GeneratedStream, GeneratedStream) {
    let a_cfg = StreamConfig {
        punct_mean_tuples: punct_a,
        seed: config.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1),
        ..config.clone()
    };
    let b_cfg = StreamConfig {
        punct_mean_tuples: punct_b,
        seed: config.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(2),
        ..config.clone()
    };
    (generate_stream(&a_cfg), generate_stream(&b_cfg))
}

fn generate_with_rng(config: &StreamConfig, rng: &mut StdRng) -> GeneratedStream {
    assert!(config.key_window >= 1, "key window must hold at least one key");
    let width = config.width();
    let tuple_gap = ExpSampler::new(config.tuple_mean_gap_us);
    let punct_gap = match config.punct_scheme {
        PunctScheme::None => None,
        _ => Some(ExpSampler::new(config.punct_mean_tuples)),
    };

    let mut elements = Vec::with_capacity(config.tuples + config.tuples / 8);
    let mut now = Timestamp::ZERO;
    let mut low: u64 = 0; // lowest open key
    let mut punctuations = 0usize;
    // Tuples remaining until the next punctuation event.
    let mut until_punct = punct_gap.map(|g| g.sample_count(rng));
    // For RangeBatch: lowest key not yet covered by an emitted range.
    let mut range_start: u64 = 0;
    let mut pending_range: u64 = 0; // punctuation events accumulated

    for _ in 0..config.tuples {
        now = now.advance(tuple_gap.sample_micros(rng));
        let key = low + rng.gen_range(0..config.key_window);
        let mut values = Vec::with_capacity(width);
        values.push(Value::Int(key as i64));
        for _ in 0..config.payload_attrs {
            values.push(Value::Int(rng.gen_range(0..1_000)));
        }
        elements.push(Timestamped::new(now, StreamElement::Tuple(Tuple::new(values))));

        if let (Some(gap), Some(left)) = (punct_gap, until_punct.as_mut()) {
            *left -= 1;
            while *left == 0 {
                // Punctuation event: close key `low`, slide the window.
                let closed = low;
                low += 1;
                match config.punct_scheme {
                    PunctScheme::None => unreachable!("punct_gap is None for None scheme"),
                    PunctScheme::ConstantPerKey => {
                        punctuations += 1;
                        elements.push(Timestamped::new(
                            now,
                            StreamElement::Punctuation(Punctuation::close_value(
                                width,
                                0,
                                closed as i64,
                            )),
                        ));
                    }
                    PunctScheme::RangeBatch { batch } => {
                        pending_range += 1;
                        if pending_range >= batch {
                            punctuations += 1;
                            let pattern =
                                Pattern::int_range(range_start as i64, (low - 1) as i64);
                            elements.push(Timestamped::new(
                                now,
                                StreamElement::Punctuation(Punctuation::on_attr(
                                    width, 0, pattern,
                                )),
                            ));
                            range_start = low;
                            pending_range = 0;
                        }
                    }
                }
                *left = gap.sample_count(rng);
            }
        }
    }

    GeneratedStream {
        elements,
        tuples: config.tuples,
        punctuations,
        final_window_low: low,
        config: config.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_stream;

    fn small(scheme: PunctScheme) -> StreamConfig {
        StreamConfig {
            tuples: 2_000,
            punct_mean_tuples: 10.0,
            punct_scheme: scheme,
            seed: 42,
            ..StreamConfig::default()
        }
    }

    #[test]
    fn generates_requested_tuple_count() {
        let s = generate_stream(&small(PunctScheme::ConstantPerKey));
        assert_eq!(s.tuples, 2_000);
        let tuple_count = s.elements.iter().filter(|e| e.item.is_tuple()).count();
        assert_eq!(tuple_count, 2_000);
        let punct_count = s.elements.iter().filter(|e| e.item.is_punctuation()).count();
        assert_eq!(punct_count, s.punctuations);
    }

    #[test]
    fn punctuation_rate_is_roughly_mean() {
        let s = generate_stream(&small(PunctScheme::ConstantPerKey));
        // 2000 tuples at ~10 tuples/punct: expect ~200, allow wide slack.
        assert!(
            (120..=280).contains(&s.punctuations),
            "got {} punctuations",
            s.punctuations
        );
    }

    #[test]
    fn timestamps_are_nondecreasing() {
        let s = generate_stream(&small(PunctScheme::ConstantPerKey));
        assert!(s.elements.windows(2).all(|w| w[0].ts <= w[1].ts));
    }

    #[test]
    fn arrival_gap_mean_close_to_config() {
        let cfg = StreamConfig { tuples: 20_000, ..small(PunctScheme::None) };
        let s = generate_stream(&cfg);
        let total = s.end_time().as_micros() as f64;
        let mean = total / 20_000.0;
        assert!((mean - 2_000.0).abs() < 100.0, "mean gap {mean}");
    }

    #[test]
    fn streams_are_well_formed() {
        for scheme in [
            PunctScheme::ConstantPerKey,
            PunctScheme::RangeBatch { batch: 5 },
        ] {
            let s = generate_stream(&small(scheme));
            let report = validate_stream(&s.elements, 0);
            assert!(report.is_well_formed(), "{scheme:?}: {report:?}");
        }
    }

    #[test]
    fn no_punctuations_when_scheme_none() {
        let s = generate_stream(&small(PunctScheme::None));
        assert_eq!(s.punctuations, 0);
        assert_eq!(s.final_window_low, 0);
    }

    #[test]
    fn keys_stay_in_current_window() {
        let cfg = small(PunctScheme::ConstantPerKey);
        let s = generate_stream(&cfg);
        let mut low = 0u64;
        for e in &s.elements {
            match &e.item {
                StreamElement::Punctuation(_) => low += 1,
                StreamElement::Tuple(t) => {
                    let k = t.get(0).unwrap().as_int().unwrap() as u64;
                    assert!(
                        k >= low && k < low + cfg.key_window,
                        "key {k} outside window [{low}, {})",
                        low + cfg.key_window
                    );
                }
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_stream(&small(PunctScheme::ConstantPerKey));
        let b = generate_stream(&small(PunctScheme::ConstantPerKey));
        assert_eq!(a.elements, b.elements);
        let c = generate_stream(&small(PunctScheme::ConstantPerKey).with_seed(7));
        assert_ne!(a.elements, c.elements);
    }

    #[test]
    fn pair_shares_key_space_but_differs() {
        let cfg = small(PunctScheme::ConstantPerKey);
        let (a, b) = generate_pair(&cfg, 10.0, 10.0);
        assert_ne!(a.elements, b.elements);
        // Symmetric rates: windows end near each other.
        let diff = a.final_window_low.abs_diff(b.final_window_low);
        assert!(diff < 60, "windows diverged by {diff}");
    }

    #[test]
    fn asymmetric_pair_windows_diverge() {
        let cfg = small(PunctScheme::ConstantPerKey);
        let (a, b) = generate_pair(&cfg, 10.0, 40.0);
        // A punctuates 4x as often: its window races ahead.
        assert!(
            a.final_window_low > b.final_window_low * 2,
            "a={} b={}",
            a.final_window_low,
            b.final_window_low
        );
    }

    #[test]
    fn range_batches_cover_contiguously() {
        let s = generate_stream(&small(PunctScheme::RangeBatch { batch: 4 }));
        let mut expected_start = 0i64;
        for e in &s.elements {
            if let StreamElement::Punctuation(p) = &e.item {
                match p.pattern(0).unwrap() {
                    Pattern::Range { .. } | Pattern::Constant(_) => {
                        // Each batch starts where the previous ended.
                        assert!(p.pattern(0).unwrap().matches(&Value::Int(expected_start)));
                        expected_start += 4;
                    }
                    other => panic!("unexpected pattern {other:?}"),
                }
            }
        }
    }
}
