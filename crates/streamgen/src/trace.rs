//! Textual record/replay of punctuated streams.
//!
//! One line per element:
//!
//! ```text
//! T <ts_us> (v1, v2, ...)      data tuple (Display form of Tuple)
//! P <ts_us> <pat, pat, ...>    punctuation (the parse grammar)
//! ```
//!
//! Traces make generated workloads inspectable and let experiments be
//! replayed byte-for-byte without rerunning the generator.

use punct_types::parse::parse_punctuation;
use punct_types::{StreamElement, Timestamp, Timestamped, Tuple, TypeError, Value};

/// Serializes a stream to the trace format.
pub fn write_trace(elements: &[Timestamped<StreamElement>]) -> String {
    let mut out = String::new();
    for e in elements {
        match &e.item {
            StreamElement::Tuple(t) => {
                out.push_str(&format!("T {} {}\n", e.ts.as_micros(), t));
            }
            StreamElement::Punctuation(p) => {
                out.push_str(&format!("P {} {}\n", e.ts.as_micros(), p));
            }
        }
    }
    out
}

/// Parses a trace produced by [`write_trace`].
pub fn read_trace(text: &str) -> Result<Vec<Timestamped<StreamElement>>, TypeError> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |msg: &str| TypeError::Parse {
            offset: lineno,
            message: format!("line {}: {msg}", lineno + 1),
        };
        let mut parts = line.splitn(3, ' ');
        let kind = parts.next().ok_or_else(|| err("missing kind"))?;
        let ts: u64 = parts
            .next()
            .ok_or_else(|| err("missing timestamp"))?
            .parse()
            .map_err(|_| err("bad timestamp"))?;
        let payload = parts.next().ok_or_else(|| err("missing payload"))?;
        let item = match kind {
            "T" => StreamElement::Tuple(parse_tuple(payload, lineno)?),
            "P" => StreamElement::Punctuation(parse_punctuation(payload)?),
            _ => return Err(err("kind must be T or P")),
        };
        out.push(Timestamped::new(Timestamp(ts), item));
    }
    Ok(out)
}

/// Parses the `Display` form of a tuple: `(v1, v2, ...)`.
fn parse_tuple(text: &str, lineno: usize) -> Result<Tuple, TypeError> {
    let err = |msg: &str| TypeError::Parse {
        offset: lineno,
        message: format!("line {}: {msg}", lineno + 1),
    };
    let inner = text
        .trim()
        .strip_prefix('(')
        .and_then(|s| s.strip_suffix(')'))
        .ok_or_else(|| err("tuple must be parenthesized"))?;
    let mut values = Vec::new();
    for field in split_top_level(inner) {
        let field = field.trim();
        if field.is_empty() {
            continue;
        }
        values.push(parse_value(field, lineno)?);
    }
    Ok(Tuple::new(values))
}

/// Splits on commas that are not inside string quotes.
fn split_top_level(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth_quote = false;
    let mut start = 0;
    let mut prev_escape = false;
    for (i, c) in s.char_indices() {
        match c {
            '"' if !prev_escape => depth_quote = !depth_quote,
            ',' if !depth_quote => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        prev_escape = c == '\\' && !prev_escape;
    }
    if start <= s.len() {
        parts.push(&s[start..]);
    }
    parts
}

fn parse_value(text: &str, lineno: usize) -> Result<Value, TypeError> {
    let err = |msg: String| TypeError::Parse {
        offset: lineno,
        message: format!("line {}: {msg}", lineno + 1),
    };
    if text == "null" {
        return Ok(Value::Null);
    }
    if text == "true" {
        return Ok(Value::Bool(true));
    }
    if text == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(inner) = text.strip_prefix('"').and_then(|s| s.strip_suffix('"')) {
        return Ok(Value::str(inner.replace("\\\"", "\"").replace("\\\\", "\\")));
    }
    if let Ok(i) = text.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    if let Ok(f) = text.parse::<f64>() {
        return Ok(Value::Float(f));
    }
    Err(err(format!("cannot parse value `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StreamConfig;
    use crate::generator::generate_stream;
    use punct_types::Punctuation;

    #[test]
    fn round_trips_simple_stream() {
        let elements = vec![
            Timestamped::new(Timestamp(10), StreamElement::Tuple(Tuple::of((1i64, "a", 2.5)))),
            Timestamped::new(
                Timestamp(20),
                StreamElement::Punctuation(Punctuation::close_value(3, 0, 1i64)),
            ),
        ];
        let text = write_trace(&elements);
        let back = read_trace(&text).unwrap();
        assert_eq!(back, elements);
    }

    #[test]
    fn round_trips_generated_stream() {
        let cfg = StreamConfig { tuples: 500, seed: 11, ..StreamConfig::default() };
        let s = generate_stream(&cfg);
        let text = write_trace(&s.elements);
        let back = read_trace(&text).unwrap();
        assert_eq!(back, s.elements);
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let text = "# header\n\nT 5 (1)\n";
        let back = read_trace(text).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].ts, Timestamp(5));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(read_trace("X 5 (1)").is_err());
        assert!(read_trace("T abc (1)").is_err());
        assert!(read_trace("T 5").is_err());
        assert!(read_trace("T 5 1,2").is_err()); // not parenthesized
        assert!(read_trace("T 5 (nope)").is_err());
    }

    #[test]
    fn strings_with_commas_round_trip() {
        let elements = vec![Timestamped::new(
            Timestamp(1),
            StreamElement::Tuple(Tuple::of(("a,b", 1i64))),
        )];
        let text = write_trace(&elements);
        let back = read_trace(&text).unwrap();
        assert_eq!(back, elements);
    }

    #[test]
    fn null_and_bool_round_trip() {
        let elements = vec![Timestamped::new(
            Timestamp(1),
            StreamElement::Tuple(Tuple::new(vec![Value::Null, Value::Bool(true)])),
        )];
        let back = read_trace(&write_trace(&elements)).unwrap();
        assert_eq!(back, elements);
    }
}
