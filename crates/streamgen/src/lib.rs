//! # streamgen
//!
//! The synthetic benchmark system of the paper's §4: generates punctuated
//! data streams "by controlling the arrival patterns and rates of the data
//! and punctuations".
//!
//! * [`generator`] — the core sliding-key-window generator: tuples with
//!   Poisson inter-arrival over a drifting window of active join keys;
//!   punctuations with Poisson inter-arrival (measured in tuples) that
//!   close the oldest active key. Generated streams are **well-formed by
//!   construction**: no tuple ever follows a punctuation it matches.
//! * [`config`] — generator configuration ([`StreamConfig`], [`PunctScheme`]).
//! * [`auction`] — the online auction workload of §1.1/§2.1 (Open/Bid
//!   streams with item lifecycle punctuations).
//! * [`sensors`] — a sensor-correlation workload exercising *range*
//!   punctuations.
//! * [`merge`] — k-way timestamp merge of generated streams.
//! * [`trace`] — textual record/replay of generated streams.
//! * [`validate`] — checks stream well-formedness (used by tests and
//!   property tests).

pub mod auction;
pub mod config;
pub mod generator;
pub mod merge;
pub mod sensors;
pub mod trace;
pub mod validate;

pub use config::{PunctScheme, StreamConfig};
pub use generator::{generate_pair, generate_stream, GeneratedStream};
pub use merge::{interleave_sides, merge_streams};
pub use validate::{validate_stream, WellFormedness};
