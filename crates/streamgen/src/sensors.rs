//! A sensor-correlation workload exercising **range** punctuations.
//!
//! Two sensor arrays report readings `(window_id, sensor_id, value)`;
//! correlating the arrays means equi-joining on `window_id`. Readings for
//! a time window keep trickling in until the array's base station seals a
//! *batch* of windows with one range punctuation
//! `<[w_lo, w_hi], *, *>` — the granularity at which field gateways
//! typically flush.

use punct_types::{
    Pattern, Punctuation, Schema, StreamElement, Timestamp, Timestamped, Tuple, Value, ValueType,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stream_sim::ExpSampler;

/// Sensor workload parameters.
#[derive(Debug, Clone)]
pub struct SensorConfig {
    /// Number of time windows to generate.
    pub windows: usize,
    /// Readings per window per array (mean; actual count is randomized).
    pub readings_per_window: usize,
    /// Number of windows sealed per range punctuation.
    pub batch: usize,
    /// Mean gap between readings, µs (Poisson).
    pub reading_mean_gap_us: f64,
    /// How many recent windows are simultaneously "filling".
    pub window_overlap: usize,
    /// Sensors per array.
    pub sensors: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SensorConfig {
    fn default() -> SensorConfig {
        SensorConfig {
            windows: 100,
            readings_per_window: 20,
            batch: 5,
            reading_mean_gap_us: 1_000.0,
            window_overlap: 3,
            sensors: 16,
            seed: 0,
        }
    }
}

/// Schema of a sensor-array stream.
pub fn sensor_schema() -> Schema {
    Schema::of(&[
        ("window_id", ValueType::Int),
        ("sensor_id", ValueType::Int),
        ("value", ValueType::Float),
    ])
}

/// Generates one sensor-array stream.
///
/// Two arrays for a join experiment are generated with different seeds,
/// e.g. `generate_sensors(&cfg.with_seed(1))` and `…with_seed(2)`.
pub fn generate_sensors(config: &SensorConfig) -> Vec<Timestamped<StreamElement>> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let gap = ExpSampler::new(config.reading_mean_gap_us);
    let mut out = Vec::new();
    let mut now = Timestamp::ZERO;
    let overlap = config.window_overlap.max(1);

    // `sealed` = exclusive upper bound of windows already covered by a
    // punctuation. Readings draw from [sealed, sealed + overlap).
    let mut sealed = 0usize;
    let per_batch = config.readings_per_window * config.batch;

    while sealed < config.windows {
        // Emit roughly one batch worth of readings, then seal the batch.
        let n = rng.gen_range(per_batch / 2..per_batch + per_batch / 2 + 1);
        for _ in 0..n {
            now = now.advance(gap.sample_micros(&mut rng));
            let hi = (sealed + overlap).min(config.windows);
            let w = rng.gen_range(sealed..hi.max(sealed + 1)).min(config.windows - 1);
            let tuple = Tuple::new(vec![
                Value::Int(w as i64),
                Value::Int(rng.gen_range(0..config.sensors as i64)),
                Value::Float(rng.gen_range(-40.0..85.0)),
            ]);
            out.push(Timestamped::new(now, StreamElement::Tuple(tuple)));
        }
        let hi = (sealed + config.batch).min(config.windows);
        let pattern = Pattern::int_range(sealed as i64, hi as i64 - 1);
        out.push(Timestamped::new(
            now,
            StreamElement::Punctuation(Punctuation::on_attr(3, 0, pattern)),
        ));
        sealed = hi;
    }
    out
}

impl SensorConfig {
    /// Builder-style: sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_stream;

    #[test]
    fn generates_readings_and_range_punctuations() {
        let s = generate_sensors(&SensorConfig::default());
        let tuples = s.iter().filter(|e| e.item.is_tuple()).count();
        let puncts = s.iter().filter(|e| e.item.is_punctuation()).count();
        assert!(tuples > 500);
        assert_eq!(puncts, 20); // 100 windows / batch 5
        // All punctuations are ranges.
        for e in &s {
            if let StreamElement::Punctuation(p) = &e.item {
                assert!(matches!(p.pattern(0).unwrap(), Pattern::Range { .. }));
            }
        }
    }

    #[test]
    fn well_formed() {
        // Readings never precede their own window's seal — validated
        // against full punctuation semantics.
        let s = generate_sensors(&SensorConfig::default());
        let r = validate_stream(&s, 0);
        assert!(r.is_well_formed(), "violations: {:?}", r.violations);
    }

    #[test]
    fn time_ordered_and_schema_valid() {
        let s = generate_sensors(&SensorConfig::default().with_seed(5));
        assert!(s.windows(2).all(|w| w[0].ts <= w[1].ts));
        let schema = sensor_schema();
        for e in &s {
            if let StreamElement::Tuple(t) = &e.item {
                schema.check(t).unwrap();
            }
        }
    }

    #[test]
    fn covers_all_windows_with_punctuations() {
        let cfg = SensorConfig { windows: 23, batch: 5, ..SensorConfig::default() };
        let s = generate_sensors(&cfg);
        // The union of punctuation ranges covers [0, 23).
        let mut covered = [false; 23];
        for e in &s {
            if let StreamElement::Punctuation(p) = &e.item {
                for (w, c) in covered.iter_mut().enumerate() {
                    if p.pattern(0).unwrap().matches(&Value::Int(w as i64)) {
                        *c = true;
                    }
                }
            }
        }
        assert!(covered.iter().all(|&c| c));
    }
}
