//! K-way timestamp merge of streams.

use punct_types::{StreamElement, Timestamped};
use stream_sim::Side;

/// Merges already-sorted streams into one sorted stream. Ties preserve
/// the input order of the streams (stable).
pub fn merge_streams(
    streams: &[&[Timestamped<StreamElement>]],
) -> Vec<Timestamped<StreamElement>> {
    let total: usize = streams.iter().map(|s| s.len()).sum();
    let mut out = Vec::with_capacity(total);
    let mut cursors = vec![0usize; streams.len()];
    loop {
        let mut best: Option<(usize, punct_types::Timestamp)> = None;
        for (i, s) in streams.iter().enumerate() {
            if let Some(e) = s.get(cursors[i]) {
                if best.is_none_or(|(_, t)| e.ts < t) {
                    best = Some((i, e.ts));
                }
            }
        }
        match best {
            Some((i, _)) => {
                out.push(streams[i][cursors[i]].clone());
                cursors[i] += 1;
            }
            None => break,
        }
    }
    out
}

/// Timestamp-interleaves a left/right stream pair into one arrival
/// order, tagging each element with its side (ties prefer left). This
/// is the canonical feed order for a two-input executor — the in-process
/// reference that networked runs are compared against.
pub fn interleave_sides(
    left: &[Timestamped<StreamElement>],
    right: &[Timestamped<StreamElement>],
) -> Vec<(Side, Timestamped<StreamElement>)> {
    let mut out = Vec::with_capacity(left.len() + right.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < left.len() || j < right.len() {
        let take_left = match (left.get(i), right.get(j)) {
            (Some(l), Some(r)) => l.ts <= r.ts,
            (Some(_), None) => true,
            _ => false,
        };
        if take_left {
            out.push((Side::Left, left[i].clone()));
            i += 1;
        } else {
            out.push((Side::Right, right[j].clone()));
            j += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use punct_types::{Timestamp, Tuple};

    fn tup(ts: u64, k: i64) -> Timestamped<StreamElement> {
        Timestamped::new(Timestamp(ts), StreamElement::Tuple(Tuple::of((k,))))
    }

    fn key(e: &Timestamped<StreamElement>) -> i64 {
        e.item.as_tuple().unwrap().get(0).unwrap().as_int().unwrap()
    }

    #[test]
    fn merges_in_time_order() {
        let a = vec![tup(1, 10), tup(5, 11)];
        let b = vec![tup(2, 20), tup(3, 21), tup(9, 22)];
        let m = merge_streams(&[&a, &b]);
        let keys: Vec<i64> = m.iter().map(key).collect();
        assert_eq!(keys, vec![10, 20, 21, 11, 22]);
    }

    #[test]
    fn ties_prefer_earlier_stream() {
        let a = vec![tup(5, 1)];
        let b = vec![tup(5, 2)];
        let m = merge_streams(&[&a, &b]);
        assert_eq!(key(&m[0]), 1);
        assert_eq!(key(&m[1]), 2);
    }

    #[test]
    fn handles_empty_inputs() {
        let a: Vec<Timestamped<StreamElement>> = vec![];
        let b = vec![tup(1, 1)];
        assert_eq!(merge_streams(&[&a, &b]).len(), 1);
        assert!(merge_streams(&[&a]).is_empty());
        assert!(merge_streams(&[]).is_empty());
    }

    #[test]
    fn interleave_tags_sides_and_orders_by_time() {
        let left = vec![tup(1, 10), tup(5, 11)];
        let right = vec![tup(2, 20), tup(5, 21)];
        let m = interleave_sides(&left, &right);
        let sides: Vec<Side> = m.iter().map(|(s, _)| *s).collect();
        // Tie at ts=5 prefers left.
        assert_eq!(sides, vec![Side::Left, Side::Right, Side::Left, Side::Right]);
        assert!(m.windows(2).all(|w| w[0].1.ts <= w[1].1.ts));
        assert!(interleave_sides(&[], &[]).is_empty());
    }

    #[test]
    fn three_way_merge() {
        let a = vec![tup(3, 1)];
        let b = vec![tup(1, 2)];
        let c = vec![tup(2, 3)];
        let m = merge_streams(&[&a, &b, &c]);
        let keys: Vec<i64> = m.iter().map(key).collect();
        assert_eq!(keys, vec![2, 3, 1]);
    }
}
