//! Generator configuration.

use punct_types::{Schema, ValueType};
use serde::{Deserialize, Serialize};

/// How the generator shapes the punctuations it embeds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PunctScheme {
    /// No punctuations at all (the degenerate stream XJoin assumes; the
    /// paper: "when the punctuation inter-arrival reaches infinity ... the
    /// memory requirement of PJoin becomes the same as that of XJoin").
    None,
    /// One constant-pattern punctuation per event, closing the oldest
    /// active key (the paper's default granularity: "each punctuation
    /// contains a constant pattern").
    ConstantPerKey,
    /// One range-pattern punctuation per `batch` closed keys: emitted every
    /// `batch` punctuation events, covering the batch `[k, k+batch)`.
    RangeBatch {
        /// Number of keys covered per punctuation.
        batch: u64,
    },
}

/// Configuration of one generated stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamConfig {
    /// Mean tuple inter-arrival time in microseconds (Poisson process).
    /// The paper uses 2 ms for all experiments.
    pub tuple_mean_gap_us: f64,
    /// Mean punctuation inter-arrival measured in **tuples per
    /// punctuation** (Poisson), e.g. 40.0 for the paper's Fig. 5. Ignored
    /// when `punct_scheme` is [`PunctScheme::None`].
    pub punct_mean_tuples: f64,
    /// Punctuation shape.
    pub punct_scheme: PunctScheme,
    /// Number of data tuples to generate.
    pub tuples: usize,
    /// Width of the sliding window of active join keys: the number of keys
    /// tuples draw from at any moment. Controls join multiplicity.
    pub key_window: u64,
    /// Number of non-key payload attributes (schema is
    /// `(key: int, payload0: int, …)`).
    pub payload_attrs: usize,
    /// RNG seed (runs are deterministic given the seed).
    pub seed: u64,
}

impl Default for StreamConfig {
    fn default() -> StreamConfig {
        StreamConfig {
            tuple_mean_gap_us: 2_000.0, // the paper's 2 ms
            punct_mean_tuples: 40.0,
            punct_scheme: PunctScheme::ConstantPerKey,
            tuples: 10_000,
            key_window: 10,
            payload_attrs: 1,
            seed: 0,
        }
    }
}

impl StreamConfig {
    /// The schema of generated tuples: an integer join key followed by
    /// `payload_attrs` integer payload attributes.
    pub fn schema(&self) -> Schema {
        let mut fields = vec![("key", ValueType::Int)];
        let names: Vec<String> = (0..self.payload_attrs).map(|i| format!("payload{i}")).collect();
        for n in &names {
            fields.push((n.as_str(), ValueType::Int));
        }
        Schema::of(&fields)
    }

    /// Tuple width (key + payload).
    pub fn width(&self) -> usize {
        1 + self.payload_attrs
    }

    /// Builder-style: sets the punctuation inter-arrival in tuples.
    pub fn with_punct_every(mut self, tuples: f64) -> Self {
        self.punct_mean_tuples = tuples;
        self
    }

    /// Builder-style: sets the number of tuples.
    pub fn with_tuples(mut self, tuples: usize) -> Self {
        self.tuples = tuples;
        self
    }

    /// Builder-style: sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style: disables punctuations.
    pub fn without_punctuations(mut self) -> Self {
        self.punct_scheme = PunctScheme::None;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_setup() {
        let c = StreamConfig::default();
        assert_eq!(c.tuple_mean_gap_us, 2_000.0);
        assert_eq!(c.punct_scheme, PunctScheme::ConstantPerKey);
    }

    #[test]
    fn schema_shape() {
        let c = StreamConfig { payload_attrs: 2, ..StreamConfig::default() };
        let s = c.schema();
        assert_eq!(s.width(), 3);
        assert_eq!(s.field(0).unwrap().name, "key");
        assert_eq!(s.field(2).unwrap().name, "payload1");
        assert_eq!(c.width(), 3);
    }

    #[test]
    fn builders() {
        let c = StreamConfig::default()
            .with_punct_every(10.0)
            .with_tuples(5)
            .with_seed(9)
            .without_punctuations();
        assert_eq!(c.punct_mean_tuples, 10.0);
        assert_eq!(c.tuples, 5);
        assert_eq!(c.seed, 9);
        assert_eq!(c.punct_scheme, PunctScheme::None);
    }
}
