//! The shard worker: one thread running an independent [`PJoin`] over a
//! key subspace, mirroring the single-threaded runtime loop
//! (`pjoin::runtime`): batches are joined as they arrive, idle slots run
//! background work (disk joins, time-based propagation), and finish
//! drains the operator's end-of-stream protocol.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use pjoin::framework::FrameworkProfile;
use pjoin::runtime::RuntimeMetrics;
use pjoin::{PJoin, PJoinConfig, PJoinStats};
use punct_trace::{JoinLatencies, TraceLog};
use punct_types::{StreamElement, Timestamp, Timestamped};
use stream_sim::{BinaryStreamOp, OpOutput, Side, Work};

/// A message from the router to a shard.
#[derive(Debug)]
pub enum ShardMsg {
    /// A batch of elements (possibly empty) plus the router's routing
    /// watermark — the largest ingest timestamp routed *anywhere* when
    /// the batch was flushed. Shards fold it into their progress so the
    /// ordered merge advances even on shards owning no recent keys.
    Batch {
        /// Elements for this shard, in global arrival order.
        elements: Vec<(Side, Timestamped<StreamElement>)>,
        /// Router watermark at flush time.
        watermark: Timestamp,
    },
    /// End of input: run the end-of-stream protocol and shut down.
    Finish,
}

/// An event from a shard to the merger. All shards share one bounded
/// channel; within a shard, events are emitted in order, and a shard's
/// `Outputs` timestamps never exceed a `Progress` it already sent.
#[derive(Debug)]
pub enum ShardEvent {
    /// A batch of join outputs (tuples and shard-propagated
    /// punctuations), stamped with the shard's element clock.
    Outputs(usize, Vec<Timestamped<StreamElement>>),
    /// The shard has processed everything up to this timestamp.
    Progress(usize, Timestamp),
    /// The shard finished its end-of-stream protocol and exited.
    Done(usize),
}

/// Final accounting returned by a shard thread on join.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// The operator's lifetime statistics.
    pub stats: PJoinStats,
    /// Total modeled work performed by this shard's operator — the per-
    /// shard critical-path input for virtual-time scaling analysis.
    pub work: Work,
    /// Final runtime metrics (consumed / state / emitted / latencies).
    pub metrics: RuntimeMetrics,
    /// The operator's latency histograms (empty unless tracing was
    /// enabled; mergeable exactly across shards).
    pub latencies: JoinLatencies,
    /// The framework profile: per-component wall/virtual cost and event
    /// counts (empty unless tracing was enabled).
    pub profile: FrameworkProfile,
    /// The shard's trace events (empty unless tracing was enabled).
    pub trace: TraceLog,
}

/// How often an idle shard polls for background work.
const IDLE_POLL: Duration = Duration::from_millis(1);

/// The shard thread body.
pub(crate) fn shard_loop(
    shard: usize,
    config: PJoinConfig,
    rx: Receiver<ShardMsg>,
    events: Sender<ShardEvent>,
    metrics: Arc<Mutex<RuntimeMetrics>>,
) -> ShardReport {
    let mut join = PJoin::new(config);
    join.tracer_mut().set_lane(shard as u32);
    let mut out = OpOutput::new();
    let mut last_ts = Timestamp::ZERO;
    let mut consumed = 0u64;
    let mut emitted = 0u64;

    let publish = |join: &PJoin, consumed: u64, emitted: u64| {
        let mut m = metrics.lock().expect("metrics lock");
        m.consumed = consumed;
        m.state_tuples = join.state_tuples();
        m.emitted = emitted;
        if join.tracing_enabled() {
            m.latencies = *join.latencies();
        }
    };

    loop {
        match rx.recv_timeout(IDLE_POLL) {
            Ok(ShardMsg::Batch { elements, watermark }) => {
                let mut outputs = Vec::new();
                for (side, e) in elements {
                    last_ts = last_ts.max(e.ts);
                    join.on_element(side, e.item, e.ts, &mut out);
                    consumed += 1;
                    stamp_into(&mut out, last_ts, &mut outputs);
                }
                last_ts = last_ts.max(watermark);
                emitted += outputs.len() as u64;
                if !outputs.is_empty() && events.send(ShardEvent::Outputs(shard, outputs)).is_err()
                {
                    break; // merger gone: executor torn down
                }
                publish(&join, consumed, emitted);
                if events.send(ShardEvent::Progress(shard, last_ts)).is_err() {
                    break;
                }
            }
            Ok(ShardMsg::Finish) => {
                let mut outputs = Vec::new();
                while join.on_end(last_ts, &mut out) {
                    stamp_into(&mut out, last_ts, &mut outputs);
                }
                stamp_into(&mut out, last_ts, &mut outputs);
                emitted += outputs.len() as u64;
                if !outputs.is_empty() {
                    let _ = events.send(ShardEvent::Outputs(shard, outputs));
                }
                publish(&join, consumed, emitted);
                let _ = events.send(ShardEvent::Progress(shard, last_ts));
                break;
            }
            Err(RecvTimeoutError::Timeout) => {
                if join.on_idle(last_ts, &mut out) {
                    let mut outputs = Vec::new();
                    stamp_into(&mut out, last_ts, &mut outputs);
                    emitted += outputs.len() as u64;
                    if !outputs.is_empty()
                        && events.send(ShardEvent::Outputs(shard, outputs)).is_err()
                    {
                        break;
                    }
                    publish(&join, consumed, emitted);
                }
            }
            Err(RecvTimeoutError::Disconnected) => break, // router gone
        }
    }

    let work = join.take_work();
    let latencies = *join.latencies();
    let report = ShardReport {
        shard,
        stats: *join.stats(),
        work,
        metrics: RuntimeMetrics {
            consumed,
            state_tuples: join.state_tuples(),
            emitted,
            latencies,
        },
        latencies,
        profile: *join.profile(),
        trace: join.take_trace(),
    };
    let _ = events.send(ShardEvent::Done(shard));
    report
}

/// Moves the operator's pending outputs into `outputs`, stamped with the
/// shard's element clock (monotone per shard).
fn stamp_into(
    out: &mut OpOutput,
    ts: Timestamp,
    outputs: &mut Vec<Timestamped<StreamElement>>,
) {
    for e in out.drain() {
        outputs.push(Timestamped::new(ts, e));
    }
}
