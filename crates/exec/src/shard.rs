//! The shard worker: one thread running an independent [`PJoin`] over a
//! key subspace, mirroring the single-threaded runtime loop
//! (`pjoin::runtime`): batches are joined as they arrive, idle slots run
//! background work (disk joins, time-based propagation), and finish
//! drains the operator's end-of-stream protocol.

use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use pjoin::framework::FrameworkProfile;
use pjoin::runtime::RuntimeMetrics;
use pjoin::{PJoin, PJoinConfig, PJoinStats};
use punct_trace::{JoinLatencies, TraceLog};
use punct_types::{StreamElement, Timestamp, Timestamped, Tuple};
use stream_sim::{BinaryStreamOp, OpOutput, Side, Work};

use crate::metrics::ShardMetrics;

/// One element routed to a shard, with the routing decision's byproducts
/// carried along so downstream layers never recompute them.
#[derive(Debug, Clone)]
pub struct RoutedElement {
    /// Which input stream the element arrived on.
    pub side: Side,
    /// The element and its ingest timestamp.
    pub element: Timestamped<StreamElement>,
    /// The join hash ([`punct_types::Value::join_hash`]) the router
    /// computed for shard selection — reused verbatim by the shard's
    /// store for bucketing (single-hash invariant). `None` for
    /// punctuations and unjoinable keys.
    pub hash: Option<u64>,
}

/// A message from the router to a shard.
#[derive(Debug)]
pub enum ShardMsg {
    /// A batch of elements (possibly empty) plus the router's routing
    /// watermark — the largest ingest timestamp routed *anywhere* when
    /// the batch was flushed. Shards fold it into their progress so the
    /// ordered merge advances even on shards owning no recent keys.
    Batch {
        /// Elements for this shard, in global arrival order.
        elements: Vec<RoutedElement>,
        /// Router watermark at flush time.
        watermark: Timestamp,
    },
    /// End of input: run the end-of-stream protocol and shut down.
    Finish,
    /// Panic the shard thread. Fault-injection hook for the executor's
    /// failure-propagation tests — never sent by the router.
    #[doc(hidden)]
    Die,
}

/// An event from a shard to the merger. All shards share one bounded
/// channel; within a shard, events are emitted in order, and a shard's
/// `Outputs` timestamps never exceed the progress they carry.
#[derive(Debug)]
pub enum ShardEvent {
    /// A batch of join outputs (tuples and shard-propagated
    /// punctuations), stamped with the shard's element clock, plus the
    /// shard's progress after the batch — carried together so each
    /// processed batch costs the shard exactly one channel send.
    Outputs {
        /// Shard index.
        shard: usize,
        /// The batch of outputs, in shard order.
        outputs: Vec<Timestamped<StreamElement>>,
        /// The shard has processed everything up to this timestamp.
        progress: Timestamp,
    },
    /// The shard has processed everything up to this timestamp (used
    /// when a batch produced no outputs).
    Progress(usize, Timestamp),
    /// The shard finished its end-of-stream protocol and exited.
    Done(usize),
}

/// Final accounting returned by a shard thread on join.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// The operator's lifetime statistics.
    pub stats: PJoinStats,
    /// Total modeled work performed by this shard's operator — the per-
    /// shard critical-path input for virtual-time scaling analysis.
    pub work: Work,
    /// Final runtime metrics (consumed / state / emitted / latencies).
    pub metrics: RuntimeMetrics,
    /// The operator's latency histograms (empty unless tracing was
    /// enabled; mergeable exactly across shards).
    pub latencies: JoinLatencies,
    /// The framework profile: per-component wall/virtual cost and event
    /// counts (empty unless tracing was enabled).
    pub profile: FrameworkProfile,
    /// The shard's trace events (empty unless tracing was enabled).
    pub trace: TraceLog,
}

/// How often an idle shard polls for background work.
const IDLE_POLL: Duration = Duration::from_millis(1);

/// The shard thread body.
pub(crate) fn shard_loop(
    shard: usize,
    config: PJoinConfig,
    rx: Receiver<ShardMsg>,
    events: Sender<ShardEvent>,
    recycle: Sender<Vec<RoutedElement>>,
    metrics: Arc<ShardMetrics>,
) -> ShardReport {
    let mut join = PJoin::new(config);
    join.tracer_mut().set_lane(shard as u32);
    let mut out = OpOutput::new();
    let mut run: Vec<(Tuple, Timestamp, Option<u64>)> = Vec::new();
    let mut last_ts = Timestamp::ZERO;
    let mut consumed = 0u64;
    let mut emitted = 0u64;

    let publish = |join: &PJoin, consumed: u64, emitted: u64| {
        metrics.publish(consumed, join.state_tuples(), emitted);
        if join.tracing_enabled() {
            metrics.publish_latencies(join.latencies());
        }
    };

    loop {
        match rx.recv_timeout(IDLE_POLL) {
            Ok(ShardMsg::Batch { mut elements, watermark }) => {
                let mut outputs = Vec::new();
                consumed += elements.len() as u64;
                // Group same-side punctuation-free runs for the batched
                // probe; punctuations flush the open run, so per-shard
                // processing order is exactly the arrival order.
                let mut run_side = Side::Left;
                for routed in elements.drain(..) {
                    let RoutedElement { side, element: e, hash } = routed;
                    match e.item {
                        StreamElement::Tuple(t) => {
                            if side != run_side && !run.is_empty() {
                                last_ts = flush_run(
                                    &mut join, run_side, &mut run, last_ts, &mut out, &mut outputs,
                                );
                            }
                            run_side = side;
                            run.push((t, e.ts, hash));
                        }
                        punct => {
                            if !run.is_empty() {
                                last_ts = flush_run(
                                    &mut join, run_side, &mut run, last_ts, &mut out, &mut outputs,
                                );
                            }
                            last_ts = last_ts.max(e.ts);
                            join.on_element_prehashed(side, punct, e.ts, None, &mut out);
                            stamp_into(&mut out, last_ts, &mut outputs);
                        }
                    }
                }
                if !run.is_empty() {
                    last_ts =
                        flush_run(&mut join, run_side, &mut run, last_ts, &mut out, &mut outputs);
                }
                // Hand the drained batch buffer back to the router for
                // reuse (best effort: a full recycle channel just drops
                // the buffer and the router allocates a fresh one).
                if elements.capacity() > 0 {
                    let _ = recycle.try_send(elements);
                }
                last_ts = last_ts.max(watermark);
                emitted += outputs.len() as u64;
                publish(&join, consumed, emitted);
                // One send per batch: outputs and progress travel
                // together (an output-less batch still reports progress
                // so the ordered merge keeps advancing).
                let event = if outputs.is_empty() {
                    ShardEvent::Progress(shard, last_ts)
                } else {
                    ShardEvent::Outputs { shard, outputs, progress: last_ts }
                };
                if events.send(event).is_err() {
                    break; // merger gone: executor torn down
                }
            }
            Ok(ShardMsg::Finish) => {
                let mut outputs = Vec::new();
                while join.on_end(last_ts, &mut out) {
                    stamp_into(&mut out, last_ts, &mut outputs);
                }
                stamp_into(&mut out, last_ts, &mut outputs);
                emitted += outputs.len() as u64;
                publish(&join, consumed, emitted);
                let event = if outputs.is_empty() {
                    ShardEvent::Progress(shard, last_ts)
                } else {
                    ShardEvent::Outputs { shard, outputs, progress: last_ts }
                };
                let _ = events.send(event);
                break;
            }
            Ok(ShardMsg::Die) => panic!("shard {shard} killed by test hook"),
            Err(RecvTimeoutError::Timeout) => {
                if join.on_idle(last_ts, &mut out) {
                    let mut outputs = Vec::new();
                    stamp_into(&mut out, last_ts, &mut outputs);
                    emitted += outputs.len() as u64;
                    publish(&join, consumed, emitted);
                    if !outputs.is_empty()
                        && events
                            .send(ShardEvent::Outputs { shard, outputs, progress: last_ts })
                            .is_err()
                    {
                        break;
                    }
                }
            }
            Err(RecvTimeoutError::Disconnected) => break, // router gone
        }
    }

    let work = join.take_work();
    let latencies = *join.latencies();
    let report = ShardReport {
        shard,
        stats: *join.stats(),
        work,
        metrics: RuntimeMetrics {
            consumed,
            state_tuples: join.state_tuples(),
            emitted,
            latencies,
        },
        latencies,
        profile: *join.profile(),
        trace: join.take_trace(),
    };
    let _ = events.send(ShardEvent::Done(shard));
    report
}

/// Joins a buffered same-side run through the batched probe
/// ([`PJoin::on_tuple_batch`]), stamps its outputs with the run's latest
/// timestamp (monotone, coarser than per-element stamping but never past
/// the router watermark), and returns the advanced shard clock.
fn flush_run(
    join: &mut PJoin,
    side: Side,
    run: &mut Vec<(Tuple, Timestamp, Option<u64>)>,
    mut last_ts: Timestamp,
    out: &mut OpOutput,
    outputs: &mut Vec<Timestamped<StreamElement>>,
) -> Timestamp {
    for (_, ts, _) in run.iter() {
        last_ts = last_ts.max(*ts);
    }
    // The batched probe drains `run` (tuples move into the join state),
    // leaving the buffer empty but with its capacity intact for the next
    // run — the shard never reallocates it in steady state.
    join.on_tuple_batch(side, run, out);
    debug_assert!(run.is_empty(), "on_tuple_batch must drain the run");
    stamp_into(out, last_ts, outputs);
    last_ts
}

/// Moves the operator's pending outputs into `outputs`, stamped with the
/// shard's element clock (monotone per shard).
fn stamp_into(
    out: &mut OpOutput,
    ts: Timestamp,
    outputs: &mut Vec<Timestamped<StreamElement>>,
) {
    for e in out.drain() {
        outputs.push(Timestamped::new(ts, e));
    }
}
