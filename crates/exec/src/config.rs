//! Configuration of the sharded executor.

use pjoin::PJoinConfig;

/// Upper bound on the shard count: the punctuation aligner tracks the
/// shards that have propagated a punctuation in a `u64` bitmask.
pub const MAX_SHARDS: usize = 64;

/// Default capacity (in messages) of the caller → router channel.
pub const DEFAULT_INPUT_CAPACITY: usize = 1024;

/// Default capacity (in batches) of each router → shard channel.
pub const DEFAULT_SHARD_CAPACITY: usize = 256;

/// Default capacity (in events) of the shared shard → merger channel.
pub const DEFAULT_EVENT_CAPACITY: usize = 1024;

/// Default capacity (in batches) of the merger → caller channel.
pub const DEFAULT_OUTPUT_CAPACITY: usize = 4096;

/// Default number of elements the router accumulates per shard before
/// flushing a batch downstream (batches also flush whenever the router
/// input runs dry, so idle latency stays at one scheduling quantum).
pub const DEFAULT_ROUTER_BATCH: usize = 128;

/// Configuration of a [`ShardedPJoin`](crate::ShardedPJoin).
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Number of shards (parallel PJoin instances), `1..=MAX_SHARDS`.
    pub shards: usize,
    /// The join configuration instantiated *per shard*. Note that
    /// per-shard thresholds (purge threshold, `memory_max_tuples`) apply
    /// to each shard independently, so aggregate limits scale with the
    /// shard count.
    pub join: PJoinConfig,
    /// Merge shard outputs in timestamp order (watermark-based k-way
    /// merge) instead of arrival order. Requires the caller to push
    /// elements in non-decreasing timestamp order.
    pub ordered_merge: bool,
    /// Caller → router channel capacity, in messages.
    pub input_capacity: usize,
    /// Router → shard channel capacity, in batches (per shard).
    pub shard_capacity: usize,
    /// Shards → merger channel capacity, in events.
    pub event_capacity: usize,
    /// Merger → caller channel capacity, in output batches.
    pub output_capacity: usize,
    /// Elements accumulated per shard before the router flushes a batch.
    pub router_batch: usize,
}

impl ExecConfig {
    /// A configuration with default channel sizing.
    ///
    /// # Panics
    /// If `shards` is zero or exceeds [`MAX_SHARDS`].
    pub fn new(shards: usize, join: PJoinConfig) -> ExecConfig {
        assert!(
            (1..=MAX_SHARDS).contains(&shards),
            "shard count must be in 1..={MAX_SHARDS}, got {shards}"
        );
        ExecConfig {
            shards,
            join,
            ordered_merge: false,
            input_capacity: DEFAULT_INPUT_CAPACITY,
            shard_capacity: DEFAULT_SHARD_CAPACITY,
            event_capacity: DEFAULT_EVENT_CAPACITY,
            output_capacity: DEFAULT_OUTPUT_CAPACITY,
            router_batch: DEFAULT_ROUTER_BATCH,
        }
    }

    /// Enables timestamp-ordered merging of shard outputs.
    pub fn ordered(mut self) -> ExecConfig {
        self.ordered_merge = true;
        self
    }
}

/// Reads the shard count from the `PJOIN_SHARDS` environment variable,
/// if set to a valid value in `1..=MAX_SHARDS`. Used by tests, benches
/// and the CI shard matrix to parameterize runs without recompiling.
pub fn shards_from_env() -> Option<usize> {
    std::env::var("PJOIN_SHARDS")
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()
        .filter(|s| (1..=MAX_SHARDS).contains(s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_bounded() {
        let c = ExecConfig::new(4, PJoinConfig::new(2, 2));
        assert_eq!(c.shards, 4);
        assert!(!c.ordered_merge);
        assert!(c.input_capacity > 0);
        assert!(c.shard_capacity > 0);
        assert!(c.event_capacity > 0);
        assert!(c.output_capacity > 0);
        assert!(c.ordered().ordered_merge);
    }

    #[test]
    #[should_panic(expected = "shard count")]
    fn zero_shards_rejected() {
        ExecConfig::new(0, PJoinConfig::new(2, 2));
    }

    #[test]
    #[should_panic(expected = "shard count")]
    fn too_many_shards_rejected() {
        ExecConfig::new(MAX_SHARDS + 1, PJoinConfig::new(2, 2));
    }
}
