//! Configuration of the sharded executor.

use pjoin::PJoinConfig;
use punct_types::BatchConfig;

/// Upper bound on the shard count: the punctuation aligner tracks the
/// shards that have propagated a punctuation in a `u64` bitmask.
pub const MAX_SHARDS: usize = 64;

/// Upper bound on per-shard probe threads — a sanity rail (64 threads
/// *per shard* already oversubscribes any machine this runs on), not a
/// structural limit like [`MAX_SHARDS`].
pub const MAX_PROBE_THREADS: usize = 64;

/// Default capacity (in messages) of the caller → router channel.
pub const DEFAULT_INPUT_CAPACITY: usize = 1024;

/// Default capacity (in batches) of each router → shard channel.
pub const DEFAULT_SHARD_CAPACITY: usize = 256;

/// Default capacity (in events) of the shared shard → merger channel.
pub const DEFAULT_EVENT_CAPACITY: usize = 1024;

/// Default capacity (in batches) of the merger → caller channel.
pub const DEFAULT_OUTPUT_CAPACITY: usize = 4096;

/// Default number of elements the router accumulates per shard before
/// flushing a batch downstream (batches also flush whenever the router
/// input runs dry, so idle latency stays at one scheduling quantum).
pub const DEFAULT_ROUTER_BATCH: usize = 128;

/// Default bound (in elements) on the caller-side pending buffer that
/// [`push`](crate::ShardedPJoin::push) drains merged outputs into while
/// the input channel is full. Generous — a single-threaded caller that
/// pushes a whole stream before polling still fits typical test/bench
/// workloads — but finite, so a caller that never polls cannot grow the
/// buffer without limit; past the bound, `push` blocks until a
/// concurrent consumer drains outputs (backpressure).
pub const DEFAULT_PENDING_CAPACITY: usize = 1 << 20;

/// Rejected [`ExecConfig`] construction: the shard count is outside
/// `1..=MAX_SHARDS`. The upper bound is structural — [`Route::mask`]
/// (crate::Route::mask) and the punctuation aligner track shards in a
/// `u64` bitmask, so a 65th shard would shift out of the word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecConfigError {
    /// Zero shards requested.
    ZeroShards,
    /// More shards than the `u64` shard bitmask can represent.
    TooManyShards {
        /// The requested shard count.
        got: usize,
        /// The structural maximum ([`MAX_SHARDS`]).
        max: usize,
    },
}

impl std::fmt::Display for ExecConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecConfigError::ZeroShards => {
                write!(f, "shard count must be in 1..={MAX_SHARDS}, got 0")
            }
            ExecConfigError::TooManyShards { got, max } => {
                write!(
                    f,
                    "shard count must be in 1..={max}, got {got} (shard bitmasks are u64)"
                )
            }
        }
    }
}

impl std::error::Error for ExecConfigError {}

/// Configuration of a [`ShardedPJoin`](crate::ShardedPJoin).
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Number of shards (parallel PJoin instances), `1..=MAX_SHARDS`.
    pub shards: usize,
    /// The join configuration instantiated *per shard*. Note that
    /// per-shard thresholds (purge threshold, `memory_max_tuples`) apply
    /// to each shard independently, so aggregate limits scale with the
    /// shard count.
    pub join: PJoinConfig,
    /// Merge shard outputs in timestamp order (watermark-based k-way
    /// merge) instead of arrival order. Requires the caller to push
    /// elements in non-decreasing timestamp order.
    pub ordered_merge: bool,
    /// Caller → router channel capacity, in messages.
    pub input_capacity: usize,
    /// Router → shard channel capacity, in batches (per shard).
    pub shard_capacity: usize,
    /// Shards → merger channel capacity, in events.
    pub event_capacity: usize,
    /// Merger → caller channel capacity, in output batches.
    pub output_capacity: usize,
    /// Elements accumulated per shard before the router flushes a batch.
    pub router_batch: usize,
    /// Bound (in elements) on the caller-side pending output buffer;
    /// see [`DEFAULT_PENDING_CAPACITY`].
    pub pending_capacity: usize,
    /// Batching of the whole data path (router staging, shard-side run
    /// grouping). Defaults to [`BatchConfig::from_env`], so `PJOIN_BATCH`
    /// tunes it without recompiling; `PJOIN_BATCH=1` reproduces
    /// per-element execution exactly.
    pub batch: BatchConfig,
    /// Threads the batched probe phase runs on **per shard** (the shard
    /// thread plus `probe_threads - 1` long-lived workers). Default 1 =
    /// today's serial behavior; `PJOIN_PROBE_THREADS` overrides it at
    /// construction, and [`with_probe_threads`](Self::with_probe_threads)
    /// overrides both. Applied to each shard's
    /// [`PJoinConfig::probe_threads`] at spawn; outputs are
    /// bit-compatible with the serial path at any setting.
    pub probe_threads: usize,
}

impl ExecConfig {
    /// A configuration with default channel sizing, or a typed error when
    /// the shard count is outside `1..=MAX_SHARDS` — the bound guards
    /// `Route::mask`'s `1u64 << shard` from shift overflow.
    pub fn try_new(shards: usize, join: PJoinConfig) -> Result<ExecConfig, ExecConfigError> {
        if shards == 0 {
            return Err(ExecConfigError::ZeroShards);
        }
        if shards > MAX_SHARDS {
            return Err(ExecConfigError::TooManyShards {
                got: shards,
                max: MAX_SHARDS,
            });
        }
        let batch = BatchConfig::from_env();
        // Priority: PJOIN_PROBE_THREADS > the join config's own setting
        // (default 1 = serial).
        let probe_threads = probe_threads_from_env().unwrap_or_else(|| join.probe_threads.max(1));
        Ok(ExecConfig {
            shards,
            join,
            ordered_merge: false,
            input_capacity: DEFAULT_INPUT_CAPACITY,
            shard_capacity: DEFAULT_SHARD_CAPACITY,
            event_capacity: DEFAULT_EVENT_CAPACITY,
            output_capacity: DEFAULT_OUTPUT_CAPACITY,
            router_batch: batch.max_elems,
            pending_capacity: DEFAULT_PENDING_CAPACITY,
            batch,
            probe_threads,
        })
    }

    /// A configuration with the shard count chosen automatically: the
    /// `PJOIN_SHARDS` environment variable when set to a valid value,
    /// otherwise the machine's available parallelism (clamped to
    /// [`MAX_SHARDS`]). See [`default_shards`].
    pub fn auto(join: PJoinConfig) -> ExecConfig {
        ExecConfig::new(default_shards(), join)
    }

    /// A configuration with default channel sizing.
    ///
    /// # Panics
    /// If `shards` is zero or exceeds [`MAX_SHARDS`]; use
    /// [`try_new`](Self::try_new) to handle that as a value.
    pub fn new(shards: usize, join: PJoinConfig) -> ExecConfig {
        match ExecConfig::try_new(shards, join) {
            Ok(config) => config,
            Err(e) => panic!("{e}"),
        }
    }

    /// Enables timestamp-ordered merging of shard outputs.
    pub fn ordered(mut self) -> ExecConfig {
        self.ordered_merge = true;
        self
    }

    /// Overrides the batch config (and the router's flush threshold).
    pub fn with_batch(mut self, batch: BatchConfig) -> ExecConfig {
        self.router_batch = batch.max_elems;
        self.batch = batch;
        self
    }

    /// Overrides the caller-side pending buffer bound (min 1 element).
    pub fn with_pending_capacity(mut self, capacity: usize) -> ExecConfig {
        self.pending_capacity = capacity.max(1);
        self
    }

    /// Overrides the per-shard probe thread count (clamped to
    /// `1..=MAX_PROBE_THREADS`), beating `PJOIN_PROBE_THREADS`.
    pub fn with_probe_threads(mut self, threads: usize) -> ExecConfig {
        self.probe_threads = threads.clamp(1, MAX_PROBE_THREADS);
        self
    }
}

/// The shard count a configuration-less caller gets: `PJOIN_SHARDS`
/// when set to a valid value in `1..=MAX_SHARDS` (explicit operator
/// intent always wins), otherwise the machine's available parallelism
/// clamped to `MAX_SHARDS` — so sharded runs scale with the hardware by
/// default instead of defaulting to a fixed, usually-wrong constant.
pub fn default_shards() -> usize {
    shards_from_env().unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(MAX_SHARDS)
    })
}

/// Reads the shard count from the `PJOIN_SHARDS` environment variable,
/// if set to a valid value in `1..=MAX_SHARDS`. Used by tests, benches
/// and the CI shard matrix to parameterize runs without recompiling.
pub fn shards_from_env() -> Option<usize> {
    std::env::var("PJOIN_SHARDS")
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()
        .filter(|s| (1..=MAX_SHARDS).contains(s))
}

/// Reads the per-shard probe thread count from `PJOIN_PROBE_THREADS`,
/// if set to a valid value in `1..=MAX_PROBE_THREADS`. Used by tests,
/// benches and the CI probe matrix to parameterize runs without
/// recompiling; `1` (and unset) is the serial probe path.
pub fn probe_threads_from_env() -> Option<usize> {
    std::env::var("PJOIN_PROBE_THREADS")
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()
        .filter(|t| (1..=MAX_PROBE_THREADS).contains(t))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_bounded() {
        let c = ExecConfig::new(4, PJoinConfig::new(2, 2));
        assert_eq!(c.shards, 4);
        assert!(!c.ordered_merge);
        assert!(c.input_capacity > 0);
        assert!(c.shard_capacity > 0);
        assert!(c.event_capacity > 0);
        assert!(c.output_capacity > 0);
        assert!(c.ordered().ordered_merge);
    }

    #[test]
    #[should_panic(expected = "shard count")]
    fn zero_shards_rejected() {
        ExecConfig::new(0, PJoinConfig::new(2, 2));
    }

    #[test]
    #[should_panic(expected = "shard count")]
    fn too_many_shards_rejected() {
        ExecConfig::new(MAX_SHARDS + 1, PJoinConfig::new(2, 2));
    }

    #[test]
    fn try_new_returns_typed_errors() {
        // Regression: 65 shards used to reach `1u64 << 64` in
        // `Route::mask` (debug panic / release wrap); now it is rejected
        // at construction with a typed error.
        assert_eq!(
            ExecConfig::try_new(0, PJoinConfig::new(2, 2)).err(),
            Some(ExecConfigError::ZeroShards)
        );
        assert_eq!(
            ExecConfig::try_new(MAX_SHARDS + 1, PJoinConfig::new(2, 2)).err(),
            Some(ExecConfigError::TooManyShards {
                got: MAX_SHARDS + 1,
                max: MAX_SHARDS
            })
        );
        assert!(ExecConfig::try_new(MAX_SHARDS, PJoinConfig::new(2, 2)).is_ok());
        let msg = ExecConfigError::TooManyShards { got: 65, max: 64 }.to_string();
        assert!(
            msg.contains("shard count"),
            "panic-compatible message: {msg}"
        );
    }

    #[test]
    fn default_shards_env_beats_parallelism() {
        // No other test in this binary touches PJOIN_SHARDS, so the
        // process-global environment mutation is safe here.
        std::env::remove_var("PJOIN_SHARDS");
        let hw = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(MAX_SHARDS);
        assert_eq!(
            default_shards(),
            hw,
            "without the env var, hardware parallelism wins"
        );
        assert_eq!(ExecConfig::auto(PJoinConfig::new(2, 2)).shards, hw);

        std::env::set_var("PJOIN_SHARDS", "3");
        assert_eq!(default_shards(), 3, "a valid PJOIN_SHARDS takes precedence");
        assert_eq!(ExecConfig::auto(PJoinConfig::new(2, 2)).shards, 3);

        // Invalid values fall back to hardware parallelism.
        std::env::set_var("PJOIN_SHARDS", "0");
        assert_eq!(default_shards(), hw);
        std::env::set_var("PJOIN_SHARDS", "not-a-number");
        assert_eq!(default_shards(), hw);
        std::env::remove_var("PJOIN_SHARDS");
    }

    #[test]
    fn probe_threads_env_and_builder_precedence() {
        // No other test in this binary touches PJOIN_PROBE_THREADS, so
        // the process-global environment mutation is safe here.
        std::env::remove_var("PJOIN_PROBE_THREADS");
        let c = ExecConfig::new(2, PJoinConfig::new(2, 2));
        assert_eq!(c.probe_threads, 1, "serial probe is the default");

        // The join config's own setting seeds the executor-level knob.
        let seeded = ExecConfig::new(2, PJoinConfig::new(2, 2).with_probe_threads(3));
        assert_eq!(seeded.probe_threads, 3);

        std::env::set_var("PJOIN_PROBE_THREADS", "4");
        assert_eq!(probe_threads_from_env(), Some(4));
        let from_env = ExecConfig::new(2, PJoinConfig::new(2, 2).with_probe_threads(3));
        assert_eq!(from_env.probe_threads, 4, "env beats the join config");
        assert_eq!(
            from_env.with_probe_threads(2).probe_threads,
            2,
            "the builder beats the env"
        );

        // Invalid values are ignored (fall back to the join config).
        std::env::set_var("PJOIN_PROBE_THREADS", "0");
        assert_eq!(probe_threads_from_env(), None);
        std::env::set_var("PJOIN_PROBE_THREADS", "not-a-number");
        assert_eq!(probe_threads_from_env(), None);
        assert_eq!(ExecConfig::new(2, PJoinConfig::new(2, 2)).probe_threads, 1);
        std::env::remove_var("PJOIN_PROBE_THREADS");

        // The builder clamps to the sanity rail.
        let c = ExecConfig::new(2, PJoinConfig::new(2, 2)).with_probe_threads(0);
        assert_eq!(c.probe_threads, 1);
        let c = ExecConfig::new(2, PJoinConfig::new(2, 2)).with_probe_threads(1000);
        assert_eq!(c.probe_threads, MAX_PROBE_THREADS);
    }

    #[test]
    fn pending_capacity_is_bounded_and_overridable() {
        let c = ExecConfig::new(2, PJoinConfig::new(2, 2));
        assert_eq!(c.pending_capacity, DEFAULT_PENDING_CAPACITY);
        assert_eq!(c.with_pending_capacity(0).pending_capacity, 1);
        let small = ExecConfig::new(2, PJoinConfig::new(2, 2)).with_pending_capacity(64);
        assert_eq!(small.pending_capacity, 64);
    }

    #[test]
    fn batch_config_drives_router_batch() {
        let c = ExecConfig::new(2, PJoinConfig::new(2, 2))
            .with_batch(punct_types::BatchConfig::with_elems(7));
        assert_eq!(c.router_batch, 7);
        assert_eq!(c.batch.max_elems, 7);
        let per_elem = ExecConfig::new(2, PJoinConfig::new(2, 2))
            .with_batch(punct_types::BatchConfig::per_element());
        assert_eq!(per_elem.router_batch, 1);
        assert!(per_elem.batch.is_per_element());
    }
}
