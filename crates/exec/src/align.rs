//! Punctuation alignment across shards.
//!
//! Every punctuation ingested by the executor is forwarded to one or
//! more shards (see [`crate::router`]). Each shard that eventually
//! drains all matches for the punctuation propagates it on its own
//! output — so a broadcast punctuation would surface `N` times
//! downstream. The aligner restores the single-stream contract:
//!
//! * At ingest, the router **registers an expectation** — the
//!   output-schema translation of the punctuation plus the set of shards
//!   it was sent to — *before* the punctuation enters any shard channel.
//! * The merger **observes** each shard-propagated punctuation and
//!   resolves it against the oldest matching expectation. Only when
//!   every target shard has propagated the punctuation is it emitted
//!   downstream — exactly once, and only once all shards have purged
//!   state behind it.
//!
//! Registration happens-before observation because both run under the
//! same mutex and the router registers before sending, so the merger can
//! never see a propagation for an unregistered punctuation (such an
//! observation is counted as `unexpected` — an invariant violation).
//!
//! Identical punctuations may be in flight concurrently (a stream is a
//! multiset of elements); expectations therefore form FIFO queues per
//! translated punctuation, and observations resolve against the oldest
//! incomplete entry — preserving multiplicity.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use punct_types::{PunctSeq, Punctuation};

/// Outcome of observing one shard-propagated punctuation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlignOutcome {
    /// All target shards have now propagated: emit downstream.
    Emit,
    /// Some target shards are still pending: suppress.
    Pending,
    /// No registered expectation matches (invariant violation upstream,
    /// e.g. a shard propagated a punctuation it was never sent).
    Unexpected,
}

#[derive(Debug, PartialEq, Eq)]
struct Expectation {
    /// Ingest sequence number, for diagnostics.
    seq: PunctSeq,
    /// Bitmask of target shards still to propagate.
    waiting: u64,
}

/// Tracks in-flight punctuation expectations (one aligner per executor,
/// shared by the router and the merger).
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Aligner {
    pending: HashMap<Punctuation, VecDeque<Expectation>>,
    registered: u64,
    emitted: u64,
    unexpected: u64,
}

impl Aligner {
    /// An empty aligner.
    pub fn new() -> Aligner {
        Aligner::default()
    }

    /// Registers an expectation for `translated` (the punctuation as the
    /// shards will emit it, i.e. translated to the output schema), sent
    /// to the shards in `targets` (a bitmask). Call *before* routing the
    /// punctuation to any shard.
    pub fn expect(&mut self, translated: Punctuation, seq: PunctSeq, targets: u64) {
        debug_assert!(targets != 0, "a punctuation must target at least one shard");
        self.registered += 1;
        self.pending
            .entry(translated)
            .or_default()
            .push_back(Expectation { seq, waiting: targets });
    }

    /// Records that `shard` propagated `punct` (already in the output
    /// schema). Returns whether the punctuation should now be emitted
    /// downstream.
    pub fn observe(&mut self, shard: usize, punct: &Punctuation) -> AlignOutcome {
        self.observe_seq(shard, punct).0
    }

    /// Like [`observe`](Aligner::observe), additionally returning the
    /// ingest sequence number of the expectation the observation
    /// resolved against (`None` for `Unexpected`). Cluster-level
    /// alignment keys its pending-punctuation log by ingest sequence,
    /// so it needs to know *which* instance an emission completed.
    pub fn observe_seq(
        &mut self,
        shard: usize,
        punct: &Punctuation,
    ) -> (AlignOutcome, Option<PunctSeq>) {
        let bit = 1u64 << shard;
        let Some(queue) = self.pending.get_mut(punct) else {
            self.unexpected += 1;
            return (AlignOutcome::Unexpected, None);
        };
        // Oldest entry still waiting on this shard (an entry the shard
        // already answered belongs to an *earlier* instance, so skip it).
        let Some(pos) = queue.iter().position(|e| e.waiting & bit != 0) else {
            self.unexpected += 1;
            return (AlignOutcome::Unexpected, None);
        };
        queue[pos].waiting &= !bit;
        let seq = queue[pos].seq;
        if queue[pos].waiting == 0 {
            queue.remove(pos);
            if queue.is_empty() {
                self.pending.remove(punct);
            }
            self.emitted += 1;
            (AlignOutcome::Emit, Some(seq))
        } else {
            (AlignOutcome::Pending, Some(seq))
        }
    }

    /// Removes every incomplete expectation, returning the translated
    /// punctuations with their ingest sequence numbers, ordered by
    /// sequence. Cluster repartitioning drains the aligner once a
    /// migration barrier proves all in-flight punctuations have either
    /// fully propagated or are parked here, then re-registers the
    /// survivors against the new shard topology.
    pub fn drain_pending(&mut self) -> Vec<(Punctuation, PunctSeq)> {
        let mut drained: Vec<(Punctuation, PunctSeq)> = self
            .pending
            .drain()
            .flat_map(|(p, queue)| queue.into_iter().map(move |e| (p.clone(), e.seq)))
            .collect();
        drained.sort_by_key(|(_, seq)| seq.0);
        drained
    }

    /// Number of expectations not yet fully answered.
    pub fn pending_len(&self) -> usize {
        self.pending.values().map(VecDeque::len).sum()
    }

    /// Summary counters `(registered, emitted, unexpected)`.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.registered, self.emitted, self.unexpected)
    }

    /// Ingest sequence numbers of incomplete expectations (diagnostics
    /// for shutdown reports), in no particular order.
    pub fn pending_seqs(&self) -> Vec<PunctSeq> {
        self.pending.values().flat_map(|q| q.iter().map(|e| e.seq)).collect()
    }

    /// Non-draining snapshot for durable checkpointing: every incomplete
    /// expectation as `(translated punctuation, ingest seq, waiting
    /// mask)`, ordered by ingest sequence — the deterministic encoding
    /// order; FIFO order per punctuation is seq order, so
    /// [`restore`](Aligner::restore) rebuilds identical queues.
    pub fn snapshot_pending(&self) -> Vec<(Punctuation, PunctSeq, u64)> {
        let mut out: Vec<(Punctuation, PunctSeq, u64)> = self
            .pending
            .iter()
            .flat_map(|(p, queue)| queue.iter().map(move |e| (p.clone(), e.seq, e.waiting)))
            .collect();
        out.sort_by_key(|(_, seq, _)| seq.0);
        out
    }

    /// Rebuilds an aligner from a snapshot: pending expectations in
    /// sequence order plus the summary counters. Inverse of
    /// [`snapshot_pending`](Aligner::snapshot_pending) /
    /// [`counters`](Aligner::counters); the result compares equal to the
    /// snapshotted aligner.
    pub fn restore(
        pending: Vec<(Punctuation, PunctSeq, u64)>,
        (registered, emitted, unexpected): (u64, u64, u64),
    ) -> Aligner {
        let mut aligner = Aligner::new();
        for (punct, seq, waiting) in pending {
            aligner.pending.entry(punct).or_default().push_back(Expectation { seq, waiting });
        }
        aligner.registered = registered;
        aligner.emitted = emitted;
        aligner.unexpected = unexpected;
        aligner
    }
}

/// The aligner as the executor threads share it: a mutex-wrapped
/// [`Aligner`] plus an acquisition counter.
///
/// The mutex is the **only** lock shared across router, shards and
/// merger, and the design invariant is that it is taken at *punctuation*
/// granularity — once by the router per ingested punctuation (to
/// register the expectation) and once by the merger per shard
/// propagation (to resolve it). Tuples flow router → shard → merger
/// without ever touching it. The counter makes that auditable: the
/// executor's shutdown path debug-asserts that the total number of
/// acquisitions is bounded by a function of the punctuation counts
/// alone, so a per-tuple lock can never creep in unnoticed, and the
/// multicore bench reports acquisitions-per-element from the same
/// counter.
#[derive(Debug, Default)]
pub struct SharedAligner {
    inner: Mutex<Aligner>,
    acquisitions: AtomicU64,
}

impl SharedAligner {
    /// A fresh aligner with a zeroed acquisition counter.
    pub fn new() -> SharedAligner {
        SharedAligner::default()
    }

    /// Locks the aligner, counting the acquisition. Punctuation-path
    /// callers only — see the type-level invariant.
    pub fn lock(&self) -> MutexGuard<'_, Aligner> {
        self.acquisitions.fetch_add(1, Ordering::Relaxed);
        self.inner.lock().expect("aligner lock")
    }

    /// Total lock acquisitions so far (relaxed; exact once the executor
    /// threads have been joined).
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: i64) -> Punctuation {
        Punctuation::close_value(4, 0, v)
    }

    fn mask(shards: &[usize]) -> u64 {
        shards.iter().fold(0, |m, s| m | (1 << s))
    }

    #[test]
    fn broadcast_emits_after_all_shards() {
        let mut a = Aligner::new();
        a.expect(p(7), PunctSeq(0), mask(&[0, 1, 2]));
        assert_eq!(a.observe(1, &p(7)), AlignOutcome::Pending);
        assert_eq!(a.observe(0, &p(7)), AlignOutcome::Pending);
        assert_eq!(a.observe(2, &p(7)), AlignOutcome::Emit);
        assert_eq!(a.pending_len(), 0);
        assert_eq!(a.counters(), (1, 1, 0));
    }

    #[test]
    fn single_target_emits_immediately() {
        let mut a = Aligner::new();
        a.expect(p(7), PunctSeq(0), mask(&[3]));
        assert_eq!(a.observe(3, &p(7)), AlignOutcome::Emit);
    }

    #[test]
    fn duplicate_instances_keep_multiplicity_in_fifo_order() {
        let mut a = Aligner::new();
        a.expect(p(7), PunctSeq(0), mask(&[0, 1]));
        a.expect(p(7), PunctSeq(1), mask(&[0, 1]));
        // Shard 0 answers both instances before shard 1 answers any.
        assert_eq!(a.observe(0, &p(7)), AlignOutcome::Pending);
        assert_eq!(a.observe(0, &p(7)), AlignOutcome::Pending);
        assert_eq!(a.observe(1, &p(7)), AlignOutcome::Emit);
        assert_eq!(a.observe(1, &p(7)), AlignOutcome::Emit);
        assert_eq!(a.pending_len(), 0);
    }

    #[test]
    fn unexpected_observation_is_flagged() {
        let mut a = Aligner::new();
        assert_eq!(a.observe(0, &p(9)), AlignOutcome::Unexpected);
        a.expect(p(7), PunctSeq(0), mask(&[1]));
        // Wrong shard for the only registered instance.
        assert_eq!(a.observe(0, &p(7)), AlignOutcome::Unexpected);
        assert_eq!(a.counters(), (1, 0, 2));
        assert_eq!(a.pending_seqs(), vec![PunctSeq(0)]);
    }

    #[test]
    fn distinct_punctuations_do_not_interfere() {
        let mut a = Aligner::new();
        a.expect(p(1), PunctSeq(0), mask(&[0]));
        a.expect(p(2), PunctSeq(1), mask(&[0]));
        assert_eq!(a.observe(0, &p(2)), AlignOutcome::Emit);
        assert_eq!(a.pending_len(), 1);
        assert_eq!(a.observe(0, &p(1)), AlignOutcome::Emit);
    }

    #[test]
    fn shared_aligner_counts_acquisitions() {
        let shared = SharedAligner::new();
        assert_eq!(shared.acquisitions(), 0);
        shared.lock().expect(p(7), PunctSeq(0), mask(&[0]));
        assert_eq!(shared.lock().observe(0, &p(7)), AlignOutcome::Emit);
        assert_eq!(shared.acquisitions(), 2);
    }
}
