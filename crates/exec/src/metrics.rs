//! Per-shard metrics published without locking.
//!
//! The single-threaded runtime guards its [`RuntimeMetrics`] with a
//! mutex because one worker owns them end to end. The sharded executor
//! used to do the same — one `Arc<Mutex<RuntimeMetrics>>` per shard,
//! locked by the shard after every batch and by the caller on every
//! [`shard_metrics`](crate::ShardedPJoin::shard_metrics) snapshot. That
//! put a lock acquisition on the data path for something that is pure
//! monitoring. [`ShardMetrics`] replaces it with relaxed atomic counters:
//! the shard stores, the caller loads, and nobody waits. The one
//! remaining lock — the latency histograms, which are too wide for an
//! atomic — is taken only when tracing is enabled, so the default hot
//! path never touches a mutex to publish metrics.
//!
//! Consistency: each counter is individually exact (it is the shard's
//! own monotone tally), but a snapshot may observe counters from
//! *different* publish points — e.g. `consumed` from a newer batch than
//! `emitted`. The pre-existing mutex gave whole-struct snapshots, but
//! nothing consumed that guarantee: every reader either displays the
//! numbers (live progress meters) or reads them after `finish()`, when
//! the shard threads have been joined and the values are final and
//! mutually consistent.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use pjoin::runtime::RuntimeMetrics;
use punct_trace::JoinLatencies;

/// Lock-free live metrics for one shard. The shard thread stores after
/// each batch; readers snapshot at will.
#[derive(Debug, Default)]
pub struct ShardMetrics {
    consumed: AtomicU64,
    state_tuples: AtomicU64,
    emitted: AtomicU64,
    /// Latency histograms are hundreds of buckets wide — published under
    /// a mutex, but **only when tracing is enabled** (the histograms are
    /// empty otherwise), so the untraced hot path stays lock-free.
    latencies: Mutex<JoinLatencies>,
}

impl ShardMetrics {
    /// A zeroed metrics cell.
    pub fn new() -> ShardMetrics {
        ShardMetrics::default()
    }

    /// Publishes the shard's counters (relaxed stores; the values are
    /// monotone tallies, not synchronization).
    pub fn publish(&self, consumed: u64, state_tuples: usize, emitted: u64) {
        self.consumed.store(consumed, Ordering::Relaxed);
        self.state_tuples.store(state_tuples as u64, Ordering::Relaxed);
        self.emitted.store(emitted, Ordering::Relaxed);
    }

    /// Publishes the latency histograms. Called only when tracing is
    /// enabled — the sole lock on the publish path, and deliberately off
    /// the default configuration.
    pub fn publish_latencies(&self, latencies: &JoinLatencies) {
        *self.latencies.lock().expect("latencies lock") = *latencies;
    }

    /// A point-in-time copy in the runtime's metrics shape.
    pub fn snapshot(&self) -> RuntimeMetrics {
        RuntimeMetrics {
            consumed: self.consumed.load(Ordering::Relaxed),
            state_tuples: self.state_tuples.load(Ordering::Relaxed) as usize,
            emitted: self.emitted.load(Ordering::Relaxed),
            latencies: *self.latencies.lock().expect("latencies lock"),
        }
    }

    /// A point-in-time copy in the telemetry plane's wire shape, tagged
    /// with the shard's global index.
    pub fn telemetry_snapshot(&self, shard: u32) -> punct_trace::ShardSnapshot {
        punct_trace::ShardSnapshot {
            shard,
            consumed: self.consumed.load(Ordering::Relaxed),
            state_tuples: self.state_tuples.load(Ordering::Relaxed),
            emitted: self.emitted.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_then_snapshot_round_trips() {
        let m = ShardMetrics::new();
        assert_eq!(m.snapshot().consumed, 0);
        m.publish(10, 7, 3);
        let snap = m.snapshot();
        assert_eq!(snap.consumed, 10);
        assert_eq!(snap.state_tuples, 7);
        assert_eq!(snap.emitted, 3);
    }

    #[test]
    fn telemetry_snapshot_mirrors_counters() {
        let m = ShardMetrics::new();
        m.publish(10, 7, 3);
        let snap = m.telemetry_snapshot(5);
        assert_eq!(snap.shard, 5);
        assert_eq!(snap.consumed, 10);
        assert_eq!(snap.state_tuples, 7);
        assert_eq!(snap.emitted, 3);
    }

    #[test]
    fn latencies_publish_is_separate() {
        let m = ShardMetrics::new();
        let mut lat = JoinLatencies::new();
        lat.tuple_emit.record(5);
        m.publish_latencies(&lat);
        assert_eq!(m.snapshot().latencies, lat);
    }
}
