//! The sharded executor: public handle over the router, shard workers
//! and merger threads.
//!
//! # Topology
//!
//! ```text
//! caller ──bounded──▶ router ──bounded×N──▶ shard₀..N₋₁ ──shared bounded──▶ merger ──bounded──▶ caller
//!                       │                                                     ▲
//!                       └────────── aligner (shared, mutex) ──────────────────┘
//! ```
//!
//! Every channel is bounded, so state cannot grow without limit inside
//! the pipeline — backpressure propagates from the caller's consumption
//! rate all the way to [`ShardedPJoin::push`]. The *one* unbounded
//! buffer is the caller-side `pending` vector that `push` drains merged
//! outputs into when the input channel is full: a single-threaded caller
//! that pushes an entire stream before polling must park results
//! somewhere, and parking them caller-side (where the caller can drain
//! them at will via [`poll_outputs`]) is the only deadlock-free option.
//! Callers that poll concurrently keep it empty.
//!
//! [`poll_outputs`]: ShardedPJoin::poll_outputs

use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use pjoin::framework::FrameworkProfile;
use pjoin::runtime::RuntimeMetrics;
use pjoin::PJoinStats;
use punct_trace::{JoinLatencies, TraceLog};
use punct_types::{StreamElement, Timestamped};
use stream_sim::{Side, Work};

use crate::align::SharedAligner;
use crate::config::ExecConfig;
use crate::error::ExecError;
use crate::merge::{merge_loop, MergeReport};
use crate::metrics::ShardMetrics;
use crate::router::{router_loop, RouterCounters, RouterMsg, RouterReport};
use crate::shard::{shard_loop, RoutedElement, ShardEvent, ShardMsg, ShardReport};

/// The first lane failure, shared by the lane threads (writers) and the
/// executor handle (reader). The flag makes the no-failure fast path a
/// single relaxed-ish atomic load; the mutex is touched only to record
/// or read an actual error.
#[derive(Debug, Default)]
struct FailureSlot {
    failed: std::sync::atomic::AtomicBool,
    error: Mutex<Option<ExecError>>,
}

impl FailureSlot {
    /// Records the first failure (later ones are dropped — the first
    /// cause is the one worth reporting).
    fn record(&self, err: ExecError) {
        let mut slot = self.error.lock().expect("failure slot");
        if slot.is_none() {
            *slot = Some(err);
        }
        self.failed.store(true, Ordering::Release);
    }

    fn get(&self) -> Option<ExecError> {
        if !self.failed.load(Ordering::Acquire) {
            return None;
        }
        self.error.lock().expect("failure slot").clone()
    }
}

/// Stringifies a caught panic payload (the two shapes `panic!` produces,
/// with a fallback for exotic payloads).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic payload of unknown type".to_string()
    }
}

/// Final accounting for a sharded run.
#[derive(Debug, Clone)]
pub struct ExecStats {
    /// Per-shard reports, indexed by shard.
    pub shards: Vec<ShardReport>,
    /// Router counters.
    pub router: RouterReport,
    /// Merger counters (including alignment diagnostics).
    pub merge: MergeReport,
    /// The router thread's trace (empty unless tracing was enabled).
    pub router_trace: TraceLog,
    /// The merger thread's trace (empty unless tracing was enabled).
    pub merge_trace: TraceLog,
    /// Lifetime acquisitions of the shared aligner mutex — the only
    /// lock on the data path, taken at punctuation granularity only.
    /// Benches divide this by the element count to report lock traffic.
    pub aligner_acquisitions: u64,
    /// The first lane failure, if any. When set, `shards` omits the
    /// report of any shard that died and the output stream is
    /// incomplete — treat the run as failed.
    pub failure: Option<ExecError>,
}

impl ExecStats {
    /// Join statistics aggregated over all shards.
    pub fn total_stats(&self) -> PJoinStats {
        self.shards.iter().map(|s| s.stats).sum()
    }

    /// Runtime metrics aggregated over all shards.
    pub fn total_metrics(&self) -> RuntimeMetrics {
        self.shards.iter().map(|s| s.metrics).sum()
    }

    /// Total modeled work over all shards.
    pub fn total_work(&self) -> Work {
        self.shards.iter().fold(Work::ZERO, |acc, s| acc + s.work)
    }

    /// The virtual-time critical path under `cost`: the most heavily
    /// loaded shard's modeled nanoseconds. With perfect balance this
    /// approaches `total / shards` — the quantity the shard-scaling
    /// bench reports.
    pub fn critical_path_nanos(&self, cost: &stream_sim::CostModel) -> u64 {
        self.shards
            .iter()
            .map(|s| cost.nanos(&s.work))
            .max()
            .unwrap_or(0)
    }

    /// Latency histograms merged over all shards. Merging is exact
    /// (element-wise bucket addition), so for a workload whose keys and
    /// closing punctuations co-locate this equals the single-threaded
    /// operator's histograms regardless of shard count.
    pub fn total_latencies(&self) -> JoinLatencies {
        let mut total = JoinLatencies::new();
        for s in &self.shards {
            total.merge(&s.latencies);
        }
        total
    }

    /// Framework profiles merged over all shards.
    pub fn total_profile(&self) -> FrameworkProfile {
        let mut total = FrameworkProfile::new();
        for s in &self.shards {
            total.merge(&s.profile);
        }
        total
    }

    /// Every lane's trace events (shards, router, merger) merged into
    /// one log and sorted by wall time.
    pub fn all_trace_events(&self) -> TraceLog {
        let mut log = TraceLog::default();
        for s in &self.shards {
            log.merge(s.trace.clone());
        }
        log.merge(self.router_trace.clone());
        log.merge(self.merge_trace.clone());
        log.sort_by_wall();
        log
    }

    /// The run's merged trace in JSON-lines form (one event per line).
    pub fn trace_jsonl(&self) -> String {
        punct_trace::jsonl(&self.all_trace_events().events)
    }

    /// The run's merged trace in Chrome `trace_event` form — load it in
    /// `chrome://tracing` or Perfetto; each shard / router / merger is
    /// its own named thread row.
    pub fn chrome_trace(&self) -> String {
        punct_trace::chrome_trace(&self.all_trace_events().events)
    }
}

/// An N-shard parallel PJoin.
///
/// Tuples are hash-partitioned by join key onto `N` independent
/// [`PJoin`](pjoin::PJoin) instances, each on its own thread;
/// punctuations fan out to the shards they affect and are re-aligned on
/// the way out so the merged stream carries each exactly once. See the
/// crate docs for the full architecture.
pub struct ShardedPJoin {
    input: Sender<RouterMsg>,
    /// The merged output stream. Guarded by a mutex so the handle is
    /// `Sync` — the backpressure story requires a consumer thread to
    /// drain outputs concurrently with a producer thread pushing (see
    /// [`ExecConfig::pending_capacity`]). The lock is per merged
    /// *batch*, never per element, so it stays off the tuple hot path.
    output: Mutex<Receiver<Vec<Timestamped<StreamElement>>>>,
    /// Outputs drained by `push` while the input channel was full,
    /// bounded at `pending_capacity` elements (see [`ExecConfig`]).
    pending: Mutex<Vec<Timestamped<StreamElement>>>,
    pending_capacity: usize,
    shard_metrics: Vec<Arc<ShardMetrics>>,
    aligner: Arc<SharedAligner>,
    router_counters: Arc<RouterCounters>,
    failure: Arc<FailureSlot>,
    /// Direct senders to the shard channels, kept only for the
    /// fault-injection kill hook; the data path goes through the router.
    shard_txs: Vec<Sender<ShardMsg>>,
    router: Option<JoinHandle<TraceLog>>,
    workers: Vec<JoinHandle<Option<ShardReport>>>,
    merger: Option<JoinHandle<(MergeReport, TraceLog)>>,
    shards: usize,
}

impl ShardedPJoin {
    /// Spawns the router, `config.shards` shard workers and the merger.
    pub fn spawn(config: ExecConfig) -> ShardedPJoin {
        // Pin the wall-clock trace epoch before any lane thread starts,
        // so every lane stamps against a base that predates its first
        // event (harmless when tracing is off).
        punct_trace::wall_epoch();
        let shards = config.shards;
        let aligner = Arc::new(SharedAligner::new());
        let router_counters = Arc::new(RouterCounters::default());
        let failure = Arc::new(FailureSlot::default());

        let (input_tx, input_rx) = bounded::<RouterMsg>(config.input_capacity);
        let (event_tx, event_rx) = bounded(config.event_capacity);
        let (output_tx, output_rx) = bounded(config.output_capacity);
        // Drained batch buffers flow back from shards to the router here,
        // so the steady-state data path cycles a fixed pool of
        // `Vec<RoutedElement>` allocations. Sized to a few buffers per
        // shard; overflow just drops the buffer (the router reallocates).
        let (recycle_tx, recycle_rx) = bounded::<Vec<RoutedElement>>(shards * 4);

        let mut shard_txs = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        let mut shard_metrics = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (tx, rx) = bounded(config.shard_capacity);
            shard_txs.push(tx);
            let metrics = Arc::new(ShardMetrics::new());
            shard_metrics.push(Arc::clone(&metrics));
            // Each shard builds its own probe pool from the executor-level
            // setting; the router's clone below keeps the default (it never
            // probes).
            let join_config = config.join.clone().with_probe_threads(config.probe_threads);
            let events = event_tx.clone();
            let recycle = recycle_tx.clone();
            let slot = Arc::clone(&failure);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("pjoin-shard-{shard}"))
                    .spawn(move || {
                        let done_events = events.clone();
                        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            shard_loop(shard, join_config, rx, events, recycle, metrics)
                        }));
                        match result {
                            Ok(report) => Some(report),
                            Err(payload) => {
                                // Publish the failure promptly, then let
                                // the merger finish its accounting — a
                                // dead shard still reports Done so
                                // `finish` cannot hang waiting on it.
                                slot.record(ExecError::ShardPanicked {
                                    shard,
                                    message: panic_message(payload.as_ref()),
                                });
                                let _ = done_events.send(ShardEvent::Done(shard));
                                None
                            }
                        }
                    })
                    .expect("spawn shard thread"),
            );
        }
        drop(event_tx); // merger exits when router + shards are gone
        drop(recycle_tx); // router's recycle pool drains once shards exit

        let kill_txs = shard_txs.clone();
        let router = {
            let join_config = config.join.clone();
            let aligner = Arc::clone(&aligner);
            let counters = Arc::clone(&router_counters);
            let slot = Arc::clone(&failure);
            let batch = config.router_batch.max(1);
            let ordered = config.ordered_merge;
            std::thread::Builder::new()
                .name("pjoin-router".into())
                .spawn(move || {
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        router_loop(
                            join_config,
                            shards,
                            batch,
                            ordered,
                            input_rx,
                            shard_txs,
                            recycle_rx,
                            aligner,
                            counters,
                        )
                    }));
                    result.unwrap_or_else(|_| {
                        slot.record(ExecError::RouterExited);
                        TraceLog::default()
                    })
                })
                .expect("spawn router thread")
        };

        let aligner_handle = Arc::clone(&aligner);
        let merger = {
            let aligner = Arc::clone(&aligner);
            let ordered = config.ordered_merge;
            let trace = config.join.trace;
            std::thread::Builder::new()
                .name("pjoin-merge".into())
                .spawn(move || merge_loop(shards, ordered, trace, event_rx, output_tx, aligner))
                .expect("spawn merger thread")
        };

        ShardedPJoin {
            input: input_tx,
            output: Mutex::new(output_rx),
            pending: Mutex::new(Vec::new()),
            pending_capacity: config.pending_capacity.max(1),
            shard_metrics,
            aligner: aligner_handle,
            router_counters,
            failure,
            shard_txs: kill_txs,
            router: Some(router),
            workers,
            merger: Some(merger),
            shards,
        }
    }

    /// The first lane failure, if any — available the moment a shard
    /// dies, not only at `finish`. A non-`None` result means output is
    /// incomplete and further feeding is pointless.
    pub fn failure(&self) -> Option<ExecError> {
        self.failure.get()
    }

    /// Fault-injection hook: panic a shard thread. Exercises the same
    /// failure path a real shard panic takes (operator bug, allocation
    /// failure); used by the failure-propagation regression tests and
    /// the cluster equivalence gate.
    #[doc(hidden)]
    pub fn debug_kill_shard(&self, shard: usize) {
        let _ = self.shard_txs[shard].send(ShardMsg::Die);
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Feeds one element. Never deadlocks: if the input channel is full,
    /// merged outputs are drained into the pending buffer (see crate
    /// docs) until space frees up.
    ///
    /// # Panics
    ///
    /// Panics with the lane's [`ExecError`] if the pipeline has failed
    /// (e.g. a shard thread died) — loud beats silently feeding a
    /// pipeline that drops the dead shard's keys. Fallible callers use
    /// [`try_push`](ShardedPJoin::try_push).
    pub fn push(&self, side: Side, element: Timestamped<StreamElement>) {
        self.feed_or_panic(RouterMsg::One(side, element));
    }

    /// Feeds a batch of elements in arrival order. Panics on pipeline
    /// failure, like [`push`](ShardedPJoin::push).
    pub fn push_batch(&self, batch: Vec<(Side, Timestamped<StreamElement>)>) {
        if !batch.is_empty() {
            self.feed_or_panic(RouterMsg::Batch(batch));
        }
    }

    /// Fallible [`push`](ShardedPJoin::push): returns the lane failure
    /// instead of panicking, as soon as one is recorded — a dead shard
    /// surfaces on the *next* push, not at `finish`.
    pub fn try_push(
        &self,
        side: Side,
        element: Timestamped<StreamElement>,
    ) -> Result<(), ExecError> {
        self.feed(RouterMsg::One(side, element))
    }

    /// Fallible same-side batch push (see
    /// [`push_side_batch`](ShardedPJoin::push_side_batch)).
    pub fn try_push_side_batch(
        &self,
        side: Side,
        batch: Vec<Timestamped<StreamElement>>,
    ) -> Result<(), ExecError> {
        if batch.is_empty() {
            return self.failure.get().map_or(Ok(()), Err);
        }
        self.feed(RouterMsg::SideBatch(side, batch))
    }

    fn feed_or_panic(&self, msg: RouterMsg) {
        if let Err(err) = self.feed(msg) {
            panic!("sharded executor failed: {err}");
        }
    }

    fn feed(&self, msg: RouterMsg) -> Result<(), ExecError> {
        let mut msg = Some(msg);
        while let Some(m) = msg.take() {
            if let Some(err) = self.failure.get() {
                return Err(err);
            }
            match self.input.try_send(m) {
                Ok(()) => {}
                Err(TrySendError::Full(m)) => {
                    msg = Some(m);
                    if self.pending.lock().expect("pending lock").len() < self.pending_capacity {
                        // Make room by consuming pipeline output: block
                        // briefly for one merged batch.
                        let batch = self
                            .output
                            .lock()
                            .expect("output lock")
                            .recv_timeout(std::time::Duration::from_millis(1));
                        if let Ok(batch) = batch {
                            self.pending.lock().expect("pending lock").extend(batch);
                        }
                    } else {
                        // Pending buffer at capacity: stop absorbing
                        // output and apply backpressure to the caller
                        // instead, waiting for a concurrent consumer
                        // (`poll_outputs` / `recv_outputs`) to drain.
                        std::thread::sleep(std::time::Duration::from_micros(200));
                    }
                }
                Err(TrySendError::Disconnected(_)) => {
                    return Err(self.failure.get().unwrap_or(ExecError::RouterExited));
                }
            }
        }
        Ok(())
    }

    /// Elements currently parked in the caller-side pending buffer
    /// (bounded by [`ExecConfig::pending_capacity`]).
    pub fn pending_len(&self) -> usize {
        self.pending.lock().expect("pending lock").len()
    }

    /// Feeds a batch of same-side elements in arrival order without
    /// re-tagging each element with its side — the zero-copy entry the
    /// networked pipeline uses to hand a decoded `DataBatch` frame's
    /// elements straight to the router.
    pub fn push_side_batch(&self, side: Side, batch: Vec<Timestamped<StreamElement>>) {
        if !batch.is_empty() {
            self.feed_or_panic(RouterMsg::SideBatch(side, batch));
        }
    }

    /// Total acquisitions of the shared aligner mutex so far — the only
    /// lock on the router → shard → merger data path, taken only for
    /// punctuations. Exposed so benches can report lock traffic per
    /// element (zero for tuple-only workloads).
    pub fn aligner_acquisitions(&self) -> u64 {
        self.aligner.acquisitions()
    }

    /// Drains everything the executor has produced so far, in merge
    /// order (non-blocking).
    pub fn poll_outputs(&self) -> Vec<Timestamped<StreamElement>> {
        let mut drained = std::mem::take(&mut *self.pending.lock().expect("pending lock"));
        let output = self.output.lock().expect("output lock");
        while let Ok(batch) = output.try_recv() {
            drained.extend(batch);
        }
        drained
    }

    /// Like [`poll_outputs`](ShardedPJoin::poll_outputs), but blocks up
    /// to `timeout` for the first batch when nothing is available yet.
    /// Used by pull-style consumers (the networked sink publisher) to
    /// avoid spinning on an empty pipeline.
    pub fn recv_outputs(&self, timeout: std::time::Duration) -> Vec<Timestamped<StreamElement>> {
        let mut drained = self.poll_outputs();
        if drained.is_empty() {
            let output = self.output.lock().expect("output lock");
            if let Ok(batch) = output.recv_timeout(timeout) {
                drained.extend(batch);
                // Whatever else is already queued comes along for free.
                while let Ok(batch) = output.try_recv() {
                    drained.extend(batch);
                }
            }
        }
        drained
    }

    /// A live snapshot of each shard's runtime metrics, indexed by
    /// shard. Lock-free on the shard side: the values are relaxed atomic
    /// loads of each shard's published counters.
    pub fn shard_metrics(&self) -> Vec<RuntimeMetrics> {
        self.shard_metrics.iter().map(|m| m.snapshot()).collect()
    }

    /// Live metrics aggregated over all shards.
    pub fn metrics(&self) -> RuntimeMetrics {
        self.shard_metrics().into_iter().sum()
    }

    /// Tuples routed so far (live router counter).
    pub fn tuples_routed(&self) -> u64 {
        self.router_counters.tuples.load(Ordering::Relaxed)
    }

    /// Signals end of input, drains every channel and joins all threads.
    /// Returns the remaining outputs (after those already polled) and
    /// the final accounting. Deadlock-free: the finish signal is fed
    /// with the same drain-while-feeding loop as `push`, and the output
    /// channel is drained until the merger hangs up.
    pub fn finish(mut self) -> (Vec<Timestamped<StreamElement>>, ExecStats) {
        // Failure here is fine: dropping the input sender below makes
        // the router flush and finish the shards anyway.
        let _ = self.feed(RouterMsg::Finish);
        // Dropping the sender lets the router exit even if the finish
        // message were lost; it is also what terminates `recv` below
        // once the merger finishes and drops its output sender.
        drop(std::mem::replace(&mut self.input, {
            // Replace with a dummy closed sender so Drop stays trivial.
            let (tx, _rx) = bounded(1);
            tx
        }));

        let mut outputs = std::mem::take(&mut *self.pending.lock().expect("pending lock"));
        {
            let output = self.output.lock().expect("output lock");
            while let Ok(batch) = output.recv() {
                outputs.extend(batch);
            }
        }

        let router = self.router.take().expect("router handle");
        let router_trace = router.join().expect("router thread panicked");
        // A shard that panicked returns None (its panic was caught and
        // recorded in the failure slot); its report is simply absent.
        let mut shard_reports: Vec<ShardReport> = std::mem::take(&mut self.workers)
            .into_iter()
            .filter_map(|w| w.join().expect("shard wrapper panicked"))
            .collect();
        shard_reports.sort_by_key(|r| r.shard);
        let merger = self.merger.take().expect("merger handle");
        let (merge, merge_trace) = merger.join().expect("merger thread panicked");

        let stats = ExecStats {
            shards: shard_reports,
            router: self.router_counters.report(),
            merge,
            router_trace,
            merge_trace,
            aligner_acquisitions: self.aligner.acquisitions(),
            failure: self.failure.get(),
        };
        // Audit the lock-light invariant: the aligner mutex is the only
        // lock shared across the pipeline, and it must be acquired at
        // punctuation granularity only — once by the router per ingested
        // punctuation, at most `shards` times by the merger per
        // punctuation (one observation per target shard), plus one final
        // shutdown audit by the merger. The bound is independent of the
        // tuple count, so any per-tuple locking regression trips it.
        if cfg!(debug_assertions) {
            let puncts = stats.router.puncts_targeted
                + stats.router.puncts_multicast
                + stats.router.puncts_broadcast;
            let bound = puncts * (self.shards as u64 + 1) + 1;
            let acquisitions = stats.aligner_acquisitions;
            debug_assert!(
                acquisitions <= bound,
                "aligner mutex acquired {acquisitions} times for {puncts} punctuations on \
                 {} shards (bound {bound}): the tuple hot path must stay lock-free",
                self.shards,
            );
        }
        (outputs, stats)
    }
}

/// The handle is shared across producer and consumer threads — the
/// bounded-pending backpressure contract depends on it (a producer at
/// the pending cap waits for a concurrent `poll_outputs`). Keep that
/// statically true.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ShardedPJoin>();
};

impl Drop for ShardedPJoin {
    fn drop(&mut self) {
        // Finish was not called (or panicked): unblock the pipeline so
        // the threads can exit, then detach them. Closing the input side
        // cascades: router exits → shard channels close → shards exit →
        // event channel closes → merger exits.
        if self.router.is_some() {
            let (closed_tx, _rx) = bounded(1);
            let _ = std::mem::replace(&mut self.input, closed_tx);
            // Drain any outputs so the merger is never wedged on a full
            // output channel while we detach.
            if let Ok(output) = self.output.lock() {
                while let Ok(_batch) = output.try_recv() {}
            }
        }
    }
}
