//! The sharded executor: public handle over the router, shard workers
//! and merger threads.
//!
//! # Topology
//!
//! ```text
//! caller ──bounded──▶ router ──bounded×N──▶ shard₀..N₋₁ ──shared bounded──▶ merger ──bounded──▶ caller
//!                       │                                                     ▲
//!                       └────────── aligner (shared, mutex) ──────────────────┘
//! ```
//!
//! Every channel is bounded, so state cannot grow without limit inside
//! the pipeline — backpressure propagates from the caller's consumption
//! rate all the way to [`ShardedPJoin::push`]. The *one* unbounded
//! buffer is the caller-side `pending` vector that `push` drains merged
//! outputs into when the input channel is full: a single-threaded caller
//! that pushes an entire stream before polling must park results
//! somewhere, and parking them caller-side (where the caller can drain
//! them at will via [`poll_outputs`]) is the only deadlock-free option.
//! Callers that poll concurrently keep it empty.
//!
//! [`poll_outputs`]: ShardedPJoin::poll_outputs

use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use pjoin::framework::FrameworkProfile;
use pjoin::runtime::RuntimeMetrics;
use pjoin::PJoinStats;
use punct_trace::{JoinLatencies, TraceLog};
use punct_types::{StreamElement, Timestamped};
use stream_sim::{Side, Work};

use crate::align::Aligner;
use crate::config::ExecConfig;
use crate::merge::{merge_loop, MergeReport};
use crate::router::{router_loop, RouterCounters, RouterMsg, RouterReport};
use crate::shard::{shard_loop, ShardReport};

/// Final accounting for a sharded run.
#[derive(Debug, Clone)]
pub struct ExecStats {
    /// Per-shard reports, indexed by shard.
    pub shards: Vec<ShardReport>,
    /// Router counters.
    pub router: RouterReport,
    /// Merger counters (including alignment diagnostics).
    pub merge: MergeReport,
    /// The router thread's trace (empty unless tracing was enabled).
    pub router_trace: TraceLog,
    /// The merger thread's trace (empty unless tracing was enabled).
    pub merge_trace: TraceLog,
}

impl ExecStats {
    /// Join statistics aggregated over all shards.
    pub fn total_stats(&self) -> PJoinStats {
        self.shards.iter().map(|s| s.stats).sum()
    }

    /// Runtime metrics aggregated over all shards.
    pub fn total_metrics(&self) -> RuntimeMetrics {
        self.shards.iter().map(|s| s.metrics).sum()
    }

    /// Total modeled work over all shards.
    pub fn total_work(&self) -> Work {
        self.shards.iter().fold(Work::ZERO, |acc, s| acc + s.work)
    }

    /// The virtual-time critical path under `cost`: the most heavily
    /// loaded shard's modeled nanoseconds. With perfect balance this
    /// approaches `total / shards` — the quantity the shard-scaling
    /// bench reports.
    pub fn critical_path_nanos(&self, cost: &stream_sim::CostModel) -> u64 {
        self.shards.iter().map(|s| cost.nanos(&s.work)).max().unwrap_or(0)
    }

    /// Latency histograms merged over all shards. Merging is exact
    /// (element-wise bucket addition), so for a workload whose keys and
    /// closing punctuations co-locate this equals the single-threaded
    /// operator's histograms regardless of shard count.
    pub fn total_latencies(&self) -> JoinLatencies {
        let mut total = JoinLatencies::new();
        for s in &self.shards {
            total.merge(&s.latencies);
        }
        total
    }

    /// Framework profiles merged over all shards.
    pub fn total_profile(&self) -> FrameworkProfile {
        let mut total = FrameworkProfile::new();
        for s in &self.shards {
            total.merge(&s.profile);
        }
        total
    }

    /// Every lane's trace events (shards, router, merger) merged into
    /// one log and sorted by wall time.
    pub fn all_trace_events(&self) -> TraceLog {
        let mut log = TraceLog::default();
        for s in &self.shards {
            log.merge(s.trace.clone());
        }
        log.merge(self.router_trace.clone());
        log.merge(self.merge_trace.clone());
        log.sort_by_wall();
        log
    }

    /// The run's merged trace in JSON-lines form (one event per line).
    pub fn trace_jsonl(&self) -> String {
        punct_trace::jsonl(&self.all_trace_events().events)
    }

    /// The run's merged trace in Chrome `trace_event` form — load it in
    /// `chrome://tracing` or Perfetto; each shard / router / merger is
    /// its own named thread row.
    pub fn chrome_trace(&self) -> String {
        punct_trace::chrome_trace(&self.all_trace_events().events)
    }
}

/// An N-shard parallel PJoin.
///
/// Tuples are hash-partitioned by join key onto `N` independent
/// [`PJoin`](pjoin::PJoin) instances, each on its own thread;
/// punctuations fan out to the shards they affect and are re-aligned on
/// the way out so the merged stream carries each exactly once. See the
/// crate docs for the full architecture.
pub struct ShardedPJoin {
    input: Sender<RouterMsg>,
    output: Receiver<Vec<Timestamped<StreamElement>>>,
    /// Outputs drained by `push` while the input channel was full.
    pending: Mutex<Vec<Timestamped<StreamElement>>>,
    shard_metrics: Vec<Arc<Mutex<RuntimeMetrics>>>,
    router_counters: Arc<RouterCounters>,
    router: Option<JoinHandle<TraceLog>>,
    workers: Vec<JoinHandle<ShardReport>>,
    merger: Option<JoinHandle<(MergeReport, TraceLog)>>,
    shards: usize,
}

impl ShardedPJoin {
    /// Spawns the router, `config.shards` shard workers and the merger.
    pub fn spawn(config: ExecConfig) -> ShardedPJoin {
        // Pin the wall-clock trace epoch before any lane thread starts,
        // so every lane stamps against a base that predates its first
        // event (harmless when tracing is off).
        punct_trace::wall_epoch();
        let shards = config.shards;
        let aligner = Arc::new(Mutex::new(Aligner::new()));
        let router_counters = Arc::new(RouterCounters::default());

        let (input_tx, input_rx) = bounded::<RouterMsg>(config.input_capacity);
        let (event_tx, event_rx) = bounded(config.event_capacity);
        let (output_tx, output_rx) = bounded(config.output_capacity);

        let mut shard_txs = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        let mut shard_metrics = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (tx, rx) = bounded(config.shard_capacity);
            shard_txs.push(tx);
            let metrics = Arc::new(Mutex::new(RuntimeMetrics::default()));
            shard_metrics.push(Arc::clone(&metrics));
            let join_config = config.join.clone();
            let events = event_tx.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("pjoin-shard-{shard}"))
                    .spawn(move || shard_loop(shard, join_config, rx, events, metrics))
                    .expect("spawn shard thread"),
            );
        }
        drop(event_tx); // merger exits when router + shards are gone

        let router = {
            let join_config = config.join.clone();
            let aligner = Arc::clone(&aligner);
            let counters = Arc::clone(&router_counters);
            let batch = config.router_batch.max(1);
            let ordered = config.ordered_merge;
            std::thread::Builder::new()
                .name("pjoin-router".into())
                .spawn(move || {
                    router_loop(
                        join_config,
                        shards,
                        batch,
                        ordered,
                        input_rx,
                        shard_txs,
                        aligner,
                        counters,
                    )
                })
                .expect("spawn router thread")
        };

        let merger = {
            let aligner = Arc::clone(&aligner);
            let ordered = config.ordered_merge;
            let trace = config.join.trace;
            std::thread::Builder::new()
                .name("pjoin-merge".into())
                .spawn(move || merge_loop(shards, ordered, trace, event_rx, output_tx, aligner))
                .expect("spawn merger thread")
        };

        ShardedPJoin {
            input: input_tx,
            output: output_rx,
            pending: Mutex::new(Vec::new()),
            shard_metrics,
            router_counters,
            router: Some(router),
            workers,
            merger: Some(merger),
            shards,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Feeds one element. Never deadlocks: if the input channel is full,
    /// merged outputs are drained into the pending buffer (see crate
    /// docs) until space frees up.
    pub fn push(&self, side: Side, element: Timestamped<StreamElement>) {
        self.feed(RouterMsg::One(side, element));
    }

    /// Feeds a batch of elements in arrival order.
    pub fn push_batch(&self, batch: Vec<(Side, Timestamped<StreamElement>)>) {
        if !batch.is_empty() {
            self.feed(RouterMsg::Batch(batch));
        }
    }

    fn feed(&self, msg: RouterMsg) {
        let mut msg = Some(msg);
        while let Some(m) = msg.take() {
            match self.input.try_send(m) {
                Ok(()) => {}
                Err(TrySendError::Full(m)) => {
                    msg = Some(m);
                    // Make room by consuming pipeline output: block
                    // briefly for one merged batch.
                    if let Ok(batch) =
                        self.output.recv_timeout(std::time::Duration::from_millis(1))
                    {
                        self.pending.lock().expect("pending lock").extend(batch);
                    }
                }
                Err(TrySendError::Disconnected(_)) => {
                    unreachable!("router thread exited while executor handle is live")
                }
            }
        }
    }

    /// Drains everything the executor has produced so far, in merge
    /// order (non-blocking).
    pub fn poll_outputs(&self) -> Vec<Timestamped<StreamElement>> {
        let mut drained = std::mem::take(&mut *self.pending.lock().expect("pending lock"));
        while let Ok(batch) = self.output.try_recv() {
            drained.extend(batch);
        }
        drained
    }

    /// Like [`poll_outputs`](ShardedPJoin::poll_outputs), but blocks up
    /// to `timeout` for the first batch when nothing is available yet.
    /// Used by pull-style consumers (the networked sink publisher) to
    /// avoid spinning on an empty pipeline.
    pub fn recv_outputs(&self, timeout: std::time::Duration) -> Vec<Timestamped<StreamElement>> {
        let mut drained = self.poll_outputs();
        if drained.is_empty() {
            if let Ok(batch) = self.output.recv_timeout(timeout) {
                drained.extend(batch);
                // Whatever else is already queued comes along for free.
                while let Ok(batch) = self.output.try_recv() {
                    drained.extend(batch);
                }
            }
        }
        drained
    }

    /// A live snapshot of each shard's runtime metrics, indexed by shard.
    pub fn shard_metrics(&self) -> Vec<RuntimeMetrics> {
        self.shard_metrics
            .iter()
            .map(|m| *m.lock().expect("metrics lock"))
            .collect()
    }

    /// Live metrics aggregated over all shards.
    pub fn metrics(&self) -> RuntimeMetrics {
        self.shard_metrics().into_iter().sum()
    }

    /// Tuples routed so far (live router counter).
    pub fn tuples_routed(&self) -> u64 {
        self.router_counters.tuples.load(Ordering::Relaxed)
    }

    /// Signals end of input, drains every channel and joins all threads.
    /// Returns the remaining outputs (after those already polled) and
    /// the final accounting. Deadlock-free: the finish signal is fed
    /// with the same drain-while-feeding loop as `push`, and the output
    /// channel is drained until the merger hangs up.
    pub fn finish(mut self) -> (Vec<Timestamped<StreamElement>>, ExecStats) {
        self.feed(RouterMsg::Finish);
        // Dropping the sender lets the router exit even if the finish
        // message were lost; it is also what terminates `recv` below
        // once the merger finishes and drops its output sender.
        drop(std::mem::replace(&mut self.input, {
            // Replace with a dummy closed sender so Drop stays trivial.
            let (tx, _rx) = bounded(1);
            tx
        }));

        let mut outputs = std::mem::take(&mut *self.pending.lock().expect("pending lock"));
        while let Ok(batch) = self.output.recv() {
            outputs.extend(batch);
        }

        let router = self.router.take().expect("router handle");
        let router_trace = router.join().expect("router thread panicked");
        let mut shard_reports: Vec<ShardReport> = std::mem::take(&mut self.workers)
            .into_iter()
            .map(|w| w.join().expect("shard thread panicked"))
            .collect();
        shard_reports.sort_by_key(|r| r.shard);
        let merger = self.merger.take().expect("merger handle");
        let (merge, merge_trace) = merger.join().expect("merger thread panicked");

        let stats = ExecStats {
            shards: shard_reports,
            router: self.router_counters.report(),
            merge,
            router_trace,
            merge_trace,
        };
        (outputs, stats)
    }
}

impl Drop for ShardedPJoin {
    fn drop(&mut self) {
        // Finish was not called (or panicked): unblock the pipeline so
        // the threads can exit, then detach them. Closing the input side
        // cascades: router exits → shard channels close → shards exit →
        // event channel closes → merger exits.
        if self.router.is_some() {
            let (closed_tx, _rx) = bounded(1);
            let _ = std::mem::replace(&mut self.input, closed_tx);
            // Drain any outputs so the merger is never wedged on a full
            // output channel while we detach.
            while let Ok(_batch) = self.output.try_recv() {}
        }
    }
}
