//! Typed failures surfaced by the sharded executor.
//!
//! Historically a shard thread dying mid-stream was invisible until
//! `finish` — `push` kept accepting elements (the router silently
//! dropped batches for the dead shard) and the failure only surfaced as
//! a panic when `finish` joined the threads. Every lane is now wrapped
//! so a panic is caught, converted to an [`ExecError`], and published
//! in a failure slot the handle checks promptly: `try_push` returns the
//! error on the next call, `push` panics with it (loud beats silent
//! data loss), and `finish` reports it in
//! [`ExecStats::failure`](crate::ExecStats) instead of propagating the
//! panic.

use std::fmt;

/// A pipeline-lane failure inside a [`ShardedPJoin`](crate::ShardedPJoin).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A shard worker thread panicked. The shard's routed elements are
    /// no longer being processed; any output produced after the panic
    /// is incomplete.
    ShardPanicked {
        /// Index of the dead shard.
        shard: usize,
        /// The panic payload, stringified.
        message: String,
    },
    /// The router thread exited (or panicked) while the executor handle
    /// was still feeding it.
    RouterExited,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::ShardPanicked { shard, message } => {
                write!(f, "shard {shard} panicked: {message}")
            }
            ExecError::RouterExited => f.write_str("router thread exited while feeding"),
        }
    }
}

impl std::error::Error for ExecError {}
