//! # punct-exec
//!
//! A sharded parallel executor for [PJoin](pjoin) — scaling the
//! punctuation-exploiting stream join of *Joining Punctuated Streams*
//! (EDBT 2004) across cores while preserving single-stream punctuation
//! semantics.
//!
//! ## Architecture
//!
//! ```text
//!            ┌─────────┐   per-shard bounded    ┌─────────┐
//! caller ──▶ │ router  │ ─────────────────────▶ │ shard 0 │──┐
//!  (bounded) │  hash-  │ ─────────────────────▶ │ shard 1 │──┤ shared bounded
//!            │partition│          …             │    …    │  ├───────▶ merger ──▶ caller
//!            └────┬────┘ ─────────────────────▶ │ shard N │──┘            ▲  (bounded)
//!                 │                             └─────────┘               │
//!                 └──────────── punctuation aligner (shared) ─────────────┘
//! ```
//!
//! * **Partitioning** ([`router`]): tuples are hash-partitioned by
//!   canonical join key, so each shard's [`PJoin`](pjoin::PJoin) sees a
//!   disjoint key subspace and needs no cross-shard coordination on the
//!   hot path.
//! * **Punctuation broadcast** ([`router`]): a punctuation goes to every
//!   shard whose keys it can close — one shard for constants, the owning
//!   set for enumerations, all shards for ranges and wildcards. Each
//!   shard purges its own state and propagates independently, exactly as
//!   the paper's single-threaded operator does.
//! * **Alignment** ([`align`]): shard propagations are merged so the
//!   downstream stream carries each ingested punctuation **exactly
//!   once**, and only after *every* shard it was sent to has purged and
//!   propagated it — the sharded executor is thus indistinguishable
//!   from a single PJoin to downstream consumers (modulo output order).
//! * **Merge** ([`merge`]): arrival-order by default; an optional
//!   watermark-based timestamp-ordered k-way merge behind
//!   [`ExecConfig::ordered_merge`].
//! * **Bounded channels everywhere** ([`executor`]): backpressure
//!   propagates to the caller; shutdown drains while feeding so finish
//!   never deadlocks.
//!
//! ## Quick start
//!
//! ```
//! use pjoin::PJoinConfig;
//! use punct_exec::{ExecConfig, ShardedPJoin};
//! use punct_types::{Punctuation, Timestamp, Timestamped, Tuple};
//! use stream_sim::Side;
//!
//! let exec = ShardedPJoin::spawn(ExecConfig::new(4, PJoinConfig::new(2, 2)));
//! for k in 0..8i64 {
//!     exec.push(Side::Left, Timestamped::new(Timestamp(k as u64), Tuple::of((k, 10 * k)).into()));
//!     exec.push(Side::Right, Timestamped::new(Timestamp(k as u64), Tuple::of((k, -k)).into()));
//! }
//! exec.push(Side::Left, Timestamped::new(Timestamp(9), Punctuation::close_value(2, 0, 3i64).into()));
//! let (outputs, stats) = exec.finish();
//! // 8 joined tuples, and the punctuation exactly once.
//! assert_eq!(outputs.iter().filter(|e| e.item.is_tuple()).count(), 8);
//! assert_eq!(outputs.iter().filter(|e| e.item.is_punctuation()).count(), 1);
//! assert_eq!(stats.total_stats().tuples_purged, 1);
//! ```

pub mod align;
pub mod config;
pub mod error;
pub mod executor;
pub mod merge;
pub mod metrics;
pub mod router;
pub mod shard;

pub use align::{AlignOutcome, Aligner, SharedAligner};
pub use config::{
    default_shards, probe_threads_from_env, shards_from_env, ExecConfig, ExecConfigError,
    MAX_PROBE_THREADS, MAX_SHARDS,
};
pub use error::ExecError;
pub use executor::{ExecStats, ShardedPJoin};
pub use merge::MergeReport;
pub use metrics::ShardMetrics;
pub use router::{
    route_punctuation, route_tuple, route_tuple_hashed, shard_of, shard_of_hash, Route,
    RouterReport,
};
pub use shard::{RoutedElement, ShardReport};
