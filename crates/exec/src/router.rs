//! The router: hash-partitions tuples onto shards and fans punctuations
//! out to exactly the shards whose key subspace they can affect.
//!
//! # Partitioning
//!
//! A tuple is routed by the canonical form of its join-attribute value
//! ([`Value::join_key`], the same canonicalization the hash state uses
//! for bucketing), hashed **once** with [`Value::join_hash`]. The
//! **high 32 bits** of the hash pick the shard while the per-shard
//! stores reuse the *same carried hash*'s low bits for bucketing
//! (`hash % buckets`) — using `hash % shards` for both would correlate
//! the two moduli and collapse each shard's keys into a few buckets,
//! and re-hashing in the store would double the per-tuple hashing cost.
//! Tuples whose join attribute is missing or null can never join and
//! are parked on shard 0, mirroring the bucket-0 convention of the
//! partitioned store.
//!
//! # Punctuation fan-out
//!
//! A punctuation must reach every shard holding state it can purge:
//!
//! * `Constant(v)` on the join attribute → only the shard owning `v`'s
//!   key (fan-out 1);
//! * `In(values)` → the set of shards owning the enumerated keys;
//! * `Wildcard`, `Range`, `Empty`, or any malformed/missing join-attribute
//!   pattern → **broadcast** to all shards: ranges and wildcards cover
//!   unboundedly many keys, which hashing scatters across every shard.
//!
//! Before a punctuation is placed on any shard channel the router
//! registers an alignment expectation (see [`crate::align`]), so the
//! merger observes propagations only for registered punctuations.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::{Receiver, Sender, TryRecvError};
use pjoin::components::propagation::translate_punctuation;
use pjoin::PJoinConfig;
use punct_trace::{SpanStart, TraceKind, TraceLog, Tracer, LANE_ROUTER};
use punct_types::{Pattern, PunctSeqAssigner, Punctuation, StreamElement, Timestamp, Timestamped, Value};
use stream_sim::Side;

use crate::align::SharedAligner;
use crate::shard::{RoutedElement, ShardMsg};

/// Where the router sends an element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Route {
    /// A single shard.
    Shard(usize),
    /// An explicit set of shards (sorted, deduplicated).
    Shards(Vec<usize>),
    /// Every shard.
    Broadcast,
}

impl Route {
    /// The target shards as a bitmask over `shards` shards.
    pub fn mask(&self, shards: usize) -> u64 {
        match self {
            Route::Shard(s) => 1u64 << s,
            Route::Shards(set) => set.iter().fold(0, |m, s| m | (1u64 << s)),
            Route::Broadcast => {
                if shards == 64 {
                    u64::MAX
                } else {
                    (1u64 << shards) - 1
                }
            }
        }
    }

    /// Number of target shards.
    pub fn fanout(&self, shards: usize) -> usize {
        match self {
            Route::Shard(_) => 1,
            Route::Shards(set) => set.len(),
            Route::Broadcast => shards,
        }
    }
}

/// The shard owning a join hash already computed by
/// [`Value::join_hash`]. The **high 32 bits** pick the shard; the store
/// buckets on the low bits (`hash % buckets`), so the two decisions stay
/// decorrelated. `None` (null / non-joinable) parks on shard 0.
///
/// Delegates to [`punct_types::partition`] — the cluster coordinator
/// computes the same function when rehashing state for a migration, and
/// sharing the definition is what guarantees the in-process router and
/// the cross-process shard map can never disagree about key ownership.
pub fn shard_of_hash(hash: Option<u64>, shards: usize) -> usize {
    punct_types::partition(hash, shards)
}

/// The shard owning a join-key value (canonicalized). Null or
/// non-joinable values park on shard 0.
pub fn shard_of(value: &Value, shards: usize) -> usize {
    shard_of_hash(value.join_hash(), shards)
}

/// Routes a tuple by its join-attribute value on `side`, returning the
/// target shard together with the join hash so it is computed exactly
/// once per tuple and carried downstream for bucketing.
pub fn route_tuple_hashed(
    tuple: &punct_types::Tuple,
    side: Side,
    config: &PJoinConfig,
    shards: usize,
) -> (usize, Option<u64>) {
    let attr = match side {
        Side::Left => config.join_attr_a,
        Side::Right => config.join_attr_b,
    };
    let hash = tuple.get(attr).and_then(Value::join_hash);
    (shard_of_hash(hash, shards), hash)
}

/// Routes a tuple by its join-attribute value on `side`.
pub fn route_tuple(
    tuple: &punct_types::Tuple,
    side: Side,
    config: &PJoinConfig,
    shards: usize,
) -> usize {
    route_tuple_hashed(tuple, side, config, shards).0
}

/// Routes a punctuation by its join-attribute pattern on `side`.
pub fn route_punctuation(
    punct: &Punctuation,
    side: Side,
    config: &PJoinConfig,
    shards: usize,
) -> Route {
    let attr = match side {
        Side::Left => config.join_attr_a,
        Side::Right => config.join_attr_b,
    };
    match punct.pattern(attr) {
        Some(Pattern::Constant(v)) => Route::Shard(shard_of(v, shards)),
        Some(Pattern::In(values)) => {
            let mut set: Vec<usize> = values.iter().map(|v| shard_of(v, shards)).collect();
            set.sort_unstable();
            set.dedup();
            Route::Shards(set)
        }
        // Ranges and wildcards cover unboundedly many keys; hashing
        // scatters those keys over every shard. Empty matches nothing
        // (any shard could own it) and a missing pattern means the
        // punctuation is malformed for this schema — broadcast is the
        // safe default for all three.
        _ => Route::Broadcast,
    }
}

/// Counters published by the router thread (read via relaxed atomics).
#[derive(Debug, Default)]
pub struct RouterCounters {
    /// Tuples routed.
    pub tuples: AtomicU64,
    /// Punctuations routed to a single shard (constant patterns).
    pub puncts_targeted: AtomicU64,
    /// Punctuations routed to several-but-not-all shards (enumerations).
    pub puncts_multicast: AtomicU64,
    /// Punctuations broadcast to every shard.
    pub puncts_broadcast: AtomicU64,
    /// Punctuations dropped because their width does not match the side
    /// schema (the single-threaded operator ignores these too).
    pub puncts_malformed: AtomicU64,
    /// Batches flushed to shard channels.
    pub batches: AtomicU64,
}

/// A point-in-time copy of [`RouterCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterReport {
    /// Tuples routed.
    pub tuples: u64,
    /// Punctuations routed to a single shard.
    pub puncts_targeted: u64,
    /// Punctuations routed to several-but-not-all shards.
    pub puncts_multicast: u64,
    /// Punctuations broadcast to every shard.
    pub puncts_broadcast: u64,
    /// Malformed punctuations dropped.
    pub puncts_malformed: u64,
    /// Batches flushed to shard channels.
    pub batches: u64,
}

impl RouterCounters {
    /// Snapshots the counters.
    pub fn report(&self) -> RouterReport {
        RouterReport {
            tuples: self.tuples.load(Ordering::Relaxed),
            puncts_targeted: self.puncts_targeted.load(Ordering::Relaxed),
            puncts_multicast: self.puncts_multicast.load(Ordering::Relaxed),
            puncts_broadcast: self.puncts_broadcast.load(Ordering::Relaxed),
            puncts_malformed: self.puncts_malformed.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
        }
    }
}

/// A message from the caller to the router.
#[derive(Debug)]
pub enum RouterMsg {
    /// One stream element.
    One(Side, Timestamped<StreamElement>),
    /// A batch of stream elements, in arrival order.
    Batch(Vec<(Side, Timestamped<StreamElement>)>),
    /// A batch of **same-side** elements in arrival order — the shape
    /// network ingest produces (one decoded `DataBatch` frame per
    /// message), routed straight into shard staging without a
    /// per-element side tag.
    SideBatch(Side, Vec<Timestamped<StreamElement>>),
    /// End of both inputs: flush and shut down.
    Finish,
}

struct RouterState {
    config: PJoinConfig,
    shards: usize,
    batch: usize,
    ordered: bool,
    buffers: Vec<Vec<RoutedElement>>,
    /// Per-shard open batch span: started when the first element lands in
    /// an empty buffer, ended at flush (one `RouterBatch` span per batch).
    open_spans: Vec<Option<SpanStart>>,
    watermark: Timestamp,
    seqs: [PunctSeqAssigner; 2],
    aligner: Arc<SharedAligner>,
    counters: Arc<RouterCounters>,
    shard_txs: Vec<Sender<ShardMsg>>,
    /// Batch buffers handed back by shards after draining — reused by
    /// [`flush_shard`](Self::flush_shard) so the steady-state data path
    /// recycles a fixed pool of `Vec<RoutedElement>` instead of
    /// allocating one per batch.
    recycle: Receiver<Vec<RoutedElement>>,
    tracer: Tracer,
}

impl RouterState {
    fn side_index(side: Side) -> usize {
        match side {
            Side::Left => 0,
            Side::Right => 1,
        }
    }

    fn side_width(&self, side: Side) -> usize {
        match side {
            Side::Left => self.config.width_a,
            Side::Right => self.config.width_b,
        }
    }

    fn side_offset(&self, side: Side) -> usize {
        match side {
            Side::Left => 0,
            Side::Right => self.config.width_a,
        }
    }

    /// Stages one routed element in a shard buffer, opening the shard's
    /// batch span on the first element and flushing at the batch size.
    fn stage(&mut self, shard: usize, side: Side, element: Timestamped<StreamElement>, hash: Option<u64>) {
        if self.buffers[shard].is_empty() && self.tracer.enabled() {
            self.open_spans[shard] = Some(self.tracer.span_start());
        }
        self.buffers[shard].push(RoutedElement { side, element, hash });
        if self.buffers[shard].len() >= self.batch {
            self.flush_shard(shard);
        }
    }

    /// Routes one element into the per-shard buffers, flushing any
    /// buffer that reaches the batch size. Punctuations are staged in
    /// arrival order on their target shards and ride the normal batch
    /// cadence — alignment latency is bounded by one batch under
    /// sustained load and by one poll cycle when the input runs dry
    /// (the router's idle flush).
    fn route(&mut self, side: Side, element: Timestamped<StreamElement>) {
        self.watermark = self.watermark.max(element.ts);
        match &element.item {
            StreamElement::Tuple(t) => {
                let (shard, hash) = route_tuple_hashed(t, side, &self.config, self.shards);
                self.counters.tuples.fetch_add(1, Ordering::Relaxed);
                self.stage(shard, side, element, hash);
            }
            StreamElement::Punctuation(p) => {
                if p.width() != self.side_width(side) {
                    // The operator would debug-assert and ignore it; the
                    // router drops it up front so no shard can propagate
                    // a punctuation the aligner never registered.
                    self.counters.puncts_malformed.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                let route = route_punctuation(p, side, &self.config, self.shards);
                let counter = match &route {
                    Route::Shard(_) => &self.counters.puncts_targeted,
                    Route::Shards(_) => &self.counters.puncts_multicast,
                    Route::Broadcast => &self.counters.puncts_broadcast,
                };
                counter.fetch_add(1, Ordering::Relaxed);

                let seq = self.seqs[Self::side_index(side)].assign();
                if self.tracer.enabled() {
                    let kind = match route {
                        Route::Broadcast => TraceKind::Broadcast,
                        _ => TraceKind::Route,
                    };
                    self.tracer.instant(
                        kind,
                        element.ts.as_micros(),
                        seq.0,
                        route.mask(self.shards),
                    );
                }
                let translated = translate_punctuation(
                    p,
                    self.side_offset(side),
                    self.config.output_width(),
                );
                // Register the expectation BEFORE the punctuation can
                // reach any shard: the merger locks the same aligner, so
                // it can never observe an unregistered propagation.
                self.aligner.lock().expect(translated, seq, route.mask(self.shards));

                // The punctuation is staged behind the tuples it covers
                // (per-shard FIFO) and flushes with the batch it rides
                // in — at the batch size under load, or at the router's
                // input-dry flush otherwise. Flushing eagerly here would
                // fragment batches: with per-key punctuations every few
                // tuples, an eager flush collapses the effective batch
                // size to the punctuation interval.
                match route {
                    Route::Shard(s) => self.stage(s, side, element, None),
                    Route::Shards(set) => {
                        for &s in &set {
                            self.stage(s, side, element.clone(), None);
                        }
                    }
                    Route::Broadcast => {
                        for s in 0..self.shards {
                            self.stage(s, side, element.clone(), None);
                        }
                    }
                }
            }
        }
    }

    fn flush_shard(&mut self, shard: usize) {
        if self.buffers[shard].is_empty() {
            return;
        }
        // Swap in a recycled buffer (already drained by a shard, capacity
        // intact) so sustained routing reuses a fixed pool of allocations;
        // only a cold start or an empty recycle pool allocates.
        let mut fresh = self.recycle.try_recv().unwrap_or_default();
        fresh.clear();
        let elements = std::mem::replace(&mut self.buffers[shard], fresh);
        self.counters.batches.fetch_add(1, Ordering::Relaxed);
        if let Some(start) = self.open_spans[shard].take() {
            self.tracer.span_end(
                start,
                TraceKind::RouterBatch,
                self.watermark.as_micros(),
                shard as u64,
                elements.len() as u64,
            );
        }
        // A send error means the shard is gone (executor dropped); there
        // is nobody left to deliver to, so drop the batch.
        let _ = self.shard_txs[shard]
            .send(ShardMsg::Batch { elements, watermark: self.watermark });
    }

    /// Flushes every non-empty buffer. In ordered-merge mode, idle
    /// shards also receive an empty watermark batch so their progress
    /// frontier keeps advancing and the k-way merge never stalls on a
    /// shard that happens to own no recent keys.
    fn flush_all(&mut self) {
        for shard in 0..self.shards {
            if !self.buffers[shard].is_empty() {
                self.flush_shard(shard);
            } else if self.ordered && self.watermark > Timestamp::ZERO {
                let _ = self.shard_txs[shard]
                    .send(ShardMsg::Batch { elements: Vec::new(), watermark: self.watermark });
            }
        }
    }
}

/// The router thread body. Consumes caller messages, batching per shard:
/// under load, batches fill to `router_batch` before flushing; when the
/// input runs dry (or on finish), all buffers flush immediately so idle
/// latency stays low. Returns the router-lane trace (empty unless the
/// join config enables tracing).
#[allow(clippy::too_many_arguments)]
pub(crate) fn router_loop(
    config: PJoinConfig,
    shards: usize,
    batch: usize,
    ordered: bool,
    rx: Receiver<RouterMsg>,
    shard_txs: Vec<Sender<ShardMsg>>,
    recycle: Receiver<Vec<RoutedElement>>,
    aligner: Arc<SharedAligner>,
    counters: Arc<RouterCounters>,
) -> TraceLog {
    let mut tracer = Tracer::new(config.trace);
    tracer.set_lane(LANE_ROUTER);
    let mut state = RouterState {
        config,
        shards,
        batch,
        ordered,
        buffers: (0..shards).map(|_| Vec::new()).collect(),
        open_spans: vec![None; shards],
        watermark: Timestamp::ZERO,
        seqs: [PunctSeqAssigner::new(), PunctSeqAssigner::new()],
        aligner,
        counters,
        shard_txs,
        recycle,
        tracer,
    };

    let mut finished = false;
    'outer: while !finished {
        // Block for the next message, then drain opportunistically so
        // batches fill under load without adding idle latency.
        let first = match rx.recv() {
            Ok(msg) => msg,
            Err(_) => break 'outer, // caller dropped without finish
        };
        let mut next = Some(first);
        while let Some(msg) = next.take() {
            match msg {
                RouterMsg::One(side, e) => state.route(side, e),
                RouterMsg::Batch(batch) => {
                    for (side, e) in batch {
                        state.route(side, e);
                    }
                }
                RouterMsg::SideBatch(side, batch) => {
                    for e in batch {
                        state.route(side, e);
                    }
                }
                RouterMsg::Finish => {
                    finished = true;
                    break;
                }
            }
            match rx.try_recv() {
                Ok(msg) => next = Some(msg),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => break 'outer,
            }
        }
        // Input dry (or finish): flush what we have.
        state.flush_all();
    }

    state.flush_all();
    for tx in &state.shard_txs {
        let _ = tx.send(ShardMsg::Finish);
    }
    state.tracer.take()
}

#[cfg(test)]
mod tests {
    use super::*;
    use punct_types::Tuple;

    fn config() -> PJoinConfig {
        PJoinConfig::new(2, 2)
    }

    #[test]
    fn single_shard_routes_everything_to_zero() {
        let c = config();
        for k in 0..100i64 {
            assert_eq!(route_tuple(&Tuple::of((k, 0i64)), Side::Left, &c, 1), 0);
        }
        assert_eq!(
            route_punctuation(&Punctuation::close_value(2, 0, 5i64), Side::Left, &c, 1),
            Route::Shard(0)
        );
    }

    #[test]
    fn tuple_and_constant_punctuation_agree_per_side() {
        let c = config();
        for shards in [2usize, 4, 8] {
            for k in 0..200i64 {
                let t = route_tuple(&Tuple::of((k, 0i64)), Side::Left, &c, shards);
                let u = route_tuple(&Tuple::of((k, 0i64)), Side::Right, &c, shards);
                let p = route_punctuation(
                    &Punctuation::close_value(2, 0, k),
                    Side::Right,
                    &c,
                    shards,
                );
                assert!(t < shards);
                // Same join key must land on the same shard from either
                // side, and its closing punctuation must target it.
                assert_eq!(t, u);
                assert_eq!(p, Route::Shard(t));
            }
        }
    }

    #[test]
    fn int_and_float_keys_canonicalize_to_same_shard() {
        // The store canonicalizes Int/Float join keys; routing must too,
        // or a float tuple and its integer punctuation would diverge.
        for shards in [2usize, 4, 8] {
            assert_eq!(
                shard_of(&Value::from(42i64), shards),
                shard_of(&Value::from(42.0f64), shards)
            );
        }
    }

    #[test]
    fn range_and_wildcard_broadcast() {
        let c = config();
        let range = Punctuation::on_attr(
            2,
            0,
            Pattern::range(
                punct_types::Bound::Inclusive(Value::from(0i64)),
                punct_types::Bound::Inclusive(Value::from(9i64)),
            )
            .unwrap(),
        );
        assert_eq!(route_punctuation(&range, Side::Left, &c, 4), Route::Broadcast);
        let wild = Punctuation::on_attr(2, 1, Pattern::Constant(Value::from(1i64)));
        // Join attr is 0 → wildcard there → broadcast even though attr 1
        // is a constant.
        assert_eq!(route_punctuation(&wild, Side::Left, &c, 4), Route::Broadcast);
    }

    #[test]
    fn enumeration_targets_owning_shards() {
        let c = config();
        let shards = 8;
        let values = [3i64, 17, 99];
        let p = Punctuation::on_attr(
            2,
            0,
            Pattern::In(values.iter().map(|&v| Value::from(v)).collect()),
        );
        let expected: std::collections::BTreeSet<usize> =
            values.iter().map(|v| shard_of(&Value::from(*v), shards)).collect();
        match route_punctuation(&p, Side::Left, &c, shards) {
            Route::Shards(set) => {
                assert_eq!(set.iter().copied().collect::<std::collections::BTreeSet<_>>(), expected);
                // Sorted and deduplicated.
                assert!(set.windows(2).all(|w| w[0] < w[1]));
            }
            other => panic!("expected Shards, got {other:?}"),
        }
    }

    #[test]
    fn shards_are_reasonably_balanced() {
        // High-bit hashing should spread sequential keys across shards.
        let shards = 4;
        let mut counts = vec![0usize; shards];
        for k in 0..4000i64 {
            counts[shard_of(&Value::from(k), shards)] += 1;
        }
        for &c in &counts {
            assert!(c > 500, "unbalanced shard distribution: {counts:?}");
        }
    }

    #[test]
    fn route_masks() {
        assert_eq!(Route::Shard(3).mask(8), 0b1000);
        assert_eq!(Route::Shards(vec![0, 2]).mask(8), 0b101);
        assert_eq!(Route::Broadcast.mask(3), 0b111);
        assert_eq!(Route::Broadcast.mask(64), u64::MAX);
        assert_eq!(Route::Broadcast.fanout(5), 5);
        assert_eq!(Route::Shards(vec![1, 2]).fanout(5), 2);
    }
}
