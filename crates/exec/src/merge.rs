//! The merger: combines shard output streams into one downstream
//! stream, filtering shard-propagated punctuations through the
//! [`Aligner`](crate::align::Aligner) so each ingested punctuation is
//! emitted exactly once — after *every* target shard has purged and
//! propagated it.
//!
//! Two merge policies:
//!
//! * **Arrival order** (default): batches are forwarded as they arrive
//!   from shards. Per-shard order is preserved (each shard's events are
//!   FIFO); cross-shard interleaving is nondeterministic, which is fine
//!   for downstream operators that treat the stream as a multiset.
//! * **Timestamp order** (`ordered_merge`): a watermark-based k-way
//!   merge. Each shard reports `Progress(ts)` after every batch; the
//!   frontier is the minimum progress over unfinished shards, and
//!   buffered elements are released only up to the frontier (ties broken
//!   by shard id). Requires timestamp-ordered input at the executor.

use std::collections::VecDeque;
use std::sync::Arc;

use crossbeam::channel::{Receiver, Sender};
use punct_trace::{TraceKind, TraceLog, TraceSettings, Tracer, LANE_MERGE};
use punct_types::{StreamElement, Timestamp, Timestamped};

use crate::align::{AlignOutcome, SharedAligner};
use crate::shard::ShardEvent;

/// Final accounting returned by the merger thread on join.
#[derive(Debug, Clone, Copy, Default)]
pub struct MergeReport {
    /// Result tuples forwarded downstream.
    pub tuples: u64,
    /// Punctuations emitted downstream (exactly-once, post-alignment).
    pub puncts: u64,
    /// Shard propagations suppressed while awaiting sibling shards.
    pub puncts_held: u64,
    /// Propagations with no registered expectation (invariant breach).
    pub puncts_unexpected: u64,
    /// Expectations never completed by shutdown (e.g. propagation
    /// disabled on the shard configuration).
    pub puncts_unaligned: u64,
}

struct Merger {
    ordered: bool,
    done: Vec<bool>,
    progress: Vec<Timestamp>,
    queues: Vec<VecDeque<Timestamped<StreamElement>>>,
    aligner: Arc<SharedAligner>,
    out: Sender<Vec<Timestamped<StreamElement>>>,
    report: MergeReport,
    caller_gone: bool,
    tracer: Tracer,
}

impl Merger {
    /// Passes a shard's output batch through the aligner, appending the
    /// kept elements (tuples and exactly-once punctuations) to `kept`.
    fn filter_into(
        &mut self,
        shard: usize,
        batch: Vec<Timestamped<StreamElement>>,
        kept: &mut Vec<Timestamped<StreamElement>>,
    ) {
        kept.reserve(batch.len());
        for e in batch {
            match &e.item {
                StreamElement::Tuple(_) => {
                    self.report.tuples += 1;
                    kept.push(e);
                }
                StreamElement::Punctuation(p) => {
                    let outcome = self.aligner.lock().observe(shard, p);
                    if self.tracer.enabled() {
                        let code = match outcome {
                            AlignOutcome::Emit => 0,
                            AlignOutcome::Pending => 1,
                            AlignOutcome::Unexpected => 2,
                        };
                        self.tracer.instant(
                            TraceKind::Align,
                            e.ts.as_micros(),
                            code,
                            shard as u64,
                        );
                    }
                    match outcome {
                        AlignOutcome::Emit => {
                            self.report.puncts += 1;
                            kept.push(e);
                        }
                        AlignOutcome::Pending => self.report.puncts_held += 1,
                        AlignOutcome::Unexpected => self.report.puncts_unexpected += 1,
                    }
                }
            }
        }
    }

    fn send(&mut self, batch: Vec<Timestamped<StreamElement>>) {
        if batch.is_empty() || self.caller_gone {
            return;
        }
        if self.tracer.enabled() {
            let last_ts = batch.last().map_or(0, |e| e.ts.as_micros());
            self.tracer.instant(TraceKind::Merge, last_ts, batch.len() as u64, 0);
        }
        if self.out.send(batch).is_err() {
            // Caller dropped the output receiver: keep draining events so
            // shards never block on a full event channel, but stop
            // forwarding.
            self.caller_gone = true;
        }
    }

    /// The merge frontier: minimum progress over unfinished shards, or
    /// `None` when every shard is done (everything may be released).
    fn frontier(&self) -> Option<Timestamp> {
        self.progress
            .iter()
            .zip(&self.done)
            .filter(|(_, done)| !**done)
            .map(|(ts, _)| *ts)
            .min()
    }

    /// Releases buffered elements up to the frontier in timestamp order,
    /// ties broken by shard id.
    fn release_ordered(&mut self) {
        let frontier = self.frontier();
        let mut batch = Vec::new();
        loop {
            let mut best: Option<(Timestamp, usize)> = None;
            for (shard, q) in self.queues.iter().enumerate() {
                if let Some(head) = q.front() {
                    if frontier.is_none_or(|f| head.ts <= f)
                        && best.is_none_or(|(ts, s)| (head.ts, shard) < (ts, s))
                    {
                        best = Some((head.ts, shard));
                    }
                }
            }
            match best {
                Some((_, shard)) => {
                    batch.push(self.queues[shard].pop_front().expect("non-empty head"));
                }
                None => break,
            }
        }
        self.send(batch);
    }
}

/// The merger thread body. Returns once every shard reported `Done` (or
/// all senders disconnected), with the merge-lane trace (empty unless
/// tracing was enabled).
pub(crate) fn merge_loop(
    shards: usize,
    ordered: bool,
    trace: TraceSettings,
    rx: Receiver<ShardEvent>,
    out: Sender<Vec<Timestamped<StreamElement>>>,
    aligner: Arc<SharedAligner>,
) -> (MergeReport, TraceLog) {
    let mut tracer = Tracer::new(trace);
    tracer.set_lane(LANE_MERGE);
    let mut m = Merger {
        ordered,
        done: vec![false; shards],
        progress: vec![Timestamp::ZERO; shards],
        queues: (0..shards).map(|_| VecDeque::new()).collect(),
        aligner,
        out,
        report: MergeReport::default(),
        caller_gone: false,
        tracer,
    };

    let mut remaining = shards;
    // Kept elements accumulated over one burst of events (arrival-order
    // mode); reused across bursts so sustained merging stops allocating.
    let mut staged: Vec<Timestamped<StreamElement>> = Vec::new();
    'outer: while remaining > 0 {
        // Block for the next event, then drain the queue opportunistically
        // and forward ONE coalesced batch downstream — under load this
        // collapses many small shard batches into a single caller-side
        // channel send instead of one wakeup each.
        let first = match rx.recv() {
            Ok(event) => event,
            Err(_) => break, // all shard senders gone
        };
        let mut next = Some(first);
        while let Some(event) = next.take() {
            match event {
                ShardEvent::Outputs { shard, outputs, progress } => {
                    if m.ordered {
                        let mut kept = Vec::new();
                        m.filter_into(shard, outputs, &mut kept);
                        m.queues[shard].extend(kept);
                    } else {
                        let mut kept = std::mem::take(&mut staged);
                        m.filter_into(shard, outputs, &mut kept);
                        staged = kept;
                    }
                    if progress > m.progress[shard] {
                        m.progress[shard] = progress;
                    }
                }
                ShardEvent::Progress(shard, ts) => {
                    if ts > m.progress[shard] {
                        m.progress[shard] = ts;
                    }
                }
                ShardEvent::Done(shard) => {
                    if !m.done[shard] {
                        m.done[shard] = true;
                        remaining -= 1;
                    }
                }
            }
            if remaining == 0 {
                break;
            }
            match rx.try_recv() {
                Ok(event) => next = Some(event),
                Err(crossbeam::channel::TryRecvError::Empty) => break,
                Err(crossbeam::channel::TryRecvError::Disconnected) => {
                    if m.ordered {
                        m.release_ordered();
                    } else if !staged.is_empty() {
                        let batch = std::mem::take(&mut staged);
                        m.send(batch);
                    }
                    break 'outer;
                }
            }
        }
        // Burst drained: release what this round made available.
        if m.ordered {
            m.release_ordered();
        } else if !staged.is_empty() {
            let batch = std::mem::take(&mut staged);
            m.send(batch);
        }
    }

    // All shards done: release everything still buffered.
    if m.ordered {
        m.release_ordered();
    }
    m.report.puncts_unaligned = m.aligner.lock().pending_len() as u64;
    (m.report, m.tracer.take())
}
