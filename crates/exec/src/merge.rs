//! The merger: combines shard output streams into one downstream
//! stream, filtering shard-propagated punctuations through the
//! [`Aligner`](crate::align::Aligner) so each ingested punctuation is
//! emitted exactly once — after *every* target shard has purged and
//! propagated it.
//!
//! Two merge policies:
//!
//! * **Arrival order** (default): batches are forwarded as they arrive
//!   from shards. Per-shard order is preserved (each shard's events are
//!   FIFO); cross-shard interleaving is nondeterministic, which is fine
//!   for downstream operators that treat the stream as a multiset.
//! * **Timestamp order** (`ordered_merge`): a watermark-based k-way
//!   merge. Each shard reports `Progress(ts)` after every batch; the
//!   frontier is the minimum progress over unfinished shards, and
//!   buffered elements are released only up to the frontier (ties broken
//!   by shard id). Requires timestamp-ordered input at the executor.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crossbeam::channel::{Receiver, Sender};
use punct_trace::{TraceKind, TraceLog, TraceSettings, Tracer, LANE_MERGE};
use punct_types::{StreamElement, Timestamp, Timestamped};

use crate::align::{AlignOutcome, Aligner};
use crate::shard::ShardEvent;

/// Final accounting returned by the merger thread on join.
#[derive(Debug, Clone, Copy, Default)]
pub struct MergeReport {
    /// Result tuples forwarded downstream.
    pub tuples: u64,
    /// Punctuations emitted downstream (exactly-once, post-alignment).
    pub puncts: u64,
    /// Shard propagations suppressed while awaiting sibling shards.
    pub puncts_held: u64,
    /// Propagations with no registered expectation (invariant breach).
    pub puncts_unexpected: u64,
    /// Expectations never completed by shutdown (e.g. propagation
    /// disabled on the shard configuration).
    pub puncts_unaligned: u64,
}

struct Merger {
    ordered: bool,
    done: Vec<bool>,
    progress: Vec<Timestamp>,
    queues: Vec<VecDeque<Timestamped<StreamElement>>>,
    aligner: Arc<Mutex<Aligner>>,
    out: Sender<Vec<Timestamped<StreamElement>>>,
    report: MergeReport,
    caller_gone: bool,
    tracer: Tracer,
}

impl Merger {
    /// Passes a shard's output batch through the aligner, keeping tuples
    /// and exactly-once punctuations.
    fn filter(
        &mut self,
        shard: usize,
        batch: Vec<Timestamped<StreamElement>>,
    ) -> Vec<Timestamped<StreamElement>> {
        let mut kept = Vec::with_capacity(batch.len());
        for e in batch {
            match &e.item {
                StreamElement::Tuple(_) => {
                    self.report.tuples += 1;
                    kept.push(e);
                }
                StreamElement::Punctuation(p) => {
                    let outcome =
                        self.aligner.lock().expect("aligner lock").observe(shard, p);
                    if self.tracer.enabled() {
                        let code = match outcome {
                            AlignOutcome::Emit => 0,
                            AlignOutcome::Pending => 1,
                            AlignOutcome::Unexpected => 2,
                        };
                        self.tracer.instant(
                            TraceKind::Align,
                            e.ts.as_micros(),
                            code,
                            shard as u64,
                        );
                    }
                    match outcome {
                        AlignOutcome::Emit => {
                            self.report.puncts += 1;
                            kept.push(e);
                        }
                        AlignOutcome::Pending => self.report.puncts_held += 1,
                        AlignOutcome::Unexpected => self.report.puncts_unexpected += 1,
                    }
                }
            }
        }
        kept
    }

    fn send(&mut self, batch: Vec<Timestamped<StreamElement>>) {
        if batch.is_empty() || self.caller_gone {
            return;
        }
        if self.tracer.enabled() {
            let last_ts = batch.last().map_or(0, |e| e.ts.as_micros());
            self.tracer.instant(TraceKind::Merge, last_ts, batch.len() as u64, 0);
        }
        if self.out.send(batch).is_err() {
            // Caller dropped the output receiver: keep draining events so
            // shards never block on a full event channel, but stop
            // forwarding.
            self.caller_gone = true;
        }
    }

    /// The merge frontier: minimum progress over unfinished shards, or
    /// `None` when every shard is done (everything may be released).
    fn frontier(&self) -> Option<Timestamp> {
        self.progress
            .iter()
            .zip(&self.done)
            .filter(|(_, done)| !**done)
            .map(|(ts, _)| *ts)
            .min()
    }

    /// Releases buffered elements up to the frontier in timestamp order,
    /// ties broken by shard id.
    fn release_ordered(&mut self) {
        let frontier = self.frontier();
        let mut batch = Vec::new();
        loop {
            let mut best: Option<(Timestamp, usize)> = None;
            for (shard, q) in self.queues.iter().enumerate() {
                if let Some(head) = q.front() {
                    if frontier.is_none_or(|f| head.ts <= f)
                        && best.is_none_or(|(ts, s)| (head.ts, shard) < (ts, s))
                    {
                        best = Some((head.ts, shard));
                    }
                }
            }
            match best {
                Some((_, shard)) => {
                    batch.push(self.queues[shard].pop_front().expect("non-empty head"));
                }
                None => break,
            }
        }
        self.send(batch);
    }
}

/// The merger thread body. Returns once every shard reported `Done` (or
/// all senders disconnected), with the merge-lane trace (empty unless
/// tracing was enabled).
pub(crate) fn merge_loop(
    shards: usize,
    ordered: bool,
    trace: TraceSettings,
    rx: Receiver<ShardEvent>,
    out: Sender<Vec<Timestamped<StreamElement>>>,
    aligner: Arc<Mutex<Aligner>>,
) -> (MergeReport, TraceLog) {
    let mut tracer = Tracer::new(trace);
    tracer.set_lane(LANE_MERGE);
    let mut m = Merger {
        ordered,
        done: vec![false; shards],
        progress: vec![Timestamp::ZERO; shards],
        queues: (0..shards).map(|_| VecDeque::new()).collect(),
        aligner,
        out,
        report: MergeReport::default(),
        caller_gone: false,
        tracer,
    };

    let mut remaining = shards;
    while remaining > 0 {
        match rx.recv() {
            Ok(ShardEvent::Outputs(shard, batch)) => {
                let kept = m.filter(shard, batch);
                if m.ordered {
                    m.queues[shard].extend(kept);
                    m.release_ordered();
                } else {
                    m.send(kept);
                }
            }
            Ok(ShardEvent::Progress(shard, ts)) => {
                if ts > m.progress[shard] {
                    m.progress[shard] = ts;
                    if m.ordered {
                        m.release_ordered();
                    }
                }
            }
            Ok(ShardEvent::Done(shard)) => {
                if !m.done[shard] {
                    m.done[shard] = true;
                    remaining -= 1;
                    if m.ordered {
                        m.release_ordered();
                    }
                }
            }
            Err(_) => break, // all shard senders gone
        }
    }

    // All shards done: release everything still buffered.
    if m.ordered {
        m.release_ordered();
    }
    m.report.puncts_unaligned =
        m.aligner.lock().expect("aligner lock").pending_len() as u64;
    (m.report, m.tracer.take())
}
