//! Latency-histogram validation for the tracing tentpole:
//!
//! 1. **Hand-computed buckets** — a four-element deterministic workload
//!    whose three latency histograms (tuple emit, punctuation purge,
//!    punctuation propagation) are derived by hand and asserted bucket
//!    by bucket.
//! 2. **Shard-merge exactness** — per-shard histograms merged across
//!    1/2/4/8 shards equal the single-threaded operator's totals, on a
//!    workload whose keys and closing punctuations co-locate.

use pjoin::{IndexBuildStrategy, PJoin, PJoinConfig, PropagationTrigger, PurgeStrategy};
use punct_exec::{ExecConfig, ShardedPJoin};
use punct_trace::{JoinLatencies, LatencyHistogram};
use punct_types::{Punctuation, StreamElement, Timestamp, Timestamped, Tuple};
use stream_sim::{BinaryStreamOp, OpOutput, Side};

fn tup(ts: u64, key: i64, payload: i64) -> Timestamped<StreamElement> {
    Timestamped::new(Timestamp(ts), Tuple::of((key, payload)).into())
}

fn punct(ts: u64, key: i64) -> Timestamped<StreamElement> {
    Timestamped::new(Timestamp(ts), Punctuation::close_value(2, 0, key).into())
}

fn traced_config(purge: PurgeStrategy) -> PJoinConfig {
    PJoinConfig {
        purge,
        index_build: IndexBuildStrategy::Eager,
        propagation: PropagationTrigger::PushCount { count: 1 },
        ..PJoinConfig::new(2, 2)
    }
    .with_tracing()
}

/// Runs a ts-ordered feed through a single (non-sharded) PJoin and
/// returns its latency histograms.
fn run_single(
    config: PJoinConfig,
    feed: &[(Side, Timestamped<StreamElement>)],
) -> JoinLatencies {
    let mut join = PJoin::new(config);
    let mut out = OpOutput::new();
    let mut last_ts = Timestamp::ZERO;
    for (side, e) in feed {
        last_ts = last_ts.max(e.ts);
        join.on_element(*side, e.item.clone(), e.ts, &mut out);
        out.drain().for_each(drop);
    }
    while join.on_end(last_ts, &mut out) {
        out.drain().for_each(drop);
    }
    *join.latencies()
}

#[test]
fn hand_computed_latency_histograms() {
    // Workload (virtual µs):
    //   t=1000  left  tuple  k=7   (stored)
    //   t=2000  right tuple  k=7   (joins the stored left tuple:
    //                               emit latency = 2000-1000 = 1000)
    //   t=3000  left  punct  close(7)
    //   t=4000  right punct  close(7)
    //
    // Purge is Lazy{2}: the purge runs while processing the second
    // punctuation (now = 4000), so the left punctuation waited
    // 4000-3000 = 1000 µs and the right one 0 µs.
    //
    // Propagation is PushCount{1}, but a punctuation can only be
    // released downstream once its cross-input match arrives — so both
    // are released at now = 4000: latency 1000 for the left, 0 for the
    // right.
    let feed = vec![
        (Side::Left, tup(1_000, 7, 0)),
        (Side::Right, tup(2_000, 7, 1)),
        (Side::Left, punct(3_000, 7)),
        (Side::Right, punct(4_000, 7)),
    ];
    let l = run_single(traced_config(PurgeStrategy::Lazy { threshold: 2 }), &feed);

    // 1000 µs lands in bucket ⌊log2(1000)⌋ = 9 ([512, 1023]); 0 in
    // bucket 0.
    assert_eq!(LatencyHistogram::bucket_index(1_000), 9);
    assert_eq!(LatencyHistogram::bucket_index(0), 0);

    assert_eq!(l.tuple_emit.count(), 1);
    assert_eq!(l.tuple_emit.bucket(9), 1);
    assert_eq!(l.tuple_emit.sum(), 1_000);
    assert_eq!(l.tuple_emit.max(), 1_000);

    assert_eq!(l.punct_purge.count(), 2);
    assert_eq!(l.punct_purge.bucket(0), 1);
    assert_eq!(l.punct_purge.bucket(9), 1);
    assert_eq!(l.punct_purge.max(), 1_000);

    assert_eq!(l.punct_propagate.count(), 2);
    assert_eq!(l.punct_propagate.bucket(0), 1);
    assert_eq!(l.punct_propagate.bucket(9), 1);
    assert_eq!(l.punct_propagate.max(), 1_000);

    // Every other bucket is empty in all three histograms.
    for (hist, name) in [
        (&l.tuple_emit, "tuple_emit"),
        (&l.punct_purge, "punct_purge"),
        (&l.punct_propagate, "punct_propagate"),
    ] {
        for (i, &n) in hist.buckets().iter().enumerate() {
            if i != 0 && i != 9 {
                assert_eq!(n, 0, "{name} bucket {i} should be empty");
            }
        }
    }
}

/// A deterministic ts-ordered workload: every key gets a left tuple, a
/// right tuple `g` µs later, then closing punctuations on both sides —
/// all within the key's own non-overlapping time block, so each key's
/// latencies depend only on its own elements and are identical no
/// matter which shard the key lands on. Gaps vary per key (powers of
/// two, 1..2048 µs) to populate many histogram buckets.
fn keyed_feed(keys: i64) -> Vec<(Side, Timestamped<StreamElement>)> {
    let mut feed = Vec::new();
    let mut t = 0u64;
    for k in 0..keys {
        let g = 1u64 << (k % 12) as u32;
        t += 1;
        feed.push((Side::Left, tup(t, k, 10 * k)));
        t += g;
        feed.push((Side::Right, tup(t, k, -k)));
        t += g;
        feed.push((Side::Left, punct(t, k)));
        t += g;
        feed.push((Side::Right, punct(t, k)));
    }
    feed
}

#[test]
fn shard_merged_histograms_equal_single_threaded() {
    let feed = keyed_feed(96);
    let config = traced_config(PurgeStrategy::Eager);
    let reference = run_single(config.clone(), &feed);
    assert!(
        reference.tuple_emit.nonzero_buckets().len() >= 10,
        "workload should spread across many buckets"
    );
    assert_eq!(reference.tuple_emit.count(), 96);
    assert_eq!(reference.punct_propagate.count(), 2 * 96);

    for shards in [1usize, 2, 4, 8] {
        let exec = ShardedPJoin::spawn(ExecConfig::new(shards, config.clone()));
        exec.push_batch(feed.clone());
        let (_outputs, stats) = exec.finish();
        let merged = stats.total_latencies();
        assert_eq!(
            merged, reference,
            "merged histograms diverge from single-threaded at {shards} shards"
        );
        // The executor's aggregated runtime metrics carry the same
        // histograms.
        assert_eq!(stats.total_metrics().latencies, reference);
    }
}

#[test]
fn tracing_disabled_records_no_latencies() {
    let feed = keyed_feed(8);
    let config = PJoinConfig {
        purge: PurgeStrategy::Eager,
        index_build: IndexBuildStrategy::Eager,
        propagation: PropagationTrigger::PushCount { count: 1 },
        ..PJoinConfig::new(2, 2)
    };
    assert!(run_single(config.clone(), &feed).is_empty());
    let exec = ShardedPJoin::spawn(ExecConfig::new(4, config));
    exec.push_batch(feed);
    let (_outputs, stats) = exec.finish();
    assert!(stats.total_latencies().is_empty());
    assert!(stats.all_trace_events().events.is_empty());
}
