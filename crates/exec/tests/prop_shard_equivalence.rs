//! Property test: for any well-formed punctuated workload and any shard
//! count in {1, 2, 4, 8}, the sharded executor's output is a
//! permutation of the single-threaded PJoin's output — the same
//! multiset of joined tuples AND the same multiset of propagated
//! punctuations (each ingested punctuation exactly once, post-
//! alignment).
//!
//! Workloads come from the streamgen sliding-key-window generator, which
//! guarantees punctuation semantics (no tuple ever arrives on a key its
//! own side already closed) — the precondition under which purge timing
//! cannot change the result multiset.

use pjoin::{IndexBuildStrategy, PJoinConfig, PropagationTrigger, PurgeStrategy};
use proptest::prelude::*;
use punct_exec::{probe_threads_from_env, shards_from_env, ExecConfig, ShardedPJoin};
use punct_types::{StreamElement, Timestamp, Timestamped};
use stream_sim::{BinaryStreamOp, OpOutput, Side};
use streamgen::{generate_pair, PunctScheme, StreamConfig};

/// Interleaves the two generated streams into one timestamp-ordered
/// feed, stable on ties (left first) so the reference and every sharded
/// run consume the identical sequence.
fn interleave(
    left: &[Timestamped<StreamElement>],
    right: &[Timestamped<StreamElement>],
) -> Vec<(Side, Timestamped<StreamElement>)> {
    let mut feed = Vec::with_capacity(left.len() + right.len());
    let (mut i, mut j) = (0, 0);
    while i < left.len() || j < right.len() {
        let take_left = match (left.get(i), right.get(j)) {
            (Some(l), Some(r)) => l.ts <= r.ts,
            (Some(_), None) => true,
            _ => false,
        };
        if take_left {
            feed.push((Side::Left, left[i].clone()));
            i += 1;
        } else {
            feed.push((Side::Right, right[j].clone()));
            j += 1;
        }
    }
    feed
}

/// Runs the plain single-threaded operator over the feed.
fn reference_run(
    config: &PJoinConfig,
    feed: &[(Side, Timestamped<StreamElement>)],
) -> Vec<StreamElement> {
    let mut join = pjoin::PJoin::new(config.clone());
    let mut out = OpOutput::new();
    let mut collected = Vec::new();
    let mut last = Timestamp::ZERO;
    for (side, e) in feed {
        last = last.max(e.ts);
        join.on_element(*side, e.item.clone(), e.ts, &mut out);
        collected.extend(out.drain());
    }
    while join.on_end(last, &mut out) {
        collected.extend(out.drain());
    }
    collected.extend(out.drain());
    collected
}

/// Canonical multiset form: sorted debug renderings, split into tuples
/// and punctuations so failures report which class diverged.
fn canonical(elements: &[StreamElement]) -> (Vec<String>, Vec<String>) {
    let mut tuples = Vec::new();
    let mut puncts = Vec::new();
    for e in elements {
        match e {
            StreamElement::Tuple(t) => tuples.push(format!("{t:?}")),
            StreamElement::Punctuation(p) => puncts.push(format!("{p:?}")),
        }
    }
    tuples.sort();
    puncts.sort();
    (tuples, puncts)
}

/// The shard counts under test; `PJOIN_SHARDS` (the CI matrix) adds one.
fn shard_counts() -> Vec<usize> {
    let mut counts = vec![1, 2, 4, 8];
    if let Some(s) = shards_from_env() {
        if !counts.contains(&s) {
            counts.push(s);
        }
    }
    counts
}

/// The per-shard probe thread counts under test; `PJOIN_PROBE_THREADS`
/// (the CI probe matrix) adds one. 1 is the serial probe path; the
/// parallel probe must be invisible at every setting.
fn probe_thread_counts() -> Vec<usize> {
    let mut counts = vec![1, 2, 4];
    if let Some(t) = probe_threads_from_env() {
        if !counts.contains(&t) {
            counts.push(t);
        }
    }
    counts
}

fn join_config_strategy() -> impl Strategy<Value = PJoinConfig> {
    (
        prop_oneof![
            Just(PurgeStrategy::Eager),
            (1u64..20).prop_map(|t| PurgeStrategy::Lazy { threshold: t }),
            Just(PurgeStrategy::Never),
        ],
        prop_oneof![
            Just(IndexBuildStrategy::Lazy),
            Just(IndexBuildStrategy::Eager),
        ],
        prop_oneof![
            Just(PropagationTrigger::Disabled),
            (1u64..15).prop_map(|c| PropagationTrigger::PushCount { count: c }),
            Just(PropagationTrigger::MatchedPair),
        ],
        any::<bool>(),
        1usize..6,
    )
        .prop_map(
            |(purge, index_build, propagation, on_the_fly_drop, buckets)| PJoinConfig {
                purge,
                index_build,
                propagation,
                on_the_fly_drop,
                buckets: buckets * 4,
                ..PJoinConfig::new(2, 2)
            },
        )
}

fn workload_strategy() -> impl Strategy<Value = StreamConfig> {
    (
        any::<u64>(),
        100usize..400,
        1u64..12,
        prop_oneof![
            Just(PunctScheme::ConstantPerKey),
            (1u64..6).prop_map(|b| PunctScheme::RangeBatch { batch: b }),
        ],
        4f64..40.0,
    )
        .prop_map(
            |(seed, tuples, key_window, punct_scheme, punct_mean)| StreamConfig {
                seed,
                tuples,
                key_window,
                punct_scheme,
                punct_mean_tuples: punct_mean,
                payload_attrs: 1,
                ..StreamConfig::default()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn sharded_output_is_a_permutation_of_single_threaded(
        workload in workload_strategy(),
        join_config in join_config_strategy(),
    ) {
        let (left, right) = generate_pair(&workload, workload.punct_mean_tuples, workload.punct_mean_tuples);
        let feed = interleave(&left.elements, &right.elements);
        let expected = canonical(&reference_run(&join_config, &feed));
        let ingested_puncts = feed.iter().filter(|(_, e)| e.item.is_punctuation()).count();

        for shards in shard_counts() {
            for probe_threads in probe_thread_counts() {
            let exec = ShardedPJoin::spawn(
                ExecConfig::new(shards, join_config.clone()).with_probe_threads(probe_threads),
            );
            exec.push_batch(feed.clone());
            let (outputs, stats) = exec.finish();
            let items: Vec<StreamElement> = outputs.into_iter().map(|e| e.item).collect();
            let got = canonical(&items);

            prop_assert_eq!(
                &got.0, &expected.0,
                "tuple multiset diverged at {} shards, {} probe threads", shards, probe_threads
            );
            prop_assert_eq!(
                &got.1, &expected.1,
                "punctuation multiset diverged at {} shards, {} probe threads",
                shards, probe_threads
            );
            prop_assert_eq!(stats.merge.puncts_unexpected, 0);
            // Every registered expectation either completed or (with
            // propagation disabled) none did.
            let (registered, emitted, _) = (
                stats.router.puncts_targeted
                    + stats.router.puncts_multicast
                    + stats.router.puncts_broadcast,
                stats.merge.puncts,
                (),
            );
            prop_assert!(emitted <= registered);
            prop_assert!(registered as usize <= ingested_puncts);
            }
        }
    }
}
