//! Counting-allocator gate for the tuple hot path.
//!
//! This test binary runs under a counting wrapper around the system
//! allocator (which is why it lives alone in its own integration-test
//! binary). The single test drives a steady-state, tuple-only workload
//! through the sharded executor with inputs built *before* counting
//! starts, and asserts that the measured region performs far less than
//! one heap allocation per element: tuples move — caller → router
//! staging → shard slab — without per-element clones, drained batch
//! buffers cycle back to the router through the recycle pool, metrics
//! are published through per-shard atomics, and the aligner mutex is
//! never touched (no punctuations are fed).
//!
//! The budget is deliberately loose (one allocation per four elements)
//! to absorb the real, amortized allocations that remain: slab and
//! tag-array doubling as shard state grows, channel block allocation
//! inside the bounded channels, an occasional non-recycled router
//! buffer when shards run behind, and the metrics snapshots the test
//! itself takes while waiting. The regressions this gate exists to
//! catch — a per-element clone, a per-element channel send, a
//! per-element lock that allocates — each cost one or more allocations
//! *per element* and overshoot the budget several times over.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use pjoin::PJoinConfig;
use punct_exec::{ExecConfig, ShardedPJoin};
use punct_types::{BatchConfig, StreamElement, Timestamp, Timestamped, Tuple};
use stream_sim::Side;

struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

const SHARDS: usize = 2;
const BATCH: usize = 256;
const WARMUP_BATCHES: usize = 32;
const MEASURED_BATCHES: usize = 64;

/// `n` batches of `BATCH` distinct-key left-side tuples: every tuple is
/// stored (state grows) and probes an empty right partition (no
/// matches, no outputs), so the measured region exercises exactly the
/// route → stage → probe → insert path and nothing downstream.
fn build_batches(n: usize, first_key: i64) -> Vec<Vec<(Side, Timestamped<StreamElement>)>> {
    let mut key = first_key;
    (0..n)
        .map(|_| {
            (0..BATCH)
                .map(|_| {
                    key += 1;
                    let e = Timestamped::new(Timestamp(key as u64), Tuple::of((key, key)).into());
                    (Side::Left, e)
                })
                .collect()
        })
        .collect()
}

fn wait_consumed(exec: &ShardedPJoin, target: u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while exec.metrics().consumed < target {
        assert!(
            Instant::now() < deadline,
            "executor did not consume {target} elements in time"
        );
        std::thread::sleep(Duration::from_micros(500));
    }
}

/// Serializes the two gate tests: they share the process-global
/// counting allocator, so running them concurrently would attribute
/// one run's allocations to the other.
static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn steady_state_hot_path_is_allocation_free_per_element() {
    run_gate(1);
}

/// The probe pool must not reintroduce per-element allocations: jobs
/// ship borrowed slices over pre-sized rendezvous channels and the
/// per-worker scratch is recycled batch to batch, so the steady state
/// costs a constant handful of channel operations per *batch*. The
/// pool only engages on the two-phase batched probe, so this variant
/// disables on-the-fly dropping (whose per-element fallback would
/// bypass the pool entirely).
#[test]
fn steady_state_hot_path_is_allocation_free_with_probe_pool() {
    run_gate(3);
}

fn run_gate(probe_threads: usize) {
    let _gate = GATE.lock().unwrap();
    let join = PJoinConfig {
        // `on_the_fly_drop` routes batches through the per-element
        // fallback; the pool variant must exercise the batched probe.
        on_the_fly_drop: probe_threads == 1,
        ..PJoinConfig::new(2, 2)
    };
    let config = ExecConfig::new(SHARDS, join)
        .with_batch(BatchConfig::with_elems(BATCH))
        .with_probe_threads(probe_threads);
    let exec = ShardedPJoin::spawn(config);

    // Warm up: grow channel blocks, router staging buffers, the recycle
    // pool and the first slab doublings outside the measured region.
    let warmup = build_batches(WARMUP_BATCHES, 0);
    let warmed = (WARMUP_BATCHES * BATCH) as u64;
    for batch in warmup {
        exec.push_batch(batch);
    }
    wait_consumed(&exec, warmed);
    assert!(
        exec.poll_outputs().is_empty(),
        "no-match workload must produce no outputs"
    );

    // Build the measured inputs *before* counting starts.
    let measured = build_batches(MEASURED_BATCHES, (warmed + 1) as i64);
    let elements = (MEASURED_BATCHES * BATCH) as u64;

    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    for batch in measured {
        exec.push_batch(batch);
    }
    wait_consumed(&exec, warmed + elements);
    COUNTING.store(false, Ordering::SeqCst);
    let allocs = ALLOCS.load(Ordering::SeqCst);

    // Tuple-only traffic must never touch the aligner mutex; the single
    // lock of the pipeline is punctuation-granular.
    assert_eq!(
        exec.aligner_acquisitions(),
        0,
        "aligner mutex acquired on a punctuation-free workload"
    );

    let per_element = allocs as f64 / elements as f64;
    eprintln!(
        "hot path ({probe_threads} probe threads): {allocs} allocs / {elements} elements \
         = {per_element:.4} per element"
    );
    assert!(
        allocs <= elements / 4,
        "hot path allocated {allocs} times for {elements} elements \
         ({per_element:.3} allocs/element; budget is 0.25)"
    );

    let (rest, stats) = exec.finish();
    assert!(
        rest.iter().all(|e| !e.item.is_tuple()),
        "no-match workload must emit no tuples"
    );
    assert_eq!(stats.total_metrics().consumed, warmed + elements);
}
