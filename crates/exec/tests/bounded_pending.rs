//! Regression test for the caller-side pending bound.
//!
//! `push` drains merged outputs into the caller-side `pending` buffer
//! while the input channel is full — historically without limit, so a
//! caller that pushed faster than it polled could grow `pending` to the
//! size of the whole output stream. The bound
//! ([`ExecConfig::pending_capacity`]) turns that into backpressure:
//! once `pending` is at capacity, `push` stops absorbing output and
//! waits for a concurrent consumer to drain.
//!
//! The test saturates a deliberately tiny pipeline (capacity-2
//! channels, 16-element batches) with a 1:1 matching workload while a
//! slow concurrent drainer polls, and asserts that (a) the run
//! completes with every output delivered — backpressure, not deadlock —
//! and (b) the pending buffer never grows past the configured bound
//! plus one merged batch, even though the drainer lags far behind the
//! pipeline's output rate.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use pjoin::PJoinConfig;
use punct_exec::{ExecConfig, ShardedPJoin};
use punct_types::{BatchConfig, Timestamp, Timestamped, Tuple};
use stream_sim::Side;

const PAIRS: i64 = 20_000;
const CAP: usize = 256;
const BATCH: usize = 16;

#[test]
fn pending_buffer_stays_bounded_under_slow_drain() {
    let mut config = ExecConfig::new(1, PJoinConfig::new(2, 2))
        .with_batch(BatchConfig::with_elems(BATCH))
        .with_pending_capacity(CAP);
    // Tiny channels so the input fills (and `push` starts absorbing
    // output) almost immediately.
    config.input_capacity = 2;
    config.output_capacity = 2;
    config.event_capacity = 2;
    config.shard_capacity = 2;

    let exec = ShardedPJoin::spawn(config);
    let stop = AtomicBool::new(false);
    let drained_tuples = AtomicU64::new(0);
    let mut max_pending = 0usize;

    std::thread::scope(|s| {
        s.spawn(|| {
            // Deliberately slow consumer: the pipeline produces outputs
            // far faster than this drains them, so without the bound
            // `pending` would balloon toward the full output stream.
            while !stop.load(Ordering::Relaxed) {
                let got = exec.poll_outputs();
                let tuples = got.iter().filter(|e| e.item.is_tuple()).count();
                drained_tuples.fetch_add(tuples as u64, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(10));
            }
        });

        // 1:1 matching workload: left k stores, right k probes it — one
        // output per pair.
        for k in 0..PAIRS {
            let ts = Timestamp(k as u64);
            exec.push(Side::Left, Timestamped::new(ts, Tuple::of((k, k)).into()));
            exec.push(Side::Right, Timestamped::new(ts, Tuple::of((k, -k)).into()));
            max_pending = max_pending.max(exec.pending_len());
        }
        stop.store(true, Ordering::Relaxed);
    });

    // (b) The bound held: `pending` can overshoot the capacity by at
    // most the one merged batch a single absorb step appends.
    assert!(
        max_pending <= CAP + 4 * BATCH,
        "pending grew to {max_pending} elements (bound {CAP} + one merged batch)"
    );

    // (a) Backpressure, not loss or deadlock: every joined pair comes
    // out once the run finishes.
    let (rest, stats) = exec.finish();
    let total =
        drained_tuples.load(Ordering::Relaxed) + rest.iter().filter(|e| e.item.is_tuple()).count() as u64;
    assert_eq!(total, PAIRS as u64, "every matched pair must be delivered exactly once");
    assert_eq!(stats.total_metrics().consumed, 2 * PAIRS as u64);
}
