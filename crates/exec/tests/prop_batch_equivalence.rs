//! Batching must be invisible: for any well-formed punctuated workload,
//! any shard count, and any batch size, the sharded executor's output is
//! the same multiset of joined tuples and the same multiset of aligned
//! punctuations as the per-element (`PJOIN_BATCH=1`) run — which is
//! itself anchored against the single-threaded operator.
//!
//! Beyond the property test this file pins down the deterministic
//! corners of the batched data path:
//!
//! * at one shard the *sequence* (not just the multiset) must be
//!   identical across batch sizes — single shard, FIFO channels, and
//!   the two-phase batched probe preserves arrival order;
//! * punctuations are flush barriers: a punctuation staged behind a
//!   partial batch must come out promptly, without `finish()`, ordered
//!   after the results of the tuples it flushed;
//! * the shard decision (high hash bits) and the store's bucket
//!   decision (low hash bits) stay decorrelated, so carrying one hash
//!   end-to-end does not collapse each shard's keys into a few buckets.

use std::time::Duration;

use pjoin::{IndexBuildStrategy, PJoinConfig, PropagationTrigger, PurgeStrategy};
use proptest::prelude::*;
use punct_exec::{
    probe_threads_from_env, shard_of_hash, shards_from_env, ExecConfig, ShardedPJoin,
};
use punct_types::{
    batch_from_env, BatchConfig, Punctuation, StreamElement, Timestamp, Timestamped, Tuple, Value,
};
use stream_sim::{BinaryStreamOp, OpOutput, Side};
use streamgen::{generate_pair, PunctScheme, StreamConfig};

/// Interleaves the two generated streams into one timestamp-ordered
/// feed, stable on ties (left first) so every run consumes the identical
/// sequence.
fn interleave(
    left: &[Timestamped<StreamElement>],
    right: &[Timestamped<StreamElement>],
) -> Vec<(Side, Timestamped<StreamElement>)> {
    let mut feed = Vec::with_capacity(left.len() + right.len());
    let (mut i, mut j) = (0, 0);
    while i < left.len() || j < right.len() {
        let take_left = match (left.get(i), right.get(j)) {
            (Some(l), Some(r)) => l.ts <= r.ts,
            (Some(_), None) => true,
            _ => false,
        };
        if take_left {
            feed.push((Side::Left, left[i].clone()));
            i += 1;
        } else {
            feed.push((Side::Right, right[j].clone()));
            j += 1;
        }
    }
    feed
}

/// Runs the plain single-threaded operator over the feed (the semantic
/// anchor every executor configuration must agree with).
fn reference_run(
    config: &PJoinConfig,
    feed: &[(Side, Timestamped<StreamElement>)],
) -> Vec<StreamElement> {
    let mut join = pjoin::PJoin::new(config.clone());
    let mut out = OpOutput::new();
    let mut collected = Vec::new();
    let mut last = Timestamp::ZERO;
    for (side, e) in feed {
        last = last.max(e.ts);
        join.on_element(*side, e.item.clone(), e.ts, &mut out);
        collected.extend(out.drain());
    }
    while join.on_end(last, &mut out) {
        collected.extend(out.drain());
    }
    collected.extend(out.drain());
    collected
}

/// Canonical multiset form: sorted debug renderings, split into tuples
/// and punctuations so failures report which class diverged.
fn canonical(elements: &[StreamElement]) -> (Vec<String>, Vec<String>) {
    let mut tuples = Vec::new();
    let mut puncts = Vec::new();
    for e in elements {
        match e {
            StreamElement::Tuple(t) => tuples.push(format!("{t:?}")),
            StreamElement::Punctuation(p) => puncts.push(format!("{p:?}")),
        }
    }
    tuples.sort();
    puncts.sort();
    (tuples, puncts)
}

/// One full executor run at the given shard count, batch size and
/// per-shard probe thread count.
fn exec_run(
    shards: usize,
    batch: BatchConfig,
    probe_threads: usize,
    join_config: &PJoinConfig,
    feed: &[(Side, Timestamped<StreamElement>)],
) -> (Vec<StreamElement>, punct_exec::ExecStats) {
    let exec = ShardedPJoin::spawn(
        ExecConfig::new(shards, join_config.clone())
            .with_batch(batch)
            .with_probe_threads(probe_threads),
    );
    exec.push_batch(feed.to_vec());
    let (outputs, stats) = exec.finish();
    (outputs.into_iter().map(|e| e.item).collect(), stats)
}

/// The batch sizes under test; `PJOIN_BATCH` (the CI matrix) adds one.
fn batch_sizes() -> Vec<usize> {
    let mut sizes = vec![1, 7, 64, 256];
    if let Some(env) = batch_from_env() {
        if !sizes.contains(&env) {
            sizes.push(env);
        }
    }
    sizes
}

/// The shard counts under test; `PJOIN_SHARDS` (the CI matrix) adds one.
fn shard_counts() -> Vec<usize> {
    let mut counts = vec![1, 4];
    if let Some(s) = shards_from_env() {
        if !counts.contains(&s) {
            counts.push(s);
        }
    }
    counts
}

/// The per-shard probe thread counts under test; `PJOIN_PROBE_THREADS`
/// (the CI probe matrix) adds one.
fn probe_thread_counts() -> Vec<usize> {
    let mut counts = vec![1, 2, 4];
    if let Some(t) = probe_threads_from_env() {
        if !counts.contains(&t) {
            counts.push(t);
        }
    }
    counts
}

/// Join configs crossing the batched-probe fast path (`on_the_fly_drop:
/// false`, no window) with the per-element fallback, plus purge and
/// propagation variation — batching must be invisible on both paths.
fn join_config_strategy() -> impl Strategy<Value = PJoinConfig> {
    (
        prop_oneof![
            Just(PurgeStrategy::Eager),
            (1u64..20).prop_map(|t| PurgeStrategy::Lazy { threshold: t }),
        ],
        prop_oneof![
            Just(IndexBuildStrategy::Lazy),
            Just(IndexBuildStrategy::Eager),
        ],
        prop_oneof![
            (1u64..15).prop_map(|c| PropagationTrigger::PushCount { count: c }),
            Just(PropagationTrigger::MatchedPair),
        ],
        any::<bool>(),
        1usize..6,
    )
        .prop_map(
            |(purge, index_build, propagation, on_the_fly_drop, buckets)| PJoinConfig {
                purge,
                index_build,
                propagation,
                on_the_fly_drop,
                buckets: buckets * 4,
                ..PJoinConfig::new(2, 2)
            },
        )
}

fn workload_strategy() -> impl Strategy<Value = StreamConfig> {
    (
        any::<u64>(),
        100usize..400,
        1u64..12,
        prop_oneof![
            Just(PunctScheme::ConstantPerKey),
            (1u64..6).prop_map(|b| PunctScheme::RangeBatch { batch: b }),
        ],
        4f64..40.0,
    )
        .prop_map(
            |(seed, tuples, key_window, punct_scheme, punct_mean)| StreamConfig {
                seed,
                tuples,
                key_window,
                punct_scheme,
                punct_mean_tuples: punct_mean,
                payload_attrs: 1,
                ..StreamConfig::default()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    #[test]
    fn batched_output_matches_unbatched(
        workload in workload_strategy(),
        join_config in join_config_strategy(),
    ) {
        let (left, right) = generate_pair(&workload, workload.punct_mean_tuples, workload.punct_mean_tuples);
        let feed = interleave(&left.elements, &right.elements);
        let anchor = canonical(&reference_run(&join_config, &feed));

        for shards in shard_counts() {
            // The per-element run (`PJOIN_BATCH=1`) is the baseline each
            // batched run must reproduce — and it must itself agree with
            // the single-threaded operator.
            let (base_items, _) =
                exec_run(shards, BatchConfig::per_element(), 1, &join_config, &feed);
            let expected = canonical(&base_items);
            prop_assert_eq!(
                &expected.0, &anchor.0,
                "per-element run diverged from the single-threaded operator at {} shards", shards
            );
            prop_assert_eq!(&expected.1, &anchor.1);

            for batch in batch_sizes() {
                if batch == 1 {
                    continue;
                }
                let (items, stats) =
                    exec_run(shards, BatchConfig::with_elems(batch), 1, &join_config, &feed);
                let got = canonical(&items);
                prop_assert_eq!(
                    &got.0, &expected.0,
                    "tuple multiset diverged at {} shards, batch {}", shards, batch
                );
                prop_assert_eq!(
                    &got.1, &expected.1,
                    "punctuation multiset diverged at {} shards, batch {}", shards, batch
                );
                prop_assert_eq!(stats.merge.puncts_unexpected, 0);
            }

            // The intra-shard parallel probe must be just as invisible:
            // at a batch size large enough to exercise the probe pool,
            // every probe thread count reproduces the anchor multiset.
            for probe_threads in probe_thread_counts() {
                if probe_threads == 1 {
                    continue; // covered by the batch loop above
                }
                let (items, stats) = exec_run(
                    shards, BatchConfig::with_elems(64), probe_threads, &join_config, &feed,
                );
                let got = canonical(&items);
                prop_assert_eq!(
                    &got.0, &expected.0,
                    "tuple multiset diverged at {} shards, {} probe threads", shards, probe_threads
                );
                prop_assert_eq!(
                    &got.1, &expected.1,
                    "punctuation multiset diverged at {} shards, {} probe threads",
                    shards, probe_threads
                );
                prop_assert_eq!(stats.merge.puncts_unexpected, 0);
            }
        }
    }
}

fn tup(ts: u64, key: i64, payload: i64) -> Timestamped<StreamElement> {
    Timestamped::new(Timestamp(ts), Tuple::of((key, payload)).into())
}

fn punct(ts: u64, key: i64) -> Timestamped<StreamElement> {
    Timestamped::new(Timestamp(ts), Punctuation::close_value(2, 0, key).into())
}

/// A feed with long same-side runs (all left tuples, then all right,
/// then paired punctuations), so batches of two or more enter the
/// two-phase batched probe rather than the singleton fallback.
fn run_heavy_feed(keys: i64) -> Vec<(Side, Timestamped<StreamElement>)> {
    let mut feed = Vec::new();
    let mut ts = 0u64;
    for k in 0..keys {
        ts += 1;
        feed.push((Side::Left, tup(ts, k, 10 * k)));
    }
    for k in 0..keys {
        ts += 1;
        feed.push((Side::Right, tup(ts, k, -k)));
    }
    for k in 0..keys {
        ts += 1;
        feed.push((Side::Left, punct(ts, k)));
        ts += 1;
        feed.push((Side::Right, punct(ts, k)));
    }
    feed
}

/// A config that takes the batched-probe fast path (no window, no
/// on-the-fly drop) with prompt propagation and purge.
fn fast_path_config() -> PJoinConfig {
    PJoinConfig {
        on_the_fly_drop: false,
        purge: PurgeStrategy::Eager,
        propagation: PropagationTrigger::PushCount { count: 1 },
        ..PJoinConfig::new(2, 2)
    }
}

/// One shard, FIFO channels: batching must preserve the exact output
/// *sequence*, not merely the multiset — the two-phase probe emits
/// results in arrival order and punctuation barriers keep ordering.
/// The parallel probe merges per-worker scratch back in probe order, so
/// the guarantee holds bit-for-bit at every probe thread count too.
#[test]
fn single_shard_sequence_is_identical_across_batch_sizes() {
    let feed = run_heavy_feed(150);
    let config = fast_path_config();
    let (baseline, base_stats) = exec_run(1, BatchConfig::per_element(), 1, &config, &feed);
    assert!(baseline.iter().any(|e| e.is_tuple()) && baseline.iter().any(|e| e.is_punctuation()));
    for batch in [7usize, 64, 256] {
        for probe_threads in [1usize, 2, 4] {
            let (items, stats) = exec_run(
                1,
                BatchConfig::with_elems(batch),
                probe_threads,
                &config,
                &feed,
            );
            assert_eq!(
                items, baseline,
                "output sequence diverged at one shard with batch {batch}, \
                 {probe_threads} probe threads"
            );
            // The whole point of batching: far fewer channel sends than
            // the per-element run for the same answer.
            assert!(
                stats.router.batches < base_stats.router.batches,
                "batch {batch} sent {} batches, per-element sent {}",
                stats.router.batches,
                base_stats.router.batches
            );
        }
    }
}

/// Punctuations are flush barriers: even with a batch size far larger
/// than the workload, the punctuation — and the join results of every
/// tuple staged before it — must emerge promptly, with no `finish()`.
#[test]
fn punctuation_flushes_partial_batches_promptly() {
    let exec = ShardedPJoin::spawn(
        ExecConfig::new(4, fast_path_config()).with_batch(BatchConfig::with_elems(1 << 20)),
    );
    let mut feed = Vec::new();
    for k in 0..8i64 {
        feed.push((Side::Left, tup(k as u64 + 1, k, k)));
        feed.push((Side::Right, tup(k as u64 + 1, k, -k)));
    }
    feed.push((Side::Left, punct(100, 3)));
    feed.push((Side::Right, punct(101, 3)));
    exec.push_batch(feed);

    // Without the barrier (and with a 2^20-element batch) nothing would
    // leave the router until finish(); the barrier bounds alignment
    // latency by the pipeline, not the batch size.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let mut got: Vec<Timestamped<StreamElement>> = Vec::new();
    while !got.iter().any(|e| e.item.is_punctuation()) {
        assert!(
            std::time::Instant::now() < deadline,
            "punctuation never emerged without finish(); got {got:?}"
        );
        got.extend(exec.recv_outputs(Duration::from_millis(50)));
    }
    // The eight joined pairs flushed ahead of the barrier; the key-3
    // results must already be out by the time its punctuation is.
    let punct_at = got.iter().position(|e| e.item.is_punctuation()).unwrap();
    let tuples_before = got[..punct_at].iter().filter(|e| e.item.is_tuple()).count();
    assert!(
        tuples_before >= 1,
        "the barrier must flush staged tuples ahead of the punctuation: {got:?}"
    );

    let (rest, stats) = exec.finish();
    let all: Vec<_> = got.into_iter().chain(rest).collect();
    assert_eq!(all.iter().filter(|e| e.item.is_tuple()).count(), 8);
    assert_eq!(stats.merge.puncts_unexpected, 0);
}

/// The single carried hash serves two decisions that must stay
/// independent: high 32 bits pick the shard, low bits pick the bucket.
/// Within one shard's key population, buckets must still spread — if
/// both took `hash % n` the shard filter would collapse every resident
/// key into `buckets / shards` congruence classes.
#[test]
fn shard_and_bucket_decisions_are_decorrelated() {
    let shards = 4;
    let buckets = 64u64;
    for shard in 0..shards {
        let mut seen = std::collections::BTreeSet::new();
        for k in 0..4000i64 {
            let hash = Value::from(k).join_hash();
            if shard_of_hash(hash, shards) == shard {
                seen.insert(hash.unwrap() % buckets);
            }
        }
        assert!(
            seen.len() > (buckets as usize) / 2,
            "shard {shard}'s keys occupy only {} of {buckets} buckets",
            seen.len()
        );
    }
}
