//! Aligner behavior under shard-set changes — the patterns cluster
//! repartitioning leans on:
//!
//! * expectations registered against an old (smaller) shard mask
//!   complete normally while new expectations register against a wider
//!   mask mid-stream (late-registered shards);
//! * the drain-and-reregister migration pattern: at a barrier, pending
//!   expectations are drained in sequence order, re-registered against
//!   the new topology, and still emit exactly once;
//! * `observe_seq` reports which ingest instance an observation
//!   resolved, in FIFO order per punctuation.

use punct_exec::{AlignOutcome, Aligner};
use punct_types::{PunctSeq, Punctuation};

fn p(v: i64) -> Punctuation {
    Punctuation::close_value(4, 0, v)
}

fn mask(shards: &[usize]) -> u64 {
    shards.iter().fold(0, |m, s| m | (1 << s))
}

#[test]
fn old_mask_expectations_complete_while_wider_masks_register() {
    let mut a = Aligner::new();
    // In flight before the resize: expectations over shards {0,1}.
    a.expect(p(1), PunctSeq(0), mask(&[0, 1]));
    a.expect(p(2), PunctSeq(1), mask(&[0, 1]));
    assert_eq!(a.observe(0, &p(1)), AlignOutcome::Pending);

    // Resize to four shards: new punctuations target {0,1,2,3} while
    // the old two-shard expectations are still incomplete.
    a.expect(p(3), PunctSeq(2), mask(&[0, 1, 2, 3]));

    // The old expectations complete against their registered masks —
    // the late shards 2 and 3 are not expected to answer for them.
    assert_eq!(a.observe(1, &p(1)), AlignOutcome::Emit);
    assert_eq!(a.observe(1, &p(2)), AlignOutcome::Pending);
    assert_eq!(a.observe(0, &p(2)), AlignOutcome::Emit);

    // The wide expectation needs all four shards.
    assert_eq!(a.observe(0, &p(3)), AlignOutcome::Pending);
    assert_eq!(a.observe(1, &p(3)), AlignOutcome::Pending);
    assert_eq!(a.observe(2, &p(3)), AlignOutcome::Pending);
    assert_eq!(a.observe(3, &p(3)), AlignOutcome::Emit);

    // A late shard answering an old (two-shard) instance is an
    // invariant breach, not a silent double-emit.
    a.expect(p(4), PunctSeq(3), mask(&[0, 1]));
    assert_eq!(a.observe(3, &p(4)), AlignOutcome::Unexpected);
    assert_eq!(a.pending_len(), 1);
}

#[test]
fn drain_and_reregister_emits_exactly_once() {
    let mut a = Aligner::new();
    // Three punctuations in flight on a two-shard topology; one is
    // half-answered, two untouched.
    a.expect(p(1), PunctSeq(0), mask(&[0, 1]));
    a.expect(p(2), PunctSeq(1), mask(&[0, 1]));
    a.expect(p(1), PunctSeq(2), mask(&[0, 1]));
    assert_eq!(a.observe(0, &p(1)), AlignOutcome::Pending);

    // Migration barrier: drain everything pending, ordered by ingest
    // sequence (partial answers are discarded — after the barrier every
    // new shard will re-propagate from scratch).
    let drained = a.drain_pending();
    assert_eq!(a.pending_len(), 0);
    let seqs: Vec<u64> = drained.iter().map(|(_, s)| s.0).collect();
    assert_eq!(seqs, vec![0, 1, 2]);
    assert_eq!(drained[0].0, p(1));
    assert_eq!(drained[1].0, p(2));
    assert_eq!(drained[2].0, p(1));

    // Post-barrier observations for dropped expectations are flagged,
    // never emitted (no duplicate propagation downstream).
    assert_eq!(a.observe(1, &p(1)), AlignOutcome::Unexpected);

    // Re-register the drained punctuations against the new three-shard
    // topology and answer them: each emits exactly once.
    for (punct, seq) in &drained {
        a.expect(punct.clone(), *seq, mask(&[0, 1, 2]));
    }
    let mut emits = 0;
    for (punct, _) in &drained {
        for shard in 0..3 {
            if a.observe(shard, punct) == AlignOutcome::Emit {
                emits += 1;
            }
        }
    }
    assert_eq!(emits, 3, "each re-registered punctuation emits exactly once");
    assert_eq!(a.pending_len(), 0);
}

#[test]
fn observe_seq_reports_resolved_instance_in_fifo_order() {
    let mut a = Aligner::new();
    a.expect(p(7), PunctSeq(10), mask(&[0, 1]));
    a.expect(p(7), PunctSeq(11), mask(&[0, 1]));

    // Shard 0 answers both instances: oldest first.
    assert_eq!(a.observe_seq(0, &p(7)), (AlignOutcome::Pending, Some(PunctSeq(10))));
    assert_eq!(a.observe_seq(0, &p(7)), (AlignOutcome::Pending, Some(PunctSeq(11))));
    assert_eq!(a.observe_seq(1, &p(7)), (AlignOutcome::Emit, Some(PunctSeq(10))));
    assert_eq!(a.observe_seq(1, &p(7)), (AlignOutcome::Emit, Some(PunctSeq(11))));
    // Nothing left: unexpected, with no instance.
    assert_eq!(a.observe_seq(1, &p(7)), (AlignOutcome::Unexpected, None));
}
