//! End-to-end tests of the sharded executor: clean shutdown under tiny
//! channel capacities, exactly-once punctuation alignment, ordered
//! merging, and metrics aggregation.

use pjoin::PJoinConfig;
use punct_exec::{ExecConfig, ShardedPJoin};
use punct_types::{Punctuation, StreamElement, Timestamp, Timestamped, Tuple};
use stream_sim::Side;

fn tup(ts: u64, key: i64, payload: i64) -> Timestamped<StreamElement> {
    Timestamped::new(Timestamp(ts), Tuple::of((key, payload)).into())
}

fn punct(ts: u64, key: i64) -> Timestamped<StreamElement> {
    Timestamped::new(Timestamp(ts), Punctuation::close_value(2, 0, key).into())
}

/// A workload where every key appears once per side: k keys → k joined
/// outputs, plus per-key punctuations on both sides.
fn keyed_workload(keys: i64) -> Vec<(Side, Timestamped<StreamElement>)> {
    let mut feed = Vec::new();
    let mut ts = 0;
    for k in 0..keys {
        ts += 1;
        feed.push((Side::Left, tup(ts, k, 10 * k)));
        ts += 1;
        feed.push((Side::Right, tup(ts, k, -k)));
        ts += 1;
        feed.push((Side::Left, punct(ts, k)));
        ts += 1;
        feed.push((Side::Right, punct(ts, k)));
    }
    feed
}

#[test]
fn tiny_channels_finish_without_deadlock() {
    // Capacities far smaller than the workload: every channel must back-
    // pressure and the drain-while-feeding paths must keep it moving.
    let mut config = ExecConfig::new(4, PJoinConfig::new(2, 2));
    config.input_capacity = 2;
    config.shard_capacity = 1;
    config.event_capacity = 2;
    config.output_capacity = 1;
    config.router_batch = 4;

    let exec = ShardedPJoin::spawn(config);
    let keys = 500i64;
    for (side, e) in keyed_workload(keys) {
        exec.push(side, e);
    }
    let (outputs, stats) = exec.finish();

    let tuples = outputs.iter().filter(|e| e.item.is_tuple()).count();
    let puncts = outputs.iter().filter(|e| e.item.is_punctuation()).count();
    assert_eq!(tuples as i64, keys);
    // Every ingested punctuation aligned and emitted exactly once.
    assert_eq!(puncts as i64, 2 * keys);
    assert_eq!(stats.merge.puncts_unexpected, 0);
    assert_eq!(stats.merge.puncts_unaligned, 0);
    // Constant-key punctuations are targeted, never broadcast.
    assert_eq!(stats.router.puncts_targeted, 2 * keys as u64);
    assert_eq!(stats.router.puncts_broadcast, 0);
    // Both sides fully purged by the paired punctuations.
    assert_eq!(stats.total_stats().tuples_purged + stats.total_stats().dropped_on_fly, 2 * keys as u64);
}

#[test]
fn broadcast_punctuation_emitted_exactly_once_after_all_shards() {
    let shards = 8;
    let exec = ShardedPJoin::spawn(ExecConfig::new(shards, PJoinConfig::new(2, 2)));
    // Tuples scattered over all shards, then one wildcard-range
    // punctuation on the left closing every key so far.
    for k in 0..64i64 {
        exec.push(Side::Left, tup(k as u64 + 1, k, k));
        exec.push(Side::Right, tup(k as u64 + 1, k, -k));
    }
    let range = Punctuation::on_attr(
        2,
        0,
        punct_types::Pattern::range(
            punct_types::Bound::Inclusive(punct_types::Value::from(0i64)),
            punct_types::Bound::Inclusive(punct_types::Value::from(63i64)),
        )
        .unwrap(),
    );
    exec.push(Side::Left, Timestamped::new(Timestamp(100), range.into()));
    let (outputs, stats) = exec.finish();

    assert_eq!(stats.router.puncts_broadcast, 1);
    let puncts: Vec<_> = outputs.iter().filter(|e| e.item.is_punctuation()).collect();
    // All `shards` copies propagated, merged into exactly one emission.
    assert_eq!(puncts.len(), 1);
    assert_eq!(stats.merge.puncts_held, shards as u64 - 1);
    assert_eq!(stats.merge.puncts_unaligned, 0);
    // The range purged the whole left state on every shard.
    assert_eq!(stats.total_stats().tuples_purged, 64);
}

#[test]
fn ordered_merge_emits_in_timestamp_order() {
    let mut config = ExecConfig::new(4, PJoinConfig::new(2, 2)).ordered();
    config.router_batch = 8;
    let exec = ShardedPJoin::spawn(config);
    let feed = keyed_workload(300);
    for (side, e) in feed {
        exec.push(side, e);
    }
    let (outputs, stats) = exec.finish();
    assert_eq!(outputs.iter().filter(|e| e.item.is_tuple()).count(), 300);
    assert!(
        outputs.windows(2).all(|w| w[0].ts <= w[1].ts),
        "ordered merge produced out-of-order timestamps"
    );
    assert_eq!(stats.merge.puncts_unexpected, 0);
}

#[test]
fn ordered_and_arrival_merge_agree_on_the_multiset() {
    let run = |ordered: bool| {
        let base = ExecConfig::new(4, PJoinConfig::new(2, 2));
        let config = if ordered { base.ordered() } else { base };
        let exec = ShardedPJoin::spawn(config);
        for (side, e) in keyed_workload(200) {
            exec.push(side, e);
        }
        let (outputs, _) = exec.finish();
        let mut items: Vec<String> =
            outputs.iter().map(|e| format!("{:?}", e.item)).collect();
        items.sort();
        items
    };
    assert_eq!(run(false), run(true));
}

#[test]
fn shard_metrics_aggregate_and_expose_per_shard_state() {
    let shards = 4;
    let exec = ShardedPJoin::spawn(ExecConfig::new(shards, PJoinConfig::new(2, 2)));
    // Left tuples only: all state retained (no punctuations to purge).
    for k in 0..400i64 {
        exec.push(Side::Left, tup(k as u64 + 1, k, k));
    }
    // Wait until the pipeline has consumed everything so the live
    // snapshot is meaningful.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while exec.metrics().consumed < 400 {
        assert!(std::time::Instant::now() < deadline, "pipeline stalled");
        std::thread::yield_now();
    }
    let per_shard = exec.shard_metrics();
    assert_eq!(per_shard.len(), shards);
    let live = exec.metrics();
    assert_eq!(live.consumed, 400);
    assert_eq!(live.state_tuples, 400);
    // Hash partitioning spread the keys: no shard holds everything.
    assert!(per_shard.iter().all(|m| m.state_tuples < 400));
    assert_eq!(exec.tuples_routed(), 400);

    let (_, stats) = exec.finish();
    assert_eq!(stats.total_metrics().consumed, 400);
    assert_eq!(stats.total_metrics().state_tuples, 400);
    assert_eq!(stats.shards.len(), shards);
    // Work accrued on several shards, so the critical path is strictly
    // less than the total: the virtual-time parallel speedup.
    let cost = stream_sim::CostModel::default();
    let critical = stats.critical_path_nanos(&cost);
    let total = cost.nanos(&stats.total_work());
    assert!(critical > 0 && critical < total);
}

#[test]
fn recorder_collects_per_shard_series() {
    let exec = ShardedPJoin::spawn(ExecConfig::new(2, PJoinConfig::new(2, 2)));
    for (side, e) in keyed_workload(50) {
        exec.push(side, e);
    }
    let mut recorder = stream_metrics::Recorder::new();
    for (shard, m) in exec.shard_metrics().into_iter().enumerate() {
        recorder.record_shard("state_tuples", shard, 0.0, m.state_tuples as f64);
    }
    let (_, stats) = exec.finish();
    for (shard, report) in stats.shards.iter().enumerate() {
        recorder.record_shard("state_tuples", shard, 1.0, report.metrics.state_tuples as f64);
    }
    assert_eq!(recorder.shard_series("state_tuples").len(), 2);
    let summed = recorder.sum_shards("state_tuples").unwrap();
    // Everything purged by the end on both shards.
    assert_eq!(summed.points().last().unwrap().1, 0.0);
}

#[test]
fn drop_without_finish_does_not_hang() {
    let exec = ShardedPJoin::spawn(ExecConfig::new(4, PJoinConfig::new(2, 2)));
    for (side, e) in keyed_workload(100) {
        exec.push(side, e);
    }
    drop(exec); // must tear the pipeline down without joining outputs
}

#[test]
fn single_shard_matches_direct_pjoin_exactly() {
    use stream_sim::{BinaryStreamOp, OpOutput};

    let feed = keyed_workload(150);
    let exec = ShardedPJoin::spawn(ExecConfig::new(1, PJoinConfig::new(2, 2)));
    exec.push_batch(feed.clone());
    let (outputs, stats) = exec.finish();

    let mut reference = pjoin::PJoin::new(PJoinConfig::new(2, 2));
    let mut out = OpOutput::new();
    let mut expected = Vec::new();
    let mut last = Timestamp::ZERO;
    for (side, e) in feed {
        last = e.ts;
        reference.on_element(side, e.item, e.ts, &mut out);
        expected.extend(out.drain());
    }
    while reference.on_end(last, &mut out) {
        expected.extend(out.drain());
    }
    expected.extend(out.drain());

    // One shard, FIFO channels: even the order must match.
    let got: Vec<StreamElement> = outputs.into_iter().map(|e| e.item).collect();
    assert_eq!(got, expected);
    assert_eq!(stats.total_stats(), *reference.stats());
}

/// Regression: a shard dying mid-stream must surface promptly as a
/// typed error — historically it was invisible until `finish`, which
/// then panicked while the caller kept feeding a pipeline silently
/// dropping the dead shard's keys.
#[test]
fn killed_shard_surfaces_promptly_and_finish_reports_it() {
    use punct_exec::ExecError;

    let exec = ShardedPJoin::spawn(ExecConfig::new(4, PJoinConfig::new(2, 2)));
    for (side, e) in keyed_workload(20) {
        exec.try_push(side, e).expect("healthy pipeline accepts pushes");
    }
    assert!(exec.failure().is_none());

    exec.debug_kill_shard(2);

    // The failure must surface on a subsequent push, well before finish.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let err = loop {
        match exec.try_push(Side::Left, tup(1000, 1, 1)) {
            Err(err) => break err,
            Ok(()) => {
                assert!(
                    std::time::Instant::now() < deadline,
                    "shard death never surfaced through try_push"
                );
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
    };
    match &err {
        ExecError::ShardPanicked { shard, message } => {
            assert_eq!(*shard, 2);
            assert!(message.contains("killed by test hook"), "message: {message}");
        }
        other => panic!("expected ShardPanicked, got {other:?}"),
    }
    assert_eq!(exec.failure(), Some(err.clone()));

    // finish() must not panic; it reports the failure and omits the
    // dead shard's report.
    let (_outputs, stats) = exec.finish();
    assert_eq!(stats.failure, Some(err));
    assert_eq!(stats.shards.len(), 3);
    assert!(stats.shards.iter().all(|r| r.shard != 2));
}
