//! Cross-crate integration: the full auction query (streamgen → pjoin →
//! squery group-by) produces exactly the brute-force answer, and the
//! propagated punctuations unblock the group-by before stream end.

use std::collections::HashMap;

use punctuated_streams::gen::auction::{generate_auction, AuctionConfig};
use punctuated_streams::prelude::*;

fn brute_force_sums(workload: &punctuated_streams::gen::auction::AuctionWorkload) -> HashMap<i64, f64> {
    // SUM(bid_increase) per item having at least one bid; the join with
    // Open is 1:1 on item_id (item ids are unique in Open).
    let mut sums = HashMap::new();
    for e in &workload.bid {
        if let Some(t) = e.item.as_tuple() {
            let item = t.get(0).unwrap().as_int().unwrap();
            let inc = t.get(2).unwrap().as_numeric().unwrap();
            *sums.entry(item).or_insert(0.0) += inc;
        }
    }
    sums
}

#[test]
fn auction_query_matches_brute_force() {
    let config = AuctionConfig { items: 120, seed: 21, ..AuctionConfig::default() };
    let workload = generate_auction(&config);
    let expected = brute_force_sums(&workload);

    let join = PJoinBuilder::new(3, 3)
        .eager_purge()
        .eager_index_build()
        .propagate_every(1)
        .build();
    let pipeline = Pipeline::new(join).then(GroupBy::new(0, 5, Aggregate::Sum));
    let report = pipeline.execute(&workload.open, &workload.bid);

    let mut got = HashMap::new();
    for t in report.sink.tuples() {
        let item = t.get(0).unwrap().as_int().unwrap();
        let sum = t.get(1).unwrap().as_numeric().unwrap();
        assert!(got.insert(item, sum).is_none(), "each item emitted once");
    }
    assert_eq!(got.len(), expected.len());
    for (item, sum) in &expected {
        let g = got.get(item).unwrap_or_else(|| panic!("missing item {item}"));
        assert!((g - sum).abs() < 1e-6, "item {item}: got {g}, want {sum}");
    }
}

#[test]
fn propagation_unblocks_groups_before_stream_end() {
    let config = AuctionConfig { items: 80, seed: 5, ..AuctionConfig::default() };
    let workload = generate_auction(&config);

    let join = PJoinBuilder::new(3, 3)
        .eager_purge()
        .eager_index_build()
        .propagate_every(1)
        .build();
    let report = Pipeline::new(join)
        .then(GroupBy::new(0, 5, Aggregate::Sum))
        .execute(&workload.open, &workload.bid);
    // Punctuations flowed through the join into the group-by…
    assert!(report.join_output_puncts > 0);
    // …and the group-by itself re-punctuates each emitted group.
    assert!(report.sink.punctuation_count() > 0);
}

#[test]
fn count_aggregate_counts_bids() {
    let config = AuctionConfig { items: 50, seed: 9, ..AuctionConfig::default() };
    let workload = generate_auction(&config);

    let join = PJoinBuilder::new(3, 3).eager_purge().propagate_every(1).eager_index_build().build();
    let report = Pipeline::new(join)
        .then(GroupBy::new(0, 5, Aggregate::Count))
        .execute(&workload.open, &workload.bid);
    let total: i64 = report
        .sink
        .tuples()
        .iter()
        .map(|t| t.get(1).unwrap().as_int().unwrap())
        .sum();
    assert_eq!(total as usize, workload.bids);
}
