//! Cross-crate integration: serializing a generated workload to the
//! textual trace format and replaying it through PJoin yields the exact
//! run the original workload produced (outputs, work, statistics).

use punctuated_streams::gen::trace::{read_trace, write_trace};
use punctuated_streams::gen::{generate_pair, StreamConfig};
use punctuated_streams::prelude::*;

#[test]
fn replayed_trace_reproduces_the_run() {
    let cfg = StreamConfig { tuples: 800, key_window: 5, seed: 13, ..StreamConfig::default() };
    let (a, b) = generate_pair(&cfg, 12.0, 12.0);

    // Round-trip both streams through the trace format.
    let a2 = read_trace(&write_trace(&a.elements)).unwrap();
    let b2 = read_trace(&write_trace(&b.elements)).unwrap();
    assert_eq!(a2, a.elements);
    assert_eq!(b2, b.elements);

    let run = |left: &[Timestamped<StreamElement>], right: &[Timestamped<StreamElement>]| {
        let mut op = PJoinBuilder::new(2, 2).eager_purge().propagate_every(5).build();
        let driver = Driver::new(DriverConfig {
            cost: CostModel::default(),
            sample_every_micros: 500_000,
            collect_outputs: true,
            ..DriverConfig::default()
        });
        let stats = driver.run(&mut op, left, right);
        (stats, *op.stats())
    };

    let (s1, op1) = run(&a.elements, &b.elements);
    let (s2, op2) = run(&a2, &b2);
    assert_eq!(s1.outputs, s2.outputs);
    assert_eq!(s1.total_work, s2.total_work);
    assert_eq!(s1.end_time, s2.end_time);
    assert_eq!(op1, op2);
}

#[test]
fn trace_survives_file_round_trip() {
    let cfg = StreamConfig { tuples: 200, seed: 17, ..StreamConfig::default() };
    let (a, _) = generate_pair(&cfg, 10.0, 10.0);
    let path = std::env::temp_dir().join(format!("pjoin-trace-{}.txt", std::process::id()));
    std::fs::write(&path, write_trace(&a.elements)).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    let back = read_trace(&text).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(back, a.elements);
}
