//! End-to-end validation of the *real* disk path: both operators run
//! with `FileDisk` backends (actual file I/O for every spilled page) and
//! must produce the same results as with the in-memory simulated disk.

use punctuated_streams::gen::{generate_pair, StreamConfig};
use punctuated_streams::prelude::*;
use punctuated_streams::storage::FileDisk;
use punctuated_streams::sim::RunStats;

fn run(op: &mut dyn BinaryStreamOp, left: &[Timestamped<StreamElement>], right: &[Timestamped<StreamElement>]) -> RunStats {
    let driver = Driver::new(DriverConfig {
        cost: CostModel::free(),
        sample_every_micros: 1_000_000,
        collect_outputs: true,
        trace: punctuated_streams::trace::TraceSettings::default(),
    });
    driver.run(op, left, right)
}

fn sorted_tuples(stats: &RunStats) -> Vec<Tuple> {
    let mut v: Vec<Tuple> =
        stats.outputs.iter().filter_map(|o| o.item.as_tuple().cloned()).collect();
    v.sort();
    v
}

#[test]
fn pjoin_spills_to_real_files() {
    let cfg = StreamConfig { tuples: 800, key_window: 6, seed: 41, ..StreamConfig::default() };
    let (a, b) = generate_pair(&cfg, 20.0, 20.0);

    let config = punctuated_streams::core::PJoinConfig {
        buckets: 4,
        page_tuples: 8,
        memory_max_tuples: 48,
        purge: punctuated_streams::core::PurgeStrategy::Eager,
        ..punctuated_streams::core::PJoinConfig::new(2, 2)
    };

    let mut sim = PJoin::new(config.clone());
    let reference = sorted_tuples(&run(&mut sim, &a.elements, &b.elements));

    let mut filed = PJoin::with_backends(
        config,
        Box::new(FileDisk::temp("pjoin-a").unwrap()),
        Box::new(FileDisk::temp("pjoin-b").unwrap()),
    );
    let got = sorted_tuples(&run(&mut filed, &a.elements, &b.elements));
    assert_eq!(got, reference);
    assert!(filed.stats().relocations > 0, "spilling must actually have hit the files");
    let io = filed.state_a().store.io_stats();
    assert!(io.bytes_written > 0, "pages must have been written to disk");
}

#[test]
fn xjoin_spills_to_real_files() {
    let cfg = StreamConfig { tuples: 600, key_window: 6, seed: 43, ..StreamConfig::default() }
        .without_punctuations();
    let (a, b) = generate_pair(&cfg, 1e18, 1e18);

    let config = XJoinConfig {
        buckets: 4,
        page_tuples: 8,
        memory_max_tuples: 32,
        ..XJoinConfig::default()
    };
    let mut sim = XJoin::new(config.clone());
    let reference = sorted_tuples(&run(&mut sim, &a.elements, &b.elements));

    let mut filed = XJoin::with_backends(
        config,
        Box::new(FileDisk::temp("xjoin-a").unwrap()),
        Box::new(FileDisk::temp("xjoin-b").unwrap()),
    );
    let got = sorted_tuples(&run(&mut filed, &a.elements, &b.elements));
    assert_eq!(got, reference);
    assert!(filed.store_a().io_stats().pages_read > 0, "disk joins must have read real pages");
}
