//! Cross-crate integration of the multi-threaded runtime: feeding a
//! generated workload through `PJoinRuntime` (worker thread + channels)
//! must produce the same result multiset as the single-threaded driver.

use punctuated_streams::core::runtime::PJoinRuntime;
use punctuated_streams::core::{PJoinBuilder, PJoinConfig, PropagationTrigger, PurgeStrategy, IndexBuildStrategy};
use punctuated_streams::gen::{generate_pair, StreamConfig};
use punctuated_streams::prelude::*;

fn config() -> PJoinConfig {
    PJoinConfig {
        purge: PurgeStrategy::Eager,
        index_build: IndexBuildStrategy::Eager,
        propagation: PropagationTrigger::PushCount { count: 5 },
        ..PJoinConfig::new(2, 2)
    }
}

#[test]
fn threaded_matches_single_threaded() {
    let cfg = StreamConfig { tuples: 1_200, key_window: 6, seed: 31, ..StreamConfig::default() };
    let (a, b) = generate_pair(&cfg, 15.0, 15.0);

    // Single-threaded reference.
    let mut reference_op = PJoinBuilder::new(2, 2)
        .eager_purge()
        .eager_index_build()
        .propagate_every(5)
        .build();
    let driver = Driver::new(DriverConfig {
        cost: CostModel::free(),
        sample_every_micros: 1_000_000,
        collect_outputs: true,
        ..DriverConfig::default()
    });
    let reference = driver.run(&mut reference_op, &a.elements, &b.elements);
    let mut want: Vec<Tuple> =
        reference.outputs.iter().filter_map(|o| o.item.as_tuple().cloned()).collect();
    want.sort();

    // Threaded run: interleave pushes in timestamp order.
    let rt = PJoinRuntime::spawn(config());
    let (mut li, mut ri) = (0usize, 0usize);
    loop {
        match (a.elements.get(li), b.elements.get(ri)) {
            (Some(l), Some(r)) => {
                if l.ts <= r.ts {
                    rt.push(Side::Left, l.clone());
                    li += 1;
                } else {
                    rt.push(Side::Right, r.clone());
                    ri += 1;
                }
            }
            (Some(l), None) => {
                rt.push(Side::Left, l.clone());
                li += 1;
            }
            (None, Some(r)) => {
                rt.push(Side::Right, r.clone());
                ri += 1;
            }
            (None, None) => break,
        }
    }
    let (outputs, stats) = rt.finish();
    let mut got: Vec<Tuple> =
        outputs.iter().filter_map(|o| o.item.as_tuple().cloned()).collect();
    got.sort();

    assert_eq!(got, want);
    assert!(stats.tuples_purged > 0);
    assert!(stats.puncts_propagated > 0);
}

#[test]
fn runtime_metrics_track_progress() {
    let rt = PJoinRuntime::spawn(config());
    for i in 0..50i64 {
        rt.push(
            Side::Left,
            Timestamped::new(Timestamp(i as u64 * 10), StreamElement::Tuple(Tuple::of((i, 0i64)))),
        );
    }
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while rt.metrics().consumed < 50 {
        assert!(std::time::Instant::now() < deadline, "worker stalled");
        std::thread::yield_now();
    }
    assert_eq!(rt.metrics().state_tuples, 50);
    let (_, _) = rt.finish();
}
