//! Differential testing across crates: PJoin (all strategy combinations)
//! and XJoin must produce the identical result multiset on identical
//! punctuated inputs — punctuations are an optimization, never a
//! semantics change. Meanwhile PJoin's state must be the smaller one.

use punctuated_streams::gen::{generate_pair, PunctScheme, StreamConfig};
use punctuated_streams::prelude::*;
use punctuated_streams::sim::RunStats;

fn run(op: &mut dyn BinaryStreamOp, left: &[Timestamped<StreamElement>], right: &[Timestamped<StreamElement>]) -> RunStats {
    let driver = Driver::new(DriverConfig {
        cost: CostModel::free(),
        sample_every_micros: 1_000_000,
        collect_outputs: true,
        ..DriverConfig::default()
    });
    driver.run(op, left, right)
}

fn sorted_tuples(stats: &RunStats) -> Vec<Tuple> {
    let mut v: Vec<Tuple> =
        stats.outputs.iter().filter_map(|o| o.item.as_tuple().cloned()).collect();
    v.sort();
    v
}

#[test]
fn same_results_across_operators_and_seeds() {
    for seed in [1u64, 2, 3] {
        let cfg = StreamConfig { tuples: 1_500, key_window: 6, seed, ..StreamConfig::default() };
        let (a, b) = generate_pair(&cfg, 15.0, 25.0);

        let mut xjoin = XJoin::new(XJoinConfig::default());
        let reference = sorted_tuples(&run(&mut xjoin, &a.elements, &b.elements));
        assert!(!reference.is_empty());

        for threshold in [1u64, 25, 400] {
            let mut pjoin = PJoinBuilder::new(2, 2)
                .lazy_purge(threshold)
                .propagate_every(10)
                .build();
            let got = sorted_tuples(&run(&mut pjoin, &a.elements, &b.elements));
            assert_eq!(got, reference, "seed {seed}, threshold {threshold}");
        }
    }
}

#[test]
fn same_results_with_spilling_on_both_sides() {
    let cfg = StreamConfig { tuples: 1_000, key_window: 6, seed: 4, ..StreamConfig::default() };
    let (a, b) = generate_pair(&cfg, 20.0, 20.0);

    let mut xjoin = XJoin::new(XJoinConfig {
        buckets: 4,
        page_tuples: 8,
        memory_max_tuples: 64,
        ..XJoinConfig::default()
    });
    let reference = sorted_tuples(&run(&mut xjoin, &a.elements, &b.elements));

    let mut pjoin = PJoinBuilder::new(2, 2)
        .buckets(4)
        .page_tuples(8)
        .memory_max(64)
        .eager_purge()
        .propagate_every(5)
        .build();
    let got = sorted_tuples(&run(&mut pjoin, &a.elements, &b.elements));
    assert_eq!(got, reference);
    assert!(pjoin.stats().relocations > 0, "PJoin must actually have spilled");
}

#[test]
fn pjoin_state_is_smaller_under_punctuations() {
    let cfg = StreamConfig { tuples: 5_000, key_window: 10, seed: 5, ..StreamConfig::default() };
    let (a, b) = generate_pair(&cfg, 20.0, 20.0);

    let mut pjoin = PJoinBuilder::new(2, 2).eager_purge().build();
    let sp = run(&mut pjoin, &a.elements, &b.elements);
    let mut xjoin = XJoin::new(XJoinConfig::default());
    let sx = run(&mut xjoin, &a.elements, &b.elements);

    assert!(sp.peak_state() * 4 < sx.peak_state());
    assert_eq!(sp.total_out_tuples, sx.total_out_tuples);
}

#[test]
fn without_punctuations_pjoin_degenerates_to_xjoin_state() {
    // The paper: "when the punctuation inter-arrival reaches infinity …
    // the memory requirement of PJoin becomes the same as that of XJoin".
    let cfg = StreamConfig {
        tuples: 2_000,
        key_window: 10,
        punct_scheme: PunctScheme::None,
        seed: 6,
        ..StreamConfig::default()
    };
    let (a, b) = generate_pair(&cfg, 1e18, 1e18);
    let mut pjoin = PJoinBuilder::new(2, 2).eager_purge().build();
    let sp = run(&mut pjoin, &a.elements, &b.elements);
    let mut xjoin = XJoin::new(XJoinConfig::default());
    let sx = run(&mut xjoin, &a.elements, &b.elements);
    assert_eq!(sp.peak_state(), sx.peak_state());
    assert_eq!(sorted_tuples(&sp), sorted_tuples(&sx));
}
