//! Cross-crate integration of punctuation *derivation* (§1.1): a source
//! without punctuations, wrapped with a declared static constraint,
//! feeds a PJoin that then purges exactly as if the source had been
//! punctuated natively.

use punctuated_streams::prelude::*;
use punctuated_streams::query::{DerivePunctuations, StaticConstraint, UnaryOperator};

/// Applies a derivation operator to a whole timestamped stream.
fn derive(
    input: &[Timestamped<StreamElement>],
    constraint: StaticConstraint,
    attr: usize,
    width: usize,
) -> Vec<Timestamped<StreamElement>> {
    let mut op = DerivePunctuations::new(constraint, attr, width);
    let mut out = Vec::new();
    let mut last_ts = Timestamp::ZERO;
    for e in input {
        last_ts = e.ts;
        let mut produced = Vec::new();
        op.on_element(e.item.clone(), &mut produced);
        out.extend(produced.into_iter().map(|item| Timestamped::new(e.ts, item)));
    }
    let mut produced = Vec::new();
    op.on_end(&mut produced);
    out.extend(produced.into_iter().map(|item| Timestamped::new(last_ts, item)));
    out
}

fn tuples(ts_key_pairs: &[(u64, i64)]) -> Vec<Timestamped<StreamElement>> {
    ts_key_pairs
        .iter()
        .map(|&(ts, k)| {
            Timestamped::new(Timestamp(ts), StreamElement::Tuple(Tuple::of((k, ts as i64))))
        })
        .collect()
}

fn run_join(
    left: &[Timestamped<StreamElement>],
    right: &[Timestamped<StreamElement>],
) -> (stream_sim::RunStats, PJoin) {
    let mut op = PJoinBuilder::new(2, 2).eager_purge().propagate_every(1).eager_index_build().build();
    let driver = Driver::new(DriverConfig {
        cost: CostModel::free(),
        sample_every_micros: 1_000_000,
        collect_outputs: true,
        ..DriverConfig::default()
    });
    let stats = driver.run(&mut op, left, right);
    (stats, op)
}

#[test]
fn unique_key_derivation_enables_purging() {
    // Left: unique keys 0..100 (no punctuations at the source).
    let left_raw = tuples(&(0..100).map(|k| (k * 10, k as i64)).collect::<Vec<_>>());
    // Right: two tuples per key, clustered.
    let right_raw = tuples(
        &(0..100)
            .flat_map(|k| [(k * 10 + 3, k as i64), (k * 10 + 6, k as i64)])
            .collect::<Vec<_>>(),
    );

    // Without derivation, nothing ever purges.
    let (stats_plain, join_plain) = run_join(&left_raw, &right_raw);
    assert_eq!(join_plain.stats().tuples_purged, 0);

    // Unique-key derivation on the left; clustered derivation on the right.
    let left = derive(&left_raw, StaticConstraint::UniqueKey, 0, 2);
    let right = derive(&right_raw, StaticConstraint::ClusteredArrival, 0, 2);
    let (stats_derived, join_derived) = run_join(&left, &right);

    // Identical join results…
    let collect = |s: &stream_sim::RunStats| {
        let mut v: Vec<Tuple> =
            s.outputs.iter().filter_map(|o| o.item.as_tuple().cloned()).collect();
        v.sort();
        v
    };
    assert_eq!(collect(&stats_plain), collect(&stats_derived));
    // …but the derived punctuations purge the state and propagate.
    assert!(join_derived.stats().tuples_purged + join_derived.stats().dropped_on_fly > 0);
    assert!(stats_derived.total_out_puncts > 0);
    assert!(stats_derived.peak_state() < stats_plain.peak_state());
}

#[test]
fn ordered_arrival_derivation_with_range_patterns() {
    // Both sides arrive in non-decreasing key order.
    let mk = |seed: u64| {
        tuples(
            &(0..60)
                .map(|i| (i * 7 + seed, (i / 3) as i64))
                .collect::<Vec<_>>(),
        )
    };
    let left = derive(&mk(0), StaticConstraint::OrderedArrival, 0, 2);
    let right = derive(&mk(3), StaticConstraint::OrderedArrival, 0, 2);
    assert!(left.iter().any(|e| e.item.is_punctuation()));

    let (stats, join) = run_join(&left, &right);
    assert!(join.stats().tuples_purged > 0, "range punctuations must purge");
    // Derived punctuations are honoured by all later results.
    let report = punctuated_streams::gen::validate_stream(&stats.outputs, 0);
    assert!(report.violations.is_empty(), "{:?}", report.violations);
}
